"""Dynamic control-flow separation (paper §5.2).

Class I operators (input-independent control flow) do not need to
attend to runtime data tokens; masking those interactions removes
redundant computation and is the hook the prediction acceleration of
§5.3 builds on.
"""

from __future__ import annotations

import numpy as np

from ..ir import DataflowGraph
from ..nn import NEG_INF
from ..tokenizer import TokenizedInput


def build_separation_mask(
    tokenized: TokenizedInput,
    class_i_segments: list[str],
    decouple_operators: bool = False,
) -> np.ndarray:
    """Additive attention mask hiding Class I ⟷ data interactions.

    With ``decouple_operators`` the pairwise operator↔operator blocks
    are masked too (the fully decoupled pattern of Figure 6, which makes
    per-operator caching sound).
    """
    seq_len = len(tokenized)
    mask = np.zeros((seq_len, seq_len))
    data_slice = tokenized.segment_slices.get("data")
    if data_slice is not None:
        for name in class_i_segments:
            op_slice = tokenized.segment_slices.get(name)
            if op_slice is None:
                continue
            mask[op_slice, data_slice] = NEG_INF
            mask[data_slice, op_slice] = NEG_INF
    if decouple_operators:
        op_names = [n for n in tokenized.segment_slices if n.startswith("op")]
        for i, first in enumerate(op_names):
            for second in op_names[i + 1:]:
                a = tokenized.segment_slices[first]
                b = tokenized.segment_slices[second]
                mask[a, b] = NEG_INF
                mask[b, a] = NEG_INF
    return mask


def operator_mask_matrix(graph: DataflowGraph) -> np.ndarray:
    """The small segment-level mask of Figure 5.

    Rows/columns are ``[G, Op0..OpN, Params, Data]``; entry 0 marks a
    hidden interaction (Class I operator × runtime data), 1 an observed
    one.
    """
    n_ops = graph.operator_count
    size = n_ops + 3  # G + ops + Params + Data
    matrix = np.ones((size, size), dtype=np.int64)
    data_index = size - 1
    for call in graph.calls:
        if call.index in graph.class_i_indices():
            row = 1 + call.index
            matrix[row, data_index] = 0
            matrix[data_index, row] = 0
    return matrix


def separation_savings(mask: np.ndarray) -> float:
    """Fraction of attention entries removed by the mask."""
    if mask.size == 0:
        return 0.0
    return float((mask < 0).sum()) / float(mask.size)
