"""Glue: build model inputs from programs, params and runtime data."""

from __future__ import annotations

from typing import Any, Optional

from ..hls import HardwareParams
from ..ir import build_dataflow_graph
from ..lang import ast, format_function, parse
from ..lang.analysis import OperatorClass, analyze_function
from ..lang.normalize import normalize as normalize_program
from ..sim import describe_data
from ..tokenizer import ModelInput


def bundle_from_program(
    program: ast.Program | str,
    params: Optional[HardwareParams] = None,
    data: Optional[dict[str, Any]] = None,
    think_text: str = "",
    graph_function: Optional[str] = None,
    normalize: bool = False,
) -> ModelInput:
    """Render the paper's ``{G, Op, Params, data}`` quadruple as text.

    The top-level graph function becomes the graph segment; every other
    function becomes an operator segment; ``params`` renders in Bambu
    flag style; ``data`` in ``name = value`` style.

    With ``normalize=True`` the program is canonicalized first (local
    renaming, constant folding, identity simplification) — the paper's
    §7.2 future-work mitigation for deeply abstracted programs.  Use
    the same setting at training and prediction time.
    """
    if isinstance(program, str):
        program = parse(program)
    if normalize:
        program = normalize_program(program)
    graph = build_dataflow_graph(program, graph_function)
    graph_func = program.function(graph.graph_function)
    op_texts = [
        format_function(func)
        for func in program.functions
        if func.name != graph.graph_function
    ]
    params = params or HardwareParams()
    return ModelInput(
        graph_text=format_function(graph_func),
        op_texts=op_texts,
        params_text=params.describe(),
        data_text=describe_data(data) if data else "",
        think_text=think_text,
    )


def class_i_segments(
    program: ast.Program | str, graph_function: Optional[str] = None
) -> list[str]:
    """Names of the operator segments whose control flow is input
    independent (Class I) — the segments the separation mask decouples
    from runtime data."""
    if isinstance(program, str):
        program = parse(program)
    graph = build_dataflow_graph(program, graph_function)
    operators = [
        func for func in program.functions if func.name != graph.graph_function
    ]
    segments = []
    for index, func in enumerate(operators):
        report = analyze_function(func)
        if report.operator_class is OperatorClass.CLASS_I:
            segments.append(f"op{index}")
    return segments
