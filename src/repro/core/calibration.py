"""Dynamic prediction-based calibration via DPO (paper §5.1).

The model interacts with the profiling environment online: it predicts
``y_l`` for ``{x, data}``, the profiler returns the ground truth
``y_w``, and the preference pair updates the policy with the DPO
objective (paper Eq. 2)

    R(θ) = E[ log σ( β( log πθ(y_w|s)/π_ref(y_w|s)
                       − log πθ(y_l|s)/π_ref(y_l|s) ) ) ]

where the reference policy π_ref is the frozen static-stage model.  A
sliding-window replay buffer supports minibatch replay (buffer size 1
degenerates to immediate online updates).
"""

from __future__ import annotations

import copy
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

import numpy as np

from ..errors import CalibrationError
from ..nn import Adam, Tensor
from ..tokenizer import ModelInput
from .model import CostModel


@dataclass
class PreferenceTriplet:
    """One DPO preference sample ``({x, data}, y_w, y_l)``."""

    bundle: ModelInput
    y_w: int
    y_l: int
    class_i_segments: tuple[str, ...] = ()


class ReplayBuffer:
    """Sliding-window replay buffer of preference triplets."""

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise CalibrationError("replay buffer capacity must be >= 1")
        self.capacity = capacity
        self._items: deque[PreferenceTriplet] = deque(maxlen=capacity)

    def push(self, triplet: PreferenceTriplet) -> None:
        self._items.append(triplet)

    def sample(
        self, batch_size: int, rng: Optional[np.random.Generator] = None
    ) -> list[PreferenceTriplet]:
        if not self._items:
            return []
        rng = rng or np.random.default_rng()
        size = min(batch_size, len(self._items))
        indices = rng.choice(len(self._items), size=size, replace=False)
        items = list(self._items)
        return [items[i] for i in indices]

    def __len__(self) -> int:
        return len(self._items)


@dataclass
class CalibrationConfig:
    """Knobs for the DPO calibration loop."""

    beta: float = 0.4
    lr: float = 2e-3
    buffer_size: int = 16
    minibatch: int = 4
    updates_per_step: int = 3
    metric: str = "cycles"
    seed: int = 0
    # Weight of an auxiliary cross-entropy anchor on the observed ground
    # truth.  Pure Eq. 2 preference gradients can oscillate at this model
    # scale; since the environment hands us y_w exactly, anchoring on it
    # is sound and stabilizes convergence (DPO+SFT mixing).
    ce_weight: float = 1.0
    # Freeze the encoder and adapt only the metric head — the analogue
    # of the paper's LoRA-restricted fine-tuning.  Pooled encodings are
    # then cached per input, making online calibration near-free.
    freeze_encoder: bool = True


@dataclass
class CalibrationStep:
    """Outcome of one environment interaction."""

    predicted: int
    actual: int
    loss: float

    @property
    def ape(self) -> float:
        """Absolute percentage error of this step's prediction."""
        if self.actual == 0:
            return float(self.predicted != 0)
        return abs(self.predicted - self.actual) / abs(self.actual)


@dataclass
class CalibrationHistory:
    """Error trajectory across calibration iterations."""

    iteration_mape: list[float] = field(default_factory=list)
    steps: list[CalibrationStep] = field(default_factory=list)

    @property
    def initial_mape(self) -> float:
        return self.iteration_mape[0] if self.iteration_mape else float("nan")

    @property
    def final_mape(self) -> float:
        return self.iteration_mape[-1] if self.iteration_mape else float("nan")


class DynamicCalibrator:
    """Adaptive online learner wrapping a trained :class:`CostModel`."""

    def __init__(
        self,
        model: CostModel,
        config: Optional[CalibrationConfig] = None,
    ) -> None:
        self.model = model
        self.config = config or CalibrationConfig()
        if self.config.metric not in model.heads:
            raise CalibrationError(
                f"model has no head for metric {self.config.metric!r}"
            )
        # Frozen reference policy: a deep copy of the static-stage model.
        self.reference = copy.deepcopy(model)
        for param in self.reference.parameters():
            param.requires_grad = False
        self.buffer = ReplayBuffer(self.config.buffer_size)
        if self.config.freeze_encoder:
            # LoRA-style residual adapter between the frozen encoder and
            # the head: gives the calibration a nonlinear lever to
            # separate inputs whose pooled encodings are close.
            dim = model.encoder.config.dim
            rng = np.random.default_rng(self.config.seed + 5)
            from ..nn import Linear

            self._adapter_in = Linear(dim, dim, rng=rng)
            self._adapter_out = Linear(dim, dim, rng=rng)
            self._adapter_out.weight.data *= 0.0  # start as identity
            trainable = list(model.heads[self.config.metric].parameters())
            trainable += [
                self._adapter_in.weight,
                self._adapter_in.bias,
                self._adapter_out.weight,
                self._adapter_out.bias,
            ]
        else:
            self._adapter_in = None
            self._adapter_out = None
            trainable = list(model.parameters())
        self._optimizer = Adam(trainable, lr=self.config.lr)
        self._rng = np.random.default_rng(self.config.seed)
        self._pooled_cache: dict[int, Tensor] = {}
        self._ref_cache: dict[tuple[int, int], float] = {}
        # Standardization statistics restored from a saved policy; live
        # statistics from the pooled cache take over again as soon as
        # calibration resumes (see observe()).
        self._frozen_stats: Optional[tuple[np.ndarray, np.ndarray]] = None

    def _pooled_for(self, bundle: ModelInput, segments) -> Tensor:
        """Policy encoding; cached and adapter-transformed when the
        encoder is frozen."""
        if not self.config.freeze_encoder:
            return self.model.encode(bundle, segments)
        key = id(bundle)
        if key not in self._pooled_cache:
            pooled = self.model.encode(bundle, segments)
            self._pooled_cache[key] = Tensor(pooled.data.copy())
        cached = self._pooled_cache[key]
        # Standardize across the observed inputs before the adapter:
        # pooled encodings of similar programs differ by a fraction of a
        # percent, so the adapter needs the between-input variance
        # amplified to O(1) to separate them.
        mu, sigma = self._cache_stats()
        standardized = Tensor((cached.data - mu) / sigma)
        return cached + self._adapter_out(self._adapter_in(standardized).tanh())

    def _cache_stats(self) -> tuple[np.ndarray, np.ndarray]:
        if self._frozen_stats is not None:
            return self._frozen_stats
        vectors = np.stack([t.data for t in self._pooled_cache.values()])
        mu = vectors.mean(axis=0)
        sigma = vectors.std(axis=0) + 1e-4
        return mu, sigma

    def _raw_pooled(self, bundle: ModelInput, segments) -> Tensor:
        """Encoder output without the adapter (reference policy view)."""
        if not self.config.freeze_encoder:
            return self.reference.encode(bundle, segments)
        key = id(bundle)
        if key not in self._pooled_cache:
            pooled = self.model.encode(bundle, segments)
            self._pooled_cache[key] = Tensor(pooled.data.copy())
        return self._pooled_cache[key]

    def _ref_log_prob(self, bundle: ModelInput, segments, value: int) -> float:
        key = (id(bundle), value)
        if key not in self._ref_cache:
            ref_pooled = self._raw_pooled(bundle, segments)
            self._ref_cache[key] = float(
                self.reference.heads[self.config.metric]
                .log_prob_of(ref_pooled, value)
                .data
            )
        return self._ref_cache[key]

    # -- DPO loss ---------------------------------------------------------

    def _dpo_loss(self, triplet: PreferenceTriplet) -> Optional[Tensor]:
        if triplet.y_w == triplet.y_l:
            return None  # prediction already exact: nothing to prefer
        metric = self.config.metric
        segments = list(triplet.class_i_segments) or None
        pooled = self._pooled_for(triplet.bundle, segments)
        log_w = self.model.heads[metric].log_prob_of(pooled, triplet.y_w)
        log_l = self.model.heads[metric].log_prob_of(pooled, triplet.y_l)
        ref_w = self._ref_log_prob(triplet.bundle, segments, triplet.y_w)
        ref_l = self._ref_log_prob(triplet.bundle, segments, triplet.y_l)
        margin = (log_w - ref_w) - (log_l - ref_l)
        loss = -(margin * self.config.beta).sigmoid().log()
        if self.config.ce_weight > 0:
            loss = loss + (-log_w) * self.config.ce_weight
        return loss

    # -- inference ---------------------------------------------------------

    def predict(
        self,
        bundle: ModelInput,
        class_i_segments: tuple[str, ...] = (),
        beam_width: int = 5,
    ):
        """Predict with the calibrated policy (adapter + updated head)."""
        pooled = self._pooled_for(bundle, list(class_i_segments) or None)
        return self.model.heads[self.config.metric].predict(
            pooled, beam_width=beam_width
        )

    # -- persistence ---------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist the calibrated policy: model weights plus (when the
        encoder is frozen) the residual adapter, in one ``.npz``.

        Saving the model alone would silently drop the adapter — the
        lever most of the calibration gain lives in — so round-trip the
        whole policy through :meth:`save` / :meth:`load`.
        """
        import os

        state = self.model.state_dict()
        for prefix, adapter in (
            ("__adapter_in__", self._adapter_in),
            ("__adapter_out__", self._adapter_out),
        ):
            if adapter is not None:
                for name, value in adapter.state_dict().items():
                    state[f"{prefix}.{name}"] = value
        # Explicit len()/None checks, mirroring the falsy-cache rule for
        # injected cache objects: if _pooled_cache ever becomes a
        # cache-like object with custom truthiness, `or` would silently
        # skip persisting the standardization statistics.
        if self._adapter_in is not None and (
            len(self._pooled_cache) > 0 or self._frozen_stats is not None
        ):
            mu, sigma = self._cache_stats()
            state["__stats__.mu"] = mu
            state["__stats__.sigma"] = sigma
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        np.savez(path, **state)

    def load(self, path: str) -> None:
        """Restore a policy saved by :meth:`save`."""
        with np.load(path) as archive:
            state = {name: archive[name] for name in archive.files}
        adapters = {
            "__adapter_in__": self._adapter_in,
            "__adapter_out__": self._adapter_out,
        }
        model_state = {}
        adapter_states: dict[str, dict[str, np.ndarray]] = {k: {} for k in adapters}
        stats: dict[str, np.ndarray] = {}
        for name, value in state.items():
            prefix, _, rest = name.partition(".")
            if prefix in adapters:
                adapter_states[prefix][rest] = value
            elif prefix == "__stats__":
                stats[rest] = value
            else:
                model_state[name] = value
        self.model.load_state_dict(model_state)
        for prefix, adapter in adapters.items():
            if adapter is not None and adapter_states[prefix]:
                adapter.load_state_dict(adapter_states[prefix])
        # Cached encodings refer to the old weights; standardization
        # statistics are restored frozen until calibration resumes.
        self._pooled_cache.clear()
        self._ref_cache.clear()
        if "mu" in stats and "sigma" in stats:
            self._frozen_stats = (stats["mu"], stats["sigma"])

    # -- interaction loop -----------------------------------------------------

    def observe(
        self,
        bundle: ModelInput,
        actual: int,
        class_i_segments: tuple[str, ...] = (),
    ) -> CalibrationStep:
        """One environment interaction: predict, receive ground truth,
        store the preference pair and run minibatch DPO updates."""
        self._frozen_stats = None  # live statistics resume with training
        metric = self.config.metric
        pooled = self._pooled_for(bundle, list(class_i_segments) or None)
        prediction = self.model.heads[metric].predict(pooled)
        triplet = PreferenceTriplet(
            bundle=bundle,
            y_w=int(actual),
            y_l=prediction.value,
            class_i_segments=class_i_segments,
        )
        self.buffer.push(triplet)
        total_loss = 0.0
        updates = 0
        for _ in range(self.config.updates_per_step):
            batch = self.buffer.sample(self.config.minibatch, self._rng)
            loss_terms = [self._dpo_loss(t) for t in batch]
            loss_terms = [t for t in loss_terms if t is not None]
            if not loss_terms:
                continue
            total: Tensor = loss_terms[0]
            for term in loss_terms[1:]:
                total = total + term
            total = total / float(len(loss_terms))
            self._optimizer.zero_grad()
            total.backward()
            self._optimizer.clip_grad_norm(1.0)
            self._optimizer.step()
            total_loss += float(total.data)
            updates += 1
        return CalibrationStep(
            predicted=prediction.value,
            actual=int(actual),
            loss=total_loss / max(1, updates),
        )

    def run(
        self,
        environment: Iterable[tuple[ModelInput, int, tuple[str, ...]]],
        iterations: int = 5,
    ) -> CalibrationHistory:
        """Run *iterations* passes over an environment stream.

        Each stream element is ``(bundle, ground_truth, class_i_segments)``;
        the profiler producing ``ground_truth`` plays the role of
        SiliconCompiler/Verilator in Figure 4.
        """
        samples = list(environment)
        if not samples:
            raise CalibrationError("empty calibration environment")
        history = CalibrationHistory()
        for _ in range(iterations):
            apes = []
            for bundle, actual, segments in samples:
                step = self.observe(bundle, actual, segments)
                history.steps.append(step)
                apes.append(step.ape)
            history.iteration_mape.append(float(np.mean(apes)))
        return history


def make_environment(
    programs_and_data: Iterable[tuple[ModelInput, int]],
    class_i_segments: Callable[[int], tuple[str, ...]] | None = None,
) -> list[tuple[ModelInput, int, tuple[str, ...]]]:
    """Helper shaping (bundle, truth) pairs into calibrator streams."""
    result = []
    for index, (bundle, actual) in enumerate(programs_and_data):
        segments = class_i_segments(index) if class_i_segments else ()
        result.append((bundle, actual, segments))
    return result
