"""Design-space exploration on top of the cost model (paper §1's
motivating use case, accelerated per §5.3).

The explorer enumerates mapping candidates — unroll factors, parallel
pragmas and memory configurations — for a dataflow program, ranks them
with the (cached) cost model, and can verify the top candidates against
the ground-truth profiler.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..hls import HardwareParams
from ..lang import ast
from ..profiler import Profiler, StaticProfileCache
from ..tokenizer import ModelInput
from .acceleration import CachedPredictor
from .inputs import bundle_from_program, class_i_segments
from .model import CostModel


@dataclass(frozen=True)
class MappingChoice:
    """One spatial-mapping decision applied to a loop."""

    function: str
    loop_index: int  # pre-order index of the loop within the function
    unroll: int = 1  # 1 = none, 0 = full
    parallel: bool = False


@dataclass
class DesignPoint:
    """One candidate design: program mapping + hardware parameters."""

    program: ast.Program
    params: HardwareParams
    choices: tuple[MappingChoice, ...] = ()
    predicted: dict[str, int] = field(default_factory=dict)
    score: float = 0.0
    actual: Optional[dict[str, int]] = None
    # Campaign rewrite-axis name this point's program was derived under
    # ("" = unrewritten).  A search coordinate, constant within a cell.
    rewrite: str = ""

    def describe(self) -> str:
        parts = [f"mem={self.params.mem_read_delay}"]
        for choice in self.choices:
            label = f"{choice.function}#L{choice.loop_index}"
            if choice.unroll != 1:
                parts.append(f"{label}:unroll{choice.unroll or 'full'}")
            if choice.parallel:
                parts.append(f"{label}:par")
        return " ".join(parts) or "baseline"


def apply_mapping(program: ast.Program, choices: tuple[MappingChoice, ...]) -> ast.Program:
    """Apply mapping pragmas to a deep copy of *program*."""
    clone = copy.deepcopy(program)
    for choice in choices:
        func = clone.function(choice.function)
        loops = ast.loops_in(func.body)
        if not 0 <= choice.loop_index < len(loops):
            raise IndexError(
                f"{choice.function} has {len(loops)} loops; "
                f"index {choice.loop_index} is out of range"
            )
        loop = loops[choice.loop_index]
        loop.pragmas = [p for p in loop.pragmas if p.kind not in ("unroll", "parallel")]
        if choice.unroll != 1:
            loop.pragmas.append(ast.Pragma(kind="unroll", factor=choice.unroll))
        if choice.parallel:
            loop.pragmas.append(ast.Pragma(kind="parallel"))
    return clone


def default_objective(predicted: dict[str, int]) -> float:
    """Energy-delay-product-flavoured objective: cycles × area."""
    return float(predicted.get("cycles", 1)) * float(predicted.get("area", 1))


class DesignSpaceExplorer:
    """Enumerates, predicts and ranks mapping candidates."""

    def __init__(
        self,
        model: CostModel,
        objective: Callable[[dict[str, int]], float] = default_objective,
        use_cache: bool = True,
        sim_backend: str = "compiled",
        predictor: Optional[CachedPredictor] = None,
        static_cache: Optional[StaticProfileCache] = None,
    ) -> None:
        """``predictor`` / ``static_cache`` let a long-lived service
        (``repro.serve.PredictionEngine.explorer_for``) share its warm
        encoding and static-profile caches with DSE sweeps; by default
        the explorer owns private ones."""
        self.model = model
        self.objective = objective
        self.sim_backend = sim_backend
        # Exact mode: ranking fidelity matters more than partial reuse.
        # (Explicit None check: an empty CachedPredictor is falsy.)
        if predictor is None:
            predictor = CachedPredictor(model, enabled=use_cache, mode="exact")
        self.predictor = predictor
        # Shared by verify_top across explore() calls: re-verifying a
        # candidate already ground-truthed under the same params only
        # pays the simulation, not the static EDA flow.  (Explicit None
        # check: an empty StaticProfileCache is falsy.)
        if static_cache is None:
            static_cache = StaticProfileCache()
        self._static_cache = static_cache

    # -- candidate enumeration -------------------------------------------

    def enumerate_candidates(
        self,
        program: ast.Program,
        unroll_factors: tuple[int, ...] = (1, 2, 4),
        memory_delays: tuple[int, ...] = (10,),
        target_function: Optional[str] = None,
        max_candidates: int = 32,
    ) -> list[DesignPoint]:
        """Cartesian product of unroll factors on the innermost loop of
        each operator and the memory-delay options."""
        operators = [
            func.name
            for func in program.functions
            if func is not program.functions[-1] and ast.loops_in(func.body)
        ]
        if target_function is not None:
            operators = [name for name in operators if name == target_function]
        candidates: list[DesignPoint] = []
        per_op_options: list[list[MappingChoice]] = []
        for name in operators:
            loops = ast.loops_in(program.function(name).body)
            innermost = len(loops) - 1
            per_op_options.append(
                [
                    MappingChoice(function=name, loop_index=innermost, unroll=factor)
                    for factor in unroll_factors
                ]
            )
        for combo in itertools.product(*per_op_options):
            for delay in memory_delays:
                params = HardwareParams(mem_read_delay=delay, mem_write_delay=delay)
                mapped = apply_mapping(program, tuple(combo))
                candidates.append(
                    DesignPoint(program=mapped, params=params, choices=tuple(combo))
                )
                if len(candidates) >= max_candidates:
                    return candidates
        return candidates

    # -- ranking ---------------------------------------------------------------

    def _predict_point(
        self,
        point: DesignPoint,
        data: Optional[dict],
        bundle=None,
        segments: Optional[tuple[str, ...]] = None,
    ) -> None:
        if bundle is None:
            bundle = bundle_from_program(point.program, params=point.params, data=data)
        if segments is None:
            segments = tuple(class_i_segments(point.program))
        predicted: dict[str, int] = {}
        for metric in self.model.heads:
            predicted[metric] = self.predictor.predict(
                bundle, metric=metric, class_i_segments=segments
            ).value
        point.predicted = predicted
        point.score = self.objective(predicted)

    def _predict_points(self, points: list[DesignPoint], data: Optional[dict]) -> None:
        """Score candidates through one batched encoder pass.

        The batch encode fills the predictor's exact-mode cache for
        every cache-missing candidate at once; the per-metric predict
        calls below then run on cached pooled vectors.
        """
        bundles = [
            bundle_from_program(point.program, params=point.params, data=data)
            for point in points
        ]
        segments = [tuple(class_i_segments(point.program)) for point in points]
        self.predictor.warm(bundles, [list(s) for s in segments])
        for point, bundle, segs in zip(points, bundles, segments):
            self._predict_point(point, data, bundle=bundle, segments=segs)

    def explore(
        self,
        program: ast.Program | str,
        data: Optional[dict] = None,
        unroll_factors: tuple[int, ...] = (1, 2, 4),
        memory_delays: tuple[int, ...] = (10,),
        max_candidates: int = 32,
    ) -> list[DesignPoint]:
        """Enumerate, predict and rank candidates (best first)."""
        if isinstance(program, str):
            from ..lang import parse

            program = parse(program)
        candidates = self.enumerate_candidates(
            program,
            unroll_factors=unroll_factors,
            memory_delays=memory_delays,
            max_candidates=max_candidates,
        )
        self._predict_points(candidates, data)
        candidates.sort(key=lambda point: point.score)
        return candidates

    def verify_top(
        self,
        candidates: list[DesignPoint],
        top_k: int = 3,
        data: Optional[dict] = None,
        max_steps: int = 2_000_000,
    ) -> list[DesignPoint]:
        """Ground-truth the best *top_k* candidates with the profiler
        (the expensive step DSE tools reserve for finalists)."""
        for point in candidates[:top_k]:
            profiler = Profiler(
                point.params,
                max_steps=max_steps,
                backend=self.sim_backend,
                static_cache=self._static_cache,
            )
            report = profiler.profile(point.program, data=data)
            point.actual = report.costs.as_dict()
        return candidates[:top_k]

    @property
    def cache_hit_rate(self) -> float:
        return self.predictor.stats.hit_rate
