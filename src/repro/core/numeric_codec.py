"""Base-D numeric codec for output numerical modeling (paper §4.2).

A value is represented as a fixed-length sequence of base-``D`` digits,
most-significant first.  The codec also exposes the temporal/spatial
trade-off quantities the paper analyses (encoding length vs. per-digit
classification complexity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ModelConfigError


@dataclass(frozen=True)
class NumericCodec:
    """Fixed-length base-``base`` integer codec."""

    base: int = 10
    digits: int = 8

    def __post_init__(self) -> None:
        if self.base < 2:
            raise ModelConfigError("base must be >= 2")
        if self.digits < 1:
            raise ModelConfigError("digits must be >= 1")

    @property
    def max_value(self) -> int:
        return self.base**self.digits - 1

    def encode(self, value: int) -> list[int]:
        """Digits of *value*, MSB first, left-padded with zeros.

        Values outside ``[0, max_value]`` are clamped — the model can
        only express this range, exactly like the paper's fixed-digit
        output head.
        """
        value = int(round(value))
        value = min(max(value, 0), self.max_value)
        digits = []
        for _ in range(self.digits):
            digits.append(value % self.base)
            value //= self.base
        return list(reversed(digits))

    def decode(self, digits: list[int]) -> int:
        """Inverse of :meth:`encode`."""
        if len(digits) != self.digits:
            raise ModelConfigError(
                f"expected {self.digits} digits, got {len(digits)}"
            )
        value = 0
        for digit in digits:
            if not 0 <= digit < self.base:
                raise ModelConfigError(f"digit {digit} out of range for base {self.base}")
            value = value * self.base + digit
        return value

    # -- trade-off analysis (paper §4.2) --------------------------------

    def encoding_length(self, value: int) -> int:
        """Temporal efficiency: digits needed for *value* in this base."""
        if value <= 0:
            return 1
        return max(1, math.ceil(math.log(value + 1, self.base)))

    @property
    def logit_dimension(self) -> int:
        """Spatial efficiency: per-digit classification complexity."""
        return self.base


def tradeoff_table(value: int, bases: tuple[int, ...] = (2, 4, 8, 10, 16)) -> list[dict]:
    """Encoding length vs. logit dimension for each base (Fig-free
    analysis backing the §4.2 discussion; exercised by a bench)."""
    rows = []
    for base in bases:
        codec = NumericCodec(base=base, digits=max(1, math.ceil(math.log(value + 1, base))))
        rows.append(
            {
                "base": base,
                "encoding_length": codec.encoding_length(value),
                "logit_dimension": codec.logit_dimension,
                "cost_product": codec.encoding_length(value) * codec.logit_dimension,
            }
        )
    return rows
