"""Digit-wise classification output head (paper §4.2).

Instead of regressing a normalized scalar, the head predicts each
base-D digit of the target as an independent classification, decoded
MSB→LSB with beam search.  Per-digit softmax probabilities provide the
confidence signal Table 6 correlates with error.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..nn import Linear, Module, Tensor
from .numeric_codec import NumericCodec


@dataclass
class NumericPrediction:
    """A decoded numeric prediction with confidence information."""

    value: int
    confidence: float  # final-digit chosen probability (paper's choice)
    mean_confidence: float
    digit_confidences: list[float] = field(default_factory=list)
    digits: list[int] = field(default_factory=list)
    beam_values: list[int] = field(default_factory=list)


class DigitClassificationHead(Module):
    """Per-digit classifiers over a shared hidden representation."""

    def __init__(
        self,
        hidden_dim: int,
        codec: Optional[NumericCodec] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.codec = codec or NumericCodec()
        rng = rng or np.random.default_rng(0)
        self.heads = [
            Linear(hidden_dim, self.codec.base, rng=rng)
            for _ in range(self.codec.digits)
        ]

    # -- training --------------------------------------------------------

    def digit_logits(self, hidden: Tensor) -> list[Tensor]:
        """Per-digit logits, MSB first, each of shape ``(base,)``."""
        return [head(hidden) for head in self.heads]

    def loss(self, hidden: Tensor, target: int, msb_weighting: bool = True) -> Tensor:
        """Summed categorical cross-entropy over digits (paper Eq. 1).

        With ``msb_weighting`` each digit's term is scaled so
        higher-order digits — which dominate the absolute percentage
        error — receive geometrically more weight than lower-order ones.
        """
        digits = self.codec.encode(target)
        total: Optional[Tensor] = None
        count = len(digits)
        for position, (head, digit) in enumerate(zip(self.heads, digits)):
            log_probs = head(hidden).log_softmax()
            term = -log_probs[digit]
            if msb_weighting:
                weight = 1.35 ** (count - 1 - position)
                term = term * (weight / (1.35 ** (count - 1)) * count / 2.0)
            total = term if total is None else total + term
        assert total is not None
        return total

    def loss_batch(
        self, hidden: Tensor, targets: list[int], msb_weighting: bool = True
    ) -> Tensor:
        """Per-example digit cross-entropy over a ``(batch, dim)`` hidden.

        Returns a ``(batch,)`` tensor whose row *i* equals
        ``loss(hidden[i], targets[i])`` up to float tolerance.
        """
        digits = np.asarray([self.codec.encode(int(t)) for t in targets])
        rows = np.arange(len(targets))
        total: Optional[Tensor] = None
        count = digits.shape[1]
        for position, head in enumerate(self.heads):
            log_probs = head(hidden).log_softmax(axis=-1)
            term = -log_probs[rows, digits[:, position]]
            if msb_weighting:
                weight = 1.35 ** (count - 1 - position)
                term = term * (weight / (1.35 ** (count - 1)) * count / 2.0)
            total = term if total is None else total + term
        assert total is not None
        return total

    def log_prob_of(self, hidden: Tensor, value: int) -> Tensor:
        """``log π(value | hidden)`` = sum of digit log-probabilities.

        This is the policy log-likelihood the DPO calibration optimizes.
        """
        digits = self.codec.encode(value)
        total: Optional[Tensor] = None
        for head, digit in zip(self.heads, digits):
            log_probs = head(hidden).log_softmax()
            term = log_probs[digit]
            total = term if total is None else total + term
        assert total is not None
        return total

    # -- inference ----------------------------------------------------------

    def _decode_beams(
        self, probs: list[np.ndarray], beam_width: int
    ) -> NumericPrediction:
        """Beam-search decode MSB→LSB (paper's error-control mechanism).

        ``probs`` holds one ``(base,)`` probability vector per digit.
        Beams carry summed log-probabilities, so a low-confidence
        high-order digit can be overturned by later digits — the
        ``7XX → 655`` correction the paper describes.
        """
        # Each beam: (negative log prob, digit list).
        beams: list[tuple[float, list[int]]] = [(0.0, [])]
        for digit_probs in probs:
            log_p = np.log(np.maximum(digit_probs, 1e-12))
            candidates: list[tuple[float, list[int]]] = []
            order = np.argsort(log_p)[::-1][:beam_width]
            for neg_score, digits in beams:
                for digit in order:
                    candidates.append((neg_score - log_p[digit], digits + [int(digit)]))
            beams = heapq.nsmallest(beam_width, candidates, key=lambda item: item[0])
        best_digits = beams[0][1]
        digit_confidences = [
            float(digit_probs[digit])
            for digit_probs, digit in zip(probs, best_digits)
        ]
        return NumericPrediction(
            value=self.codec.decode(best_digits),
            confidence=digit_confidences[-1],
            mean_confidence=float(np.mean(digit_confidences)),
            digit_confidences=digit_confidences,
            digits=best_digits,
            beam_values=[self.codec.decode(d) for _, d in beams],
        )

    def predict(self, hidden: Tensor, beam_width: int = 3) -> NumericPrediction:
        """Decode one prediction from a ``(dim,)`` hidden vector."""
        probs = [
            np.asarray(head(hidden).softmax().data, dtype=np.float64)
            for head in self.heads
        ]
        return self._decode_beams(probs, beam_width)

    def predict_batch(
        self, hidden: Tensor, beam_width: int = 3
    ) -> list[NumericPrediction]:
        """Decode a ``(batch, dim)`` hidden matrix in one head pass.

        Digit probabilities come from batched matmuls; the (cheap)
        per-example beam decode is the same code path as ``predict``.
        """
        probs = [
            np.asarray(head(hidden).softmax(axis=-1).data, dtype=np.float64)
            for head in self.heads
        ]
        return [
            self._decode_beams([p[row] for p in probs], beam_width)
            for row in range(int(hidden.shape[0]))
        ]

    def greedy_predict(self, hidden: Tensor) -> NumericPrediction:
        """Greedy decode (beam width 1), used by ablations."""
        return self.predict(hidden, beam_width=1)
