"""Multi-objective utilities for design space exploration.

DSE over accelerator mappings is rarely single-objective: the paper's
cost vector ``<Power, Area, FF, Cycles>`` spans performance and
implementation cost, and a designer typically wants the cycles/area (or
cycles/power) trade-off curve rather than one scalarized winner.  This
module provides Pareto-dominance filtering and the hypervolume
indicator over :class:`~repro.core.explorer.DesignPoint` predictions.

All objectives are *minimized*, matching the cost-vector convention.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .explorer import DesignPoint

__all__ = [
    "dominates",
    "pareto_front",
    "pareto_points",
    "hypervolume_2d",
]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if cost vector *a* Pareto-dominates *b* (<= everywhere, < somewhere)."""
    if len(a) != len(b):
        raise ValueError("dominates() needs equal-length cost vectors")
    a_arr = np.asarray(a, dtype=np.float64)
    b_arr = np.asarray(b, dtype=np.float64)
    return bool(np.all(a_arr <= b_arr) and np.any(a_arr < b_arr))


def pareto_front(costs: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the non-dominated cost vectors, in input order.

    Duplicate vectors are all kept (none strictly dominates another), so
    equivalent designs remain visible to the caller.
    """
    vectors = [np.asarray(c, dtype=np.float64) for c in costs]
    if vectors and any(len(v) != len(vectors[0]) for v in vectors):
        raise ValueError("all cost vectors must have the same arity")
    front = []
    for i, candidate in enumerate(vectors):
        if not any(
            dominates(other, candidate)
            for j, other in enumerate(vectors)
            if j != i
        ):
            front.append(i)
    return front


def pareto_points(
    points: Sequence[DesignPoint],
    objectives: tuple[str, ...] = ("cycles", "area"),
    use_actual: bool = False,
) -> list[DesignPoint]:
    """Non-dominated design points under the named cost-vector metrics.

    Reads each point's ``predicted`` dict by default; pass
    ``use_actual=True`` after :meth:`DesignSpaceExplorer.verify_top` to
    build the ground-truth frontier instead.
    """
    if not objectives:
        raise ValueError("at least one objective is required")
    costs = []
    for point in points:
        source = point.actual if use_actual else point.predicted
        if source is None or any(metric not in source for metric in objectives):
            missing = "actual" if use_actual else "predicted"
            raise ValueError(
                f"design point {point.describe()!r} lacks {missing} values "
                f"for objectives {objectives}"
            )
        costs.append([float(source[metric]) for metric in objectives])
    return [points[i] for i in pareto_front(costs)]


def hypervolume_2d(
    costs: Sequence[tuple[float, float]],
    reference: tuple[float, float],
) -> float:
    """Hypervolume dominated by a 2-D front relative to *reference*.

    The reference point must be (weakly) worse than every cost in both
    objectives — every point must lie inside the reference box.  A
    point outside the box is a loud :class:`ValueError`: silently
    ignoring it (or folding it in) would report a volume for a
    different frontier than the caller handed in, and the comparison
    built on it (e.g. model-guided vs. random) would be garbage.
    Larger hypervolume = better frontier.
    """
    ref_x, ref_y = float(reference[0]), float(reference[1])
    points = [(float(x), float(y)) for x, y in costs]
    for x, y in points:
        if x > ref_x or y > ref_y:
            raise ValueError(
                f"hypervolume reference {(ref_x, ref_y)} must weakly "
                f"dominate-from-above every cost; ({x}, {y}) lies outside "
                "the reference box"
            )
    front_idx = pareto_front(points)
    front = sorted(points[i] for i in front_idx)
    volume = 0.0
    prev_y = ref_y
    for x, y in front:
        if y < prev_y:
            volume += (ref_x - x) * (prev_y - y)
            prev_y = y
    return volume
