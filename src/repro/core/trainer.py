"""Supervised training loop for the static prediction stage (paper §4).

The paper fine-tunes with AdamW + LoRA over 5 epochs; this trainer does
the same over the numpy stack (full fine-tuning by default, LoRA is
available through :class:`repro.nn.LoRALinear` for the heads).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..nn import AdamW
from ..tokenizer import ModelInput
from .model import CostModel


@dataclass
class TrainingExample:
    """One supervised example: input bundle + metric targets."""

    bundle: ModelInput
    targets: dict[str, int]
    class_i_segments: tuple[str, ...] = ()


@dataclass
class TrainingConfig:
    """Knobs for the SFT stage."""

    epochs: int = 3
    lr: float = 2e-3
    weight_decay: float = 0.01
    grad_clip: float = 1.0
    seed: int = 0
    shuffle: bool = True
    # "constant" or "cosine" (cosine decays to lr/10 over the run, with
    # a short warmup).
    lr_schedule: str = "constant"


@dataclass
class TrainingHistory:
    """Loss trajectory of one training run."""

    epoch_losses: list[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    examples_seen: int = 0

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


def train_cost_model(
    model: CostModel,
    examples: Sequence[TrainingExample],
    config: Optional[TrainingConfig] = None,
) -> TrainingHistory:
    """Train *model* on *examples*; returns the loss history.

    Sequences have heterogeneous lengths, so updates are per-example
    (batch size 1) with gradient clipping — adequate at this model
    scale and fully deterministic under the configured seed.
    """
    config = config or TrainingConfig()
    optimizer = AdamW(
        model.parameters(), lr=config.lr, weight_decay=config.weight_decay
    )
    scheduler = None
    if config.lr_schedule == "cosine":
        from ..nn.schedulers import WarmupCosine

        total = max(2, config.epochs * len(examples))
        scheduler = WarmupCosine(
            optimizer,
            total_steps=total,
            warmup_steps=min(total - 1, max(1, total // 20)),
            floor=config.lr / 10.0,
        )
    elif config.lr_schedule != "constant":
        raise ValueError(f"unknown lr schedule {config.lr_schedule!r}")
    rng = np.random.default_rng(config.seed)
    history = TrainingHistory()
    order = np.arange(len(examples))
    start = time.perf_counter()
    for _ in range(config.epochs):
        if config.shuffle:
            rng.shuffle(order)
        epoch_loss = 0.0
        for index in order:
            example = examples[index]
            optimizer.zero_grad()
            loss = model.loss(
                example.bundle,
                example.targets,
                class_i_segments=list(example.class_i_segments) or None,
            )
            loss.backward()
            optimizer.clip_grad_norm(config.grad_clip)
            if scheduler is not None:
                scheduler.step()
            optimizer.step()
            epoch_loss += float(loss.data)
            history.examples_seen += 1
        history.epoch_losses.append(epoch_loss / max(1, len(examples)))
    history.wall_seconds = time.perf_counter() - start
    return history
