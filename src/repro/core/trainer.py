"""Supervised training loop for the static prediction stage (paper §4).

The paper fine-tunes with AdamW + LoRA over 5 epochs; this trainer does
the same over the numpy stack (full fine-tuning by default, LoRA is
available through :class:`repro.nn.LoRALinear` for the heads).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..errors import DatasetError
from ..nn import AdamW
from ..telemetry import TRACER, clock
from ..tokenizer import ModelInput
from .model import CostModel


@dataclass
class TrainingExample:
    """One supervised example: input bundle + metric targets."""

    bundle: ModelInput
    targets: dict[str, int]
    class_i_segments: tuple[str, ...] = ()


@dataclass
class TrainingConfig:
    """Knobs for the SFT stage."""

    epochs: int = 3
    lr: float = 2e-3
    weight_decay: float = 0.01
    grad_clip: float = 1.0
    seed: int = 0
    shuffle: bool = True
    # "constant" or "cosine" (cosine decays to lr/10 over the run, with
    # a short warmup).
    lr_schedule: str = "constant"
    # Examples per optimizer update.  Batches are length-bucketed so
    # sequences of similar size share one padded forward pass; the loss
    # is averaged over the batch, so the update magnitude stays
    # comparable across batch sizes.
    batch_size: int = 1
    # Token width of a length bucket (only used when batch_size > 1).
    bucket_width: int = 64


@dataclass
class TrainingHistory:
    """Loss trajectory of one training run."""

    epoch_losses: list[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    examples_seen: int = 0

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


def _bucketed_batches(
    order: np.ndarray,
    lengths: Optional[list[int]],
    config: TrainingConfig,
    rng: np.random.Generator,
) -> list[list[int]]:
    """Chunk a (shuffled) example order into length-bucketed batches.

    The stable sort groups similarly-sized sequences (so padding stays
    small) while preserving the shuffled order inside each bucket; the
    batch order itself is then reshuffled so long sequences are not
    always seen last.
    """
    if config.batch_size <= 1:
        return [[int(index)] for index in order]
    if lengths is None:
        raise DatasetError(
            "batched training needs per-example token lengths; "
            "batch_size > 1 without them cannot bucket"
        )
    keyed = sorted(order, key=lambda index: lengths[index] // config.bucket_width)
    batches = [
        [int(index) for index in keyed[start : start + config.batch_size]]
        for start in range(0, len(keyed), config.batch_size)
    ]
    if config.shuffle and len(batches) > 1:
        batches = [batches[p] for p in rng.permutation(len(batches))]
    return batches


def train_cost_model(
    model: CostModel,
    examples: Sequence[TrainingExample],
    config: Optional[TrainingConfig] = None,
) -> TrainingHistory:
    """Train *model* on *examples*; returns the loss history.

    Updates run through the batched model path: each mini-batch is one
    padded ``loss_batch`` forward/backward, averaged per example.
    ``batch_size=1`` (the default) reproduces the classic per-example
    trajectory; larger batches trade exact step-for-step equivalence for
    throughput.
    """
    config = config or TrainingConfig()
    if config.batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    optimizer = AdamW(
        model.parameters(), lr=config.lr, weight_decay=config.weight_decay
    )
    updates_per_epoch = max(1, math.ceil(len(examples) / config.batch_size))
    scheduler = None
    if config.lr_schedule == "cosine":
        from ..nn.schedulers import WarmupCosine

        total = max(2, config.epochs * updates_per_epoch)
        scheduler = WarmupCosine(
            optimizer,
            total_steps=total,
            warmup_steps=min(total - 1, max(1, total // 20)),
            floor=config.lr / 10.0,
        )
        scheduler.start()
    elif config.lr_schedule != "constant":
        raise ValueError(f"unknown lr schedule {config.lr_schedule!r}")
    rng = np.random.default_rng(config.seed)
    history = TrainingHistory()
    order = np.arange(len(examples))
    lengths = None
    if config.batch_size > 1:
        lengths = [len(model.tokenize(example.bundle)) for example in examples]
    start = clock.now()
    for epoch in range(config.epochs):
        if config.shuffle:
            rng.shuffle(order)
        epoch_loss = 0.0
        epoch_examples = 0
        with TRACER.span("train.epoch", {"epoch": epoch}) as span:
            for batch_indices in _bucketed_batches(order, lengths, config, rng):
                batch = [examples[index] for index in batch_indices]
                optimizer.zero_grad()
                per_example = model.loss_batch(
                    [example.bundle for example in batch],
                    [example.targets for example in batch],
                    [list(example.class_i_segments) or None for example in batch],
                )
                per_example.mean().backward()
                optimizer.clip_grad_norm(config.grad_clip)
                optimizer.step()
                # The scheduler advances *after* the update, so update k
                # applies lr_at(k - 1): the warmup ramp starts at its
                # initial (nonzero) rate instead of being consumed one
                # step early (see Scheduler.start).
                if scheduler is not None:
                    scheduler.step()
                epoch_loss += float(per_example.data.sum())
                epoch_examples += len(batch)
                history.examples_seen += len(batch)
            # Average over the examples actually seen this epoch, not
            # the nominal corpus size, so partial epochs stay comparable.
            mean_loss = epoch_loss / max(1, epoch_examples)
            span.set_attr("loss", round(mean_loss, 6))
        history.epoch_losses.append(mean_loss)
    history.wall_seconds = clock.now() - start
    return history
