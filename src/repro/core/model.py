"""The LLMulator cost model.

A transformer encoder over progressively-encoded program text with one
digit-classification head per performance metric.  Static metrics
(power, area, FF) are predicted from ``{G, Op, Params}``; the dynamic
metric (cycles) additionally sees the runtime ``data`` segment
(§5.2's input-vector split).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..errors import ModelConfigError
from ..nn import Module, Tensor, TransformerConfig, TransformerEncoder, concat, no_grad
from ..profiler import METRICS, STATIC_METRICS
from ..telemetry import METRICS as TELEMETRY_METRICS
from ..telemetry import SIZE_BUCKETS, TRACER, clock
from ..tokenizer import ModelInput, NumericMode, ProgressiveTokenizer, TokenizedInput, VOCAB

_ENCODE_BATCH_SIZE = TELEMETRY_METRICS.histogram(
    "model.encode.batch_size", SIZE_BUCKETS
)
_ENCODE_CHUNK_SIZE = TELEMETRY_METRICS.histogram(
    "model.encode.chunk_size", SIZE_BUCKETS
)
_ENCODE_MS = TELEMETRY_METRICS.histogram("model.encode.ms")
from .numeric_codec import NumericCodec
from .numeric_head import DigitClassificationHead, NumericPrediction
from .separation import build_separation_mask


@dataclass(frozen=True)
class LLMulatorConfig:
    """Hyper-parameters of the cost model."""

    numeric_mode: NumericMode = "digit"
    tier: str = "1B"
    base: int = 10
    digits: int = 8
    max_seq_len: int = 320
    beam_width: int = 3
    seed: int = 0
    use_separation: bool = True
    metrics: tuple[str, ...] = tuple(METRICS)

    def codec(self) -> NumericCodec:
        return NumericCodec(base=self.base, digits=self.digits)


@dataclass
class CostPrediction:
    """Predictions for every metric of one input."""

    per_metric: dict[str, NumericPrediction] = field(default_factory=dict)

    def value(self, metric: str) -> int:
        return self.per_metric[metric].value

    def confidence(self, metric: str) -> float:
        return self.per_metric[metric].confidence

    def as_dict(self) -> dict[str, int]:
        return {metric: pred.value for metric, pred in self.per_metric.items()}


class CostModel(Module):
    """LLMulator: encoder + per-metric digit classification heads."""

    def __init__(self, config: Optional[LLMulatorConfig] = None) -> None:
        self.config = config or LLMulatorConfig()
        self.tokenizer = ProgressiveTokenizer(
            numeric_mode=self.config.numeric_mode,
            max_length=self.config.max_seq_len,
        )
        encoder_config = TransformerConfig.tier(
            self.config.tier, vocab_size=len(VOCAB), max_seq_len=self.config.max_seq_len
        )
        self.encoder = TransformerEncoder(encoder_config, seed=self.config.seed)
        rng = np.random.default_rng(self.config.seed + 1)
        codec = self.config.codec()
        self.heads = {
            metric: DigitClassificationHead(encoder_config.dim, codec=codec, rng=rng)
            for metric in self.config.metrics
        }

    @property
    def codec(self) -> NumericCodec:
        """The digit codec shared by every metric head."""
        return next(iter(self.heads.values())).codec

    # -- encoding ----------------------------------------------------------

    # Bounded FIFO memo for tokenization: repeated encodes of the same
    # bundle (DSE sweeps, static/dynamic prediction pairs, training
    # epochs) skip the pure-Python tokenizer pass.
    _TOKENIZE_CACHE_LIMIT = 512

    def tokenize(self, bundle: ModelInput) -> TokenizedInput:
        key = (
            bundle.graph_text,
            tuple(bundle.op_texts),
            bundle.params_text,
            bundle.data_text,
            bundle.think_text,
        )
        cache = self.__dict__.setdefault("_tokenize_cache", {})
        cached = cache.get(key)
        if cached is not None:
            return cached
        tokenized = self.tokenizer.encode_bundle(bundle)
        if len(cache) >= self._TOKENIZE_CACHE_LIMIT:
            cache.pop(next(iter(cache)))
        cache[key] = tokenized
        return tokenized

    def _mask_for(
        self,
        tokenized: TokenizedInput,
        class_i_segments: Optional[list[str]],
    ) -> Optional[np.ndarray]:
        if not self.config.use_separation or not class_i_segments:
            return None
        if "data" not in tokenized.segment_slices:
            return None
        return build_separation_mask(tokenized, class_i_segments)

    def encode(
        self,
        bundle: ModelInput,
        class_i_segments: Optional[list[str]] = None,
    ) -> Tensor:
        """Pooled hidden representation of *bundle*.

        Pooling is mean over all tokens plus the means of the ``params``
        and runtime ``data`` segments when present — without the
        emphasis, the handful of configuration/input tokens would be
        diluted by thousands of program tokens and the predictions would
        lose hardware- and input-sensitivity.
        """
        tokenized = self.tokenize(bundle)
        mask = self._mask_for(tokenized, class_i_segments)
        hidden = self.encoder.encode(tokenized.ids, mask=mask)
        pooled = self.encoder.pool(hidden)
        for segment in ("params", "data"):
            segment_slice = tokenized.segment_slices.get(segment)
            if segment_slice is None:
                continue
            # A segment straddling the truncation point keeps its
            # surviving prefix in the pooling emphasis instead of being
            # silently dropped.
            stop = min(segment_slice.stop, hidden.shape[0])
            if stop > segment_slice.start:
                pooled = pooled + hidden[segment_slice.start : stop, :].mean(axis=0)
        return pooled

    def _broadcast_segments(
        self,
        class_i_segments,
        count: int,
    ) -> list[Optional[list[str]]]:
        """Normalize a shared or per-bundle Class-I segment spec."""
        if class_i_segments is None:
            return [None] * count
        items = list(class_i_segments)
        if all(isinstance(item, str) for item in items):
            shared = items or None
            return [shared] * count
        if len(items) != count:
            raise ModelConfigError(
                f"per-bundle class_i_segments has {len(items)} entries "
                f"for {count} bundles"
            )
        return [list(item) if item else None for item in items]

    # Element budget for one sub-batch's attention score tensor
    # (batch · heads · seq²).  Keeping scores L2/L3-resident matters more
    # than maximal batching on CPU: oversized batches thrash the cache on
    # the softmax chain and lose more than the batching saves.
    _SCORE_BUDGET = 600_000

    def encode_batch(
        self,
        bundles: Sequence[ModelInput],
        class_i_segments=None,
    ) -> Tensor:
        """Pooled representations for a batch of bundles → ``(batch, dim)``.

        ``class_i_segments`` is either one segment-name list shared by
        every bundle or a per-bundle sequence (``None`` entries disable
        separation for that bundle).  Bundles are length-sorted and
        chunked into cache-sized sub-batches, each padded to its own
        max; padding is excluded from attention and pooling, so row *i*
        matches ``encode(bundles[i], ...)`` up to float tolerance.
        """
        bundles = list(bundles)
        if not bundles:
            raise ModelConfigError("encode_batch requires at least one bundle")
        _ENCODE_BATCH_SIZE.observe(len(bundles))
        start = clock.now()
        per_bundle = self._broadcast_segments(class_i_segments, len(bundles))
        tokenized = [self.tokenize(bundle) for bundle in bundles]
        masks = [
            self._mask_for(tok, segments)
            for tok, segments in zip(tokenized, per_bundle)
        ]
        limit = self.encoder.config.max_seq_len
        lengths = [min(len(tok), limit) for tok in tokenized]
        if len(bundles) <= 1:
            _ENCODE_CHUNK_SIZE.observe(len(bundles))
            with TRACER.span(
                "model.encode", {"batch_size": len(bundles), "chunks": 1}
            ):
                pooled = self._encode_batch_padded(tokenized, masks, lengths)
            _ENCODE_MS.observe((clock.now() - start) * 1000.0)
            return pooled
        heads = self.encoder.config.heads
        order = sorted(range(len(bundles)), key=lambda index: lengths[index])
        chunks: list[list[int]] = []
        current: list[int] = []
        for index in order:
            # lengths ascend, so the newest member sets the padded width.
            cost = (len(current) + 1) * heads * lengths[index] ** 2
            if current and cost > self._SCORE_BUDGET:
                chunks.append(current)
                current = []
            current.append(index)
        chunks.append(current)
        with TRACER.span(
            "model.encode",
            {"batch_size": len(bundles), "chunks": len(chunks)},
        ):
            pooled_chunks = []
            for chunk in chunks:
                _ENCODE_CHUNK_SIZE.observe(len(chunk))
                pooled_chunks.append(
                    self._encode_batch_padded(
                        [tokenized[i] for i in chunk],
                        [masks[i] for i in chunk],
                        [lengths[i] for i in chunk],
                    )
                )
        _ENCODE_MS.observe((clock.now() - start) * 1000.0)
        flat_order = [index for chunk in chunks for index in chunk]
        stacked = concat(pooled_chunks, axis=0)
        if flat_order == sorted(flat_order):
            return stacked
        return stacked[np.argsort(flat_order)]

    def _encode_batch_padded(
        self,
        tokenized: list[TokenizedInput],
        masks: list[Optional[np.ndarray]],
        lengths: list[int],
    ) -> Tensor:
        """One padded encoder pass over pre-tokenized sequences."""
        batch, seq = len(tokenized), max(lengths)
        ids = np.zeros((batch, seq), dtype=np.int64)
        padding = np.zeros((batch, seq))
        stacked_masks: Optional[np.ndarray] = None
        if any(mask is not None for mask in masks):
            stacked_masks = np.zeros((batch, seq, seq))
        for row, (tok, mask, length) in enumerate(zip(tokenized, masks, lengths)):
            ids[row, :length] = tok.ids[:length]
            padding[row, :length] = 1.0
            if mask is not None:
                stacked_masks[row, :length, :length] = mask[:length, :length]
        hidden = self.encoder.encode_batch(
            ids, padding_mask=padding, masks=stacked_masks
        )
        # One combined weight matrix folds the padding-aware mean and
        # the params/data emphasis means into a single weighted sum.
        # Must mirror the pooling semantics of ``encode`` (the
        # single-example reference path) exactly, including the
        # truncation-straddle clamp — the parity suite in
        # tests/test_batched_model.py enforces row-equivalence.
        weights = np.zeros((batch, seq))
        for row, length in enumerate(lengths):
            weights[row, :length] = 1.0 / length
        for segment in ("params", "data"):
            for row, (tok, length) in enumerate(zip(tokenized, lengths)):
                segment_slice = tok.segment_slices.get(segment)
                if segment_slice is None:
                    continue
                stop = min(segment_slice.stop, length)
                if stop > segment_slice.start:
                    weights[row, segment_slice.start : stop] += 1.0 / (
                        stop - segment_slice.start
                    )
        return (hidden * Tensor(weights[:, :, None])).sum(axis=1)

    # -- training ------------------------------------------------------------

    def loss(
        self,
        bundle: ModelInput,
        targets: dict[str, int],
        class_i_segments: Optional[list[str]] = None,
    ) -> Tensor:
        """Summed digit cross-entropy over the provided metric targets."""
        unknown = set(targets) - set(self.heads)
        if unknown:
            raise ModelConfigError(f"unknown metrics {sorted(unknown)}")
        pooled = self.encode(bundle, class_i_segments)
        total: Optional[Tensor] = None
        for metric, target in targets.items():
            term = self.heads[metric].loss(pooled, target)
            total = term if total is None else total + term
        assert total is not None
        return total

    def loss_batch(
        self,
        bundles: Sequence[ModelInput],
        targets: Sequence[dict[str, int]],
        class_i_segments=None,
    ) -> Tensor:
        """Per-example losses over one batched encoding pass → ``(batch,)``.

        Row *i* equals ``loss(bundles[i], targets[i], ...)`` within float
        tolerance; examples may carry different metric subsets.
        """
        bundles = list(bundles)
        targets = list(targets)
        if len(bundles) != len(targets):
            raise ModelConfigError(
                f"{len(bundles)} bundles vs {len(targets)} target dicts"
            )
        unknown = set().union(*targets, set()) - set(self.heads)
        if unknown:
            raise ModelConfigError(f"unknown metrics {sorted(unknown)}")
        pooled = self.encode_batch(bundles, class_i_segments)
        batch = len(bundles)
        total = Tensor(np.zeros(batch))
        for metric, head in self.heads.items():
            rows = [i for i, t in enumerate(targets) if metric in t]
            if not rows:
                continue
            values = [int(targets[i][metric]) for i in rows]
            if len(rows) == batch:
                total = total + head.loss_batch(pooled, values)
                continue
            row_idx = np.asarray(rows)
            per_row = head.loss_batch(pooled[row_idx], values)
            scatter = np.zeros((batch, len(rows)))
            scatter[row_idx, np.arange(len(rows))] = 1.0
            total = total + Tensor(scatter) @ per_row
        return total

    # -- inference --------------------------------------------------------------

    def predict(
        self,
        bundle: ModelInput,
        metric: str,
        class_i_segments: Optional[list[str]] = None,
        beam_width: Optional[int] = None,
    ) -> NumericPrediction:
        if metric not in self.heads:
            raise ModelConfigError(f"unknown metric {metric!r}")
        with no_grad():
            pooled = self.encode(bundle, class_i_segments)
            return self.heads[metric].predict(
                pooled, beam_width=beam_width or self.config.beam_width
            )

    def predict_costs(
        self,
        bundle: ModelInput,
        class_i_segments: Optional[list[str]] = None,
        beam_width: Optional[int] = None,
    ) -> CostPrediction:
        """Predict every configured metric from one encoding pass.

        Static metrics are predicted from a data-free variant of the
        bundle; cycles sees the full bundle (the §5.2 split).
        """
        width = beam_width or self.config.beam_width
        result = CostPrediction()
        static_bundle = ModelInput(
            graph_text=bundle.graph_text,
            op_texts=bundle.op_texts,
            params_text=bundle.params_text,
            data_text="",
            think_text=bundle.think_text,
        )
        with no_grad():
            static_pooled = self.encode(static_bundle, class_i_segments)
            dynamic_pooled = (
                self.encode(bundle, class_i_segments)
                if bundle.data_text
                else static_pooled
            )
            for metric, head in self.heads.items():
                pooled = static_pooled if metric in STATIC_METRICS else dynamic_pooled
                result.per_metric[metric] = head.predict(pooled, beam_width=width)
        return result

    def predict_costs_batch(
        self,
        bundles: Sequence[ModelInput],
        class_i_segments=None,
        beam_width: Optional[int] = None,
    ) -> list[CostPrediction]:
        """Batched :meth:`predict_costs` — two encoder passes per batch.

        Static metrics read a data-free encoding of every bundle; the
        dynamic encoding pass only covers bundles that actually carry a
        ``data`` segment (others reuse their static row, like the single
        path).  ``class_i_segments`` follows :meth:`encode_batch`.
        """
        bundles = list(bundles)
        if not bundles:
            return []
        width = beam_width or self.config.beam_width
        per_bundle = self._broadcast_segments(class_i_segments, len(bundles))
        with no_grad():
            return self._predict_costs_batch_inner(bundles, per_bundle, width)

    def _predict_costs_batch_inner(
        self,
        bundles: list[ModelInput],
        per_bundle: list[Optional[list[str]]],
        width: int,
    ) -> list[CostPrediction]:
        static_bundles = [
            ModelInput(
                graph_text=bundle.graph_text,
                op_texts=bundle.op_texts,
                params_text=bundle.params_text,
                data_text="",
                think_text=bundle.think_text,
            )
            for bundle in bundles
        ]
        static_pooled = np.asarray(
            self.encode_batch(static_bundles, per_bundle).data, dtype=np.float64
        )
        dynamic_pooled = static_pooled.copy()
        dynamic_rows = [i for i, bundle in enumerate(bundles) if bundle.data_text]
        if dynamic_rows:
            encoded = self.encode_batch(
                [bundles[i] for i in dynamic_rows],
                [per_bundle[i] for i in dynamic_rows],
            )
            dynamic_pooled[np.asarray(dynamic_rows)] = np.asarray(encoded.data)
        static_t = Tensor(static_pooled)
        dynamic_t = Tensor(dynamic_pooled)
        results = [CostPrediction() for _ in bundles]
        for metric, head in self.heads.items():
            hidden = static_t if metric in STATIC_METRICS else dynamic_t
            for row, prediction in enumerate(
                head.predict_batch(hidden, beam_width=width)
            ):
                results[row].per_metric[metric] = prediction
        return results
