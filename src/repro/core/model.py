"""The LLMulator cost model.

A transformer encoder over progressively-encoded program text with one
digit-classification head per performance metric.  Static metrics
(power, area, FF) are predicted from ``{G, Op, Params}``; the dynamic
metric (cycles) additionally sees the runtime ``data`` segment
(§5.2's input-vector split).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import ModelConfigError
from ..nn import Module, Tensor, TransformerConfig, TransformerEncoder
from ..profiler import METRICS, STATIC_METRICS
from ..tokenizer import ModelInput, NumericMode, ProgressiveTokenizer, TokenizedInput, VOCAB
from .numeric_codec import NumericCodec
from .numeric_head import DigitClassificationHead, NumericPrediction
from .separation import build_separation_mask


@dataclass(frozen=True)
class LLMulatorConfig:
    """Hyper-parameters of the cost model."""

    numeric_mode: NumericMode = "digit"
    tier: str = "1B"
    base: int = 10
    digits: int = 8
    max_seq_len: int = 320
    beam_width: int = 3
    seed: int = 0
    use_separation: bool = True
    metrics: tuple[str, ...] = tuple(METRICS)

    def codec(self) -> NumericCodec:
        return NumericCodec(base=self.base, digits=self.digits)


@dataclass
class CostPrediction:
    """Predictions for every metric of one input."""

    per_metric: dict[str, NumericPrediction] = field(default_factory=dict)

    def value(self, metric: str) -> int:
        return self.per_metric[metric].value

    def confidence(self, metric: str) -> float:
        return self.per_metric[metric].confidence

    def as_dict(self) -> dict[str, int]:
        return {metric: pred.value for metric, pred in self.per_metric.items()}


class CostModel(Module):
    """LLMulator: encoder + per-metric digit classification heads."""

    def __init__(self, config: Optional[LLMulatorConfig] = None) -> None:
        self.config = config or LLMulatorConfig()
        self.tokenizer = ProgressiveTokenizer(
            numeric_mode=self.config.numeric_mode,
            max_length=self.config.max_seq_len,
        )
        encoder_config = TransformerConfig.tier(
            self.config.tier, vocab_size=len(VOCAB), max_seq_len=self.config.max_seq_len
        )
        self.encoder = TransformerEncoder(encoder_config, seed=self.config.seed)
        rng = np.random.default_rng(self.config.seed + 1)
        codec = self.config.codec()
        self.heads = {
            metric: DigitClassificationHead(encoder_config.dim, codec=codec, rng=rng)
            for metric in self.config.metrics
        }

    @property
    def codec(self) -> NumericCodec:
        """The digit codec shared by every metric head."""
        return next(iter(self.heads.values())).codec

    # -- encoding ----------------------------------------------------------

    def tokenize(self, bundle: ModelInput) -> TokenizedInput:
        return self.tokenizer.encode_bundle(bundle)

    def _mask_for(
        self,
        tokenized: TokenizedInput,
        class_i_segments: Optional[list[str]],
    ) -> Optional[np.ndarray]:
        if not self.config.use_separation or not class_i_segments:
            return None
        if "data" not in tokenized.segment_slices:
            return None
        return build_separation_mask(tokenized, class_i_segments)

    def encode(
        self,
        bundle: ModelInput,
        class_i_segments: Optional[list[str]] = None,
    ) -> Tensor:
        """Pooled hidden representation of *bundle*.

        Pooling is mean over all tokens plus the means of the ``params``
        and runtime ``data`` segments when present — without the
        emphasis, the handful of configuration/input tokens would be
        diluted by thousands of program tokens and the predictions would
        lose hardware- and input-sensitivity.
        """
        tokenized = self.tokenize(bundle)
        mask = self._mask_for(tokenized, class_i_segments)
        hidden = self.encoder.encode(tokenized.ids, mask=mask)
        pooled = self.encoder.pool(hidden)
        for segment in ("params", "data"):
            segment_slice = tokenized.segment_slices.get(segment)
            if segment_slice is not None and segment_slice.stop <= hidden.shape[0]:
                pooled = pooled + hidden[segment_slice, :].mean(axis=0)
        return pooled

    # -- training ------------------------------------------------------------

    def loss(
        self,
        bundle: ModelInput,
        targets: dict[str, int],
        class_i_segments: Optional[list[str]] = None,
    ) -> Tensor:
        """Summed digit cross-entropy over the provided metric targets."""
        unknown = set(targets) - set(self.heads)
        if unknown:
            raise ModelConfigError(f"unknown metrics {sorted(unknown)}")
        pooled = self.encode(bundle, class_i_segments)
        total: Optional[Tensor] = None
        for metric, target in targets.items():
            term = self.heads[metric].loss(pooled, target)
            total = term if total is None else total + term
        assert total is not None
        return total

    # -- inference --------------------------------------------------------------

    def predict(
        self,
        bundle: ModelInput,
        metric: str,
        class_i_segments: Optional[list[str]] = None,
        beam_width: Optional[int] = None,
    ) -> NumericPrediction:
        if metric not in self.heads:
            raise ModelConfigError(f"unknown metric {metric!r}")
        pooled = self.encode(bundle, class_i_segments)
        return self.heads[metric].predict(
            pooled, beam_width=beam_width or self.config.beam_width
        )

    def predict_costs(
        self,
        bundle: ModelInput,
        class_i_segments: Optional[list[str]] = None,
        beam_width: Optional[int] = None,
    ) -> CostPrediction:
        """Predict every configured metric from one encoding pass.

        Static metrics are predicted from a data-free variant of the
        bundle; cycles sees the full bundle (the §5.2 split).
        """
        width = beam_width or self.config.beam_width
        result = CostPrediction()
        static_bundle = ModelInput(
            graph_text=bundle.graph_text,
            op_texts=bundle.op_texts,
            params_text=bundle.params_text,
            data_text="",
            think_text=bundle.think_text,
        )
        static_pooled = self.encode(static_bundle, class_i_segments)
        dynamic_pooled = (
            self.encode(bundle, class_i_segments) if bundle.data_text else static_pooled
        )
        for metric, head in self.heads.items():
            pooled = static_pooled if metric in STATIC_METRICS else dynamic_pooled
            result.per_metric[metric] = head.predict(pooled, beam_width=width)
        return result
