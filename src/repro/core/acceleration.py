"""Dynamic prediction acceleration (paper §5.3).

Repeated cost queries during design-space exploration usually change
only one operator or only the runtime data.  Under the decoupled
attention pattern of Figure 6 (operators do not attend to each other),
each operator's representation can be computed independently and
cached; re-evaluation after a localized edit recomputes only the dirty
segment instead of the whole sequence.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..nn import Tensor, no_grad
from ..telemetry import clock
from ..tokenizer import ModelInput
from .model import CostModel
from .numeric_head import NumericPrediction


@dataclass
class AccelerationStats:
    """Cache behaviour counters."""

    hits: int = 0
    misses: int = 0
    last_latency_s: float = 0.0
    latencies: list[float] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _digest(*texts: str) -> str:
    hasher = hashlib.md5()
    for text in texts:
        hasher.update(text.encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


class CachedPredictor:
    """Inference wrapper with representation caching.

    Two modes:

    * ``"decoupled"`` (paper §5.3) — each operator segment is encoded
      against its *visible* context only (graph + params, plus runtime
      data for Class II operators) and cached by content digest; the
      final representation averages the segment vectors.  Localized
      edits recompute only dirty segments, at the cost of the
      block-decoupled approximation.
    * ``"exact"`` — the full bundle's pooled encoding is cached by
      content digest.  Numerically identical to the uncached model;
      repeated queries of unchanged bundles are free, but any edit
      recomputes everything.
    """

    def __init__(
        self,
        model: CostModel,
        enabled: bool = True,
        mode: str = "decoupled",
        max_entries: Optional[int] = None,
    ) -> None:
        if mode not in ("decoupled", "exact"):
            raise ValueError(f"unknown cache mode {mode!r}")
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.model = model
        self.enabled = enabled
        self.mode = mode
        self.max_entries = max_entries
        self.stats = AccelerationStats()
        self._cache: dict[str, np.ndarray] = {}

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)

    def _lookup(self, key: str) -> Optional[np.ndarray]:
        """Cache read that refreshes LRU recency on a hit."""
        vector = self._cache.pop(key, None)
        if vector is not None:
            self._cache[key] = vector
        return vector

    def _store(self, key: str, vector: np.ndarray) -> None:
        self._cache.pop(key, None)
        self._cache[key] = vector
        if self.max_entries is not None:
            while len(self._cache) > self.max_entries:
                self._cache.pop(next(iter(self._cache)))

    def stats_dict(self) -> dict:
        """Introspection snapshot (surfaced at ``/stats`` and by
        ``explore --verbose``)."""
        return {
            "mode": self.mode,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "hit_rate": round(self.stats.hit_rate, 4),
            "size": len(self._cache),
            "max_entries": self.max_entries,
        }

    @staticmethod
    def _exact_key(bundle: ModelInput) -> str:
        return _digest(
            "exact",
            bundle.graph_text,
            *bundle.op_texts,
            bundle.params_text,
            bundle.data_text,
            bundle.think_text,
        )

    def warm(
        self,
        bundles: list[ModelInput],
        class_i_segments=None,
    ) -> int:
        """Batch-encode every cache-missing bundle in one encoder pass.

        Exact mode only (decoupled mode caches per-segment vectors, a
        granularity one batched pass cannot fill).  Subsequent
        :meth:`predict` calls for the warmed bundles hit the cache, so a
        DSE sweep pays one ``encode_batch`` instead of N ``encode``
        calls.  ``class_i_segments`` is shared or per-bundle, following
        :meth:`CostModel.encode_batch`.  Returns the number of bundles
        encoded; mirrors exact-mode keys, which (deliberately) do not
        include the separation segments.
        """
        if not self.enabled or self.mode != "exact":
            return 0
        per_bundle = self.model._broadcast_segments(class_i_segments, len(bundles))
        missing: dict[str, tuple[ModelInput, Optional[list]]] = {}
        for bundle, segments in zip(bundles, per_bundle):
            key = self._exact_key(bundle)
            if key not in self._cache and key not in missing:
                missing[key] = (bundle, segments)
        if not missing:
            return 0
        with no_grad():
            pooled = self.model.encode_batch(
                [bundle for bundle, _ in missing.values()],
                [segments for _, segments in missing.values()],
            )
        vectors = np.asarray(pooled.data, dtype=np.float64)
        for key, vector in zip(missing, vectors):
            self._store(key, vector)
        self.stats.misses += len(missing)
        return len(missing)

    def _segment_vector(self, key: str, bundle: ModelInput) -> np.ndarray:
        if self.enabled:
            cached = self._lookup(key)
            if cached is not None:
                self.stats.hits += 1
                return cached
        self.stats.misses += 1
        with no_grad():
            pooled = self.model.encode(bundle)
        vector = np.asarray(pooled.data, dtype=np.float64)
        if self.enabled:
            self._store(key, vector)
        return vector

    def predict(
        self,
        bundle: ModelInput,
        metric: str = "cycles",
        class_i_segments: tuple[str, ...] = (),
        beam_width: Optional[int] = None,
    ) -> NumericPrediction:
        """Predict *metric* with segment-level caching."""
        start = clock.now()
        if self.mode == "exact":
            key = self._exact_key(bundle)
            pooled_vector = self._lookup(key) if self.enabled else None
            if pooled_vector is not None:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
                with no_grad():
                    encoded = self.model.encode(
                        bundle, class_i_segments=list(class_i_segments) or None
                    )
                pooled_vector = np.asarray(encoded.data, dtype=np.float64)
                if self.enabled:
                    self._store(key, pooled_vector)
            prediction = self.model.heads[metric].predict(
                Tensor(pooled_vector),
                beam_width=beam_width or self.model.config.beam_width,
            )
            elapsed = clock.now() - start
            self.stats.last_latency_s = elapsed
            self.stats.latencies.append(elapsed)
            return prediction
        class_i = set(class_i_segments)
        vectors: list[np.ndarray] = []
        # Base context segment: graph + params (+ data).
        base_bundle = ModelInput(
            graph_text=bundle.graph_text,
            op_texts=[],
            params_text=bundle.params_text,
            data_text=bundle.data_text,
        )
        base_key = _digest(
            "base", bundle.graph_text, bundle.params_text, bundle.data_text
        )
        vectors.append(self._segment_vector(base_key, base_bundle))
        for index, op_text in enumerate(bundle.op_texts):
            name = f"op{index}"
            sees_data = name not in class_i
            op_bundle = ModelInput(
                graph_text=bundle.graph_text,
                op_texts=[op_text],
                params_text=bundle.params_text,
                data_text=bundle.data_text if sees_data else "",
            )
            key = _digest(
                "op",
                bundle.graph_text,
                op_text,
                bundle.params_text,
                bundle.data_text if sees_data else "",
            )
            vectors.append(self._segment_vector(key, op_bundle))
        pooled = Tensor(np.mean(vectors, axis=0))
        prediction = self.model.heads[metric].predict(
            pooled, beam_width=beam_width or self.model.config.beam_width
        )
        elapsed = clock.now() - start
        self.stats.last_latency_s = elapsed
        self.stats.latencies.append(elapsed)
        return prediction
