"""Search strategies over the mapping design space.

The paper's §1 motivates cost models by their role inside design space
exploration: a model that ranks candidates well lets the DSE tool spend
its expensive ground-truth evaluations (synthesis + simulation) on the
most promising designs.  This module makes that claim measurable by
running *model-guided* search against model-free baselines — uniform
random sampling, an evolutionary search and simulated annealing — under
the same evaluation budget and recording the best-so-far true objective
after each evaluation.

Every strategy accepts an ``evaluate`` hook so an orchestrator (the
campaign runner) can intercept ground-truth evaluations — journaling
them, replaying them from a checkpoint — without the strategy knowing;
the default hook is :func:`evaluate_point`.  Every stochastic strategy
is deterministic under its ``rng``: the same seeded generator replays
the identical evaluation order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from ..profiler import Profiler
from .explorer import DesignPoint, DesignSpaceExplorer, default_objective

__all__ = [
    "SearchTrace",
    "annealing_search",
    "evaluate_point",
    "evolutionary_search",
    "model_guided_search",
    "random_search",
]


@dataclass
class SearchTrace:
    """Best-so-far trajectory of one search run."""

    strategy: str
    evaluated: list[DesignPoint] = field(default_factory=list)
    best_objective: list[float] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        """True when the search recorded no ground-truth evaluations
        (e.g. a campaign cell whose design space enumerated empty)."""
        return not self.best_objective

    @property
    def final_best(self) -> float:
        if not self.best_objective:
            raise ValueError(
                "empty search trace has no final_best; check is_empty first"
            )
        return self.best_objective[-1]

    def evaluations_to_reach(self, target: float) -> Optional[int]:
        """Number of ground-truth evaluations needed to reach *target*
        (a true-objective value), or None if never reached."""
        for i, value in enumerate(self.best_objective, start=1):
            if value <= target:
                return i
        return None


def evaluate_point(
    point: DesignPoint,
    data: Optional[dict[str, Any]] = None,
    max_steps: int = 2_000_000,
) -> dict[str, int]:
    """Ground-truth one candidate (the expensive DSE step)."""
    report = Profiler(point.params, max_steps=max_steps).profile(
        point.program, data=data
    )
    point.actual = report.costs.as_dict()
    return point.actual


Evaluator = Callable[[DesignPoint], None]


def _ensure_actual(
    point: DesignPoint,
    data: Optional[dict[str, Any]],
    evaluate: Optional[Evaluator],
) -> None:
    if point.actual is not None:
        return
    if evaluate is not None:
        evaluate(point)
        if point.actual is None:
            raise ValueError(
                "evaluate hook returned without setting point.actual"
            )
    else:
        evaluate_point(point, data=data)


def _record(
    trace: SearchTrace,
    point: DesignPoint,
    objective: Callable[[dict[str, int]], float],
) -> None:
    value = objective(point.actual)
    trace.evaluated.append(point)
    best = min(trace.best_objective[-1], value) if trace.best_objective else value
    trace.best_objective.append(best)


def model_guided_search(
    explorer: DesignSpaceExplorer,
    candidates: list[DesignPoint],
    budget: int,
    data: Optional[dict[str, Any]] = None,
    objective: Callable[[dict[str, int]], float] = default_objective,
    evaluate: Optional[Evaluator] = None,
) -> SearchTrace:
    """Verify candidates in the model's predicted order.

    *candidates* should come from :meth:`DesignSpaceExplorer.explore`
    (already predicted); the search ranks them by *objective* applied to
    the **predicted** costs — the same objective the trace scores actual
    costs with, so the model is judged on the metric the search
    optimizes — and spends the ground-truth budget best-first.
    """
    if budget < 1:
        raise ValueError("search budget must be >= 1")
    for point in candidates:
        if not point.predicted:
            raise ValueError(
                "model_guided_search() needs predicted costs on every "
                "candidate; run DesignSpaceExplorer.explore first"
            )
    ranked = sorted(candidates, key=lambda p: objective(p.predicted))
    trace = SearchTrace(strategy="model-guided")
    for point in ranked[:budget]:
        _ensure_actual(point, data, evaluate)
        _record(trace, point, objective)
    return trace


def random_search(
    candidates: list[DesignPoint],
    budget: int,
    data: Optional[dict[str, Any]] = None,
    objective: Callable[[dict[str, int]], float] = default_objective,
    rng: Optional[np.random.Generator] = None,
    evaluate: Optional[Evaluator] = None,
) -> SearchTrace:
    """Verify uniformly random candidates — the model-free baseline."""
    if budget < 1:
        raise ValueError("search budget must be >= 1")
    rng = rng or np.random.default_rng(0)
    order = rng.permutation(len(candidates))
    trace = SearchTrace(strategy="random")
    for index in order[:budget]:
        point = candidates[int(index)]
        _ensure_actual(point, data, evaluate)
        _record(trace, point, objective)
    return trace


# -- genome view of the enumerated space ------------------------------------
#
# Candidates enumerated as a cartesian product (per-operator unroll
# choices × hardware variants) share a coordinate structure: position i
# of every candidate's signature names the same decision.  The
# evolutionary and annealing strategies exploit that structure when it
# holds (crossover / single-coordinate neighborhoods) and degrade to
# random picks when it does not, so they stay correct on arbitrary
# candidate lists.


def _signature(point: DesignPoint) -> tuple:
    coords = [("params", point.params.describe()), ("rewrite", point.rewrite)]
    coords.extend(
        (f"{choice.function}#L{choice.loop_index}", (choice.unroll, choice.parallel))
        for choice in point.choices
    )
    return tuple(coords)


def _coordinate_view(
    candidates: list[DesignPoint],
) -> Optional[tuple[list[tuple], dict[tuple, int]]]:
    """Signatures + signature→index lookup, or None when the candidates
    do not share one coordinate structure."""
    signatures = [_signature(point) for point in candidates]
    axes = [tuple(name for name, _ in sig) for sig in signatures]
    if len(set(axes)) != 1:
        return None
    lookup = {sig: index for index, sig in enumerate(signatures)}
    if len(lookup) != len(signatures):
        return None  # duplicate designs: genome lookup would alias them
    return signatures, lookup


def evolutionary_search(
    candidates: list[DesignPoint],
    budget: int,
    data: Optional[dict[str, Any]] = None,
    objective: Callable[[dict[str, int]], float] = default_objective,
    rng: Optional[np.random.Generator] = None,
    population_size: int = 4,
    mutation_rate: float = 0.3,
    evaluate: Optional[Evaluator] = None,
) -> SearchTrace:
    """Genetic search over the enumerated space (model-free).

    Seeds a random population, then repeatedly crosses two
    tournament-selected parents coordinate-wise and mutates one
    coordinate to a value seen elsewhere in the space.  Offspring that
    fall outside the candidate list (or repeat an evaluated design)
    become random immigrants, so the full budget is always spent on
    distinct designs.
    """
    if budget < 1:
        raise ValueError("search budget must be >= 1")
    if population_size < 2:
        raise ValueError("population_size must be >= 2")
    rng = rng or np.random.default_rng(0)
    trace = SearchTrace(strategy="evolutionary")
    if not candidates:
        return trace
    view = _coordinate_view(candidates)
    unevaluated = set(range(len(candidates)))
    scored: list[tuple[float, int]] = []  # (objective, index) of evaluated

    def run_one(index: int) -> None:
        point = candidates[index]
        _ensure_actual(point, data, evaluate)
        _record(trace, point, objective)
        scored.append((objective(point.actual), index))
        unevaluated.discard(index)

    def random_unevaluated() -> int:
        pool = sorted(unevaluated)
        return pool[int(rng.integers(len(pool)))]

    def tournament() -> int:
        a, b = (scored[int(rng.integers(len(scored)))] for _ in range(2))
        return a[1] if a[0] <= b[0] else b[1]

    for _ in range(min(population_size, budget, len(candidates))):
        run_one(random_unevaluated())
    while len(trace.best_objective) < budget and unevaluated:
        child: Optional[int] = None
        if view is not None:
            signatures, lookup = view
            mother, father = tournament(), tournament()
            genes = [
                signatures[mother][i] if rng.random() < 0.5 else signatures[father][i]
                for i in range(len(signatures[mother]))
            ]
            if rng.random() < mutation_rate:
                axis = int(rng.integers(len(genes)))
                alleles = sorted({sig[axis] for sig in signatures})
                genes[axis] = alleles[int(rng.integers(len(alleles)))]
            child = lookup.get(tuple(genes))
        if child is None or child not in unevaluated:
            child = random_unevaluated()  # random immigrant
        run_one(child)
    return trace


def annealing_search(
    candidates: list[DesignPoint],
    budget: int,
    data: Optional[dict[str, Any]] = None,
    objective: Callable[[dict[str, int]], float] = default_objective,
    rng: Optional[np.random.Generator] = None,
    initial_temp: float = 0.35,
    cooling: float = 0.85,
    evaluate: Optional[Evaluator] = None,
) -> SearchTrace:
    """Simulated annealing over the enumerated space (model-free).

    Walks single-coordinate neighbors of the current design, accepting
    an uphill move with probability ``exp(-relative_delta / temp)``
    under a geometrically cooling temperature.  Each budget unit is a
    fresh ground-truth evaluation (already-evaluated designs are never
    proposed again), so the trace is comparable point-for-point with
    the other strategies.
    """
    if budget < 1:
        raise ValueError("search budget must be >= 1")
    rng = rng or np.random.default_rng(0)
    trace = SearchTrace(strategy="annealing")
    if not candidates:
        return trace
    view = _coordinate_view(candidates)
    unevaluated = set(range(len(candidates)))

    def run_one(index: int) -> float:
        point = candidates[index]
        _ensure_actual(point, data, evaluate)
        _record(trace, point, objective)
        unevaluated.discard(index)
        return objective(point.actual)

    def neighbors(index: int) -> list[int]:
        if view is None:
            return []
        signatures, _ = view
        home = signatures[index]
        return sorted(
            other
            for other in unevaluated
            if sum(a != b for a, b in zip(signatures[other], home)) == 1
        )

    current = int(rng.integers(len(candidates)))
    current_value = run_one(current)
    temp = initial_temp
    while len(trace.best_objective) < budget and unevaluated:
        options = neighbors(current)
        if options:
            proposal = options[int(rng.integers(len(options)))]
        else:
            pool = sorted(unevaluated)
            proposal = pool[int(rng.integers(len(pool)))]
        value = run_one(proposal)
        scale = max(abs(current_value), 1e-9)
        if value <= current_value or rng.random() < math.exp(
            -(value - current_value) / (scale * max(temp, 1e-9))
        ):
            current, current_value = proposal, value
        temp *= cooling
    return trace
