"""Search strategies over the mapping design space.

The paper's §1 motivates cost models by their role inside design space
exploration: a model that ranks candidates well lets the DSE tool spend
its expensive ground-truth evaluations (synthesis + simulation) on the
most promising designs.  This module makes that claim measurable by
running *model-guided* search against a *random* baseline under the
same evaluation budget and recording the best-so-far true objective
after each evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from ..profiler import Profiler
from .explorer import DesignPoint, DesignSpaceExplorer, default_objective

__all__ = ["SearchTrace", "evaluate_point", "model_guided_search", "random_search"]


@dataclass
class SearchTrace:
    """Best-so-far trajectory of one search run."""

    strategy: str
    evaluated: list[DesignPoint] = field(default_factory=list)
    best_objective: list[float] = field(default_factory=list)

    @property
    def final_best(self) -> float:
        if not self.best_objective:
            raise ValueError("empty search trace")
        return self.best_objective[-1]

    def evaluations_to_reach(self, target: float) -> Optional[int]:
        """Number of ground-truth evaluations needed to reach *target*
        (a true-objective value), or None if never reached."""
        for i, value in enumerate(self.best_objective, start=1):
            if value <= target:
                return i
        return None


def evaluate_point(
    point: DesignPoint,
    data: Optional[dict[str, Any]] = None,
    max_steps: int = 2_000_000,
) -> dict[str, int]:
    """Ground-truth one candidate (the expensive DSE step)."""
    report = Profiler(point.params, max_steps=max_steps).profile(
        point.program, data=data
    )
    point.actual = report.costs.as_dict()
    return point.actual


def _record(
    trace: SearchTrace,
    point: DesignPoint,
    objective: Callable[[dict[str, int]], float],
) -> None:
    value = objective(point.actual)
    trace.evaluated.append(point)
    best = min(trace.best_objective[-1], value) if trace.best_objective else value
    trace.best_objective.append(best)


def model_guided_search(
    explorer: DesignSpaceExplorer,
    candidates: list[DesignPoint],
    budget: int,
    data: Optional[dict[str, Any]] = None,
    objective: Callable[[dict[str, int]], float] = default_objective,
) -> SearchTrace:
    """Verify candidates in the model's predicted order.

    *candidates* should come from :meth:`DesignSpaceExplorer.explore`
    (already predicted); the search ranks them by *objective* applied to
    the **predicted** costs — the same objective the trace scores actual
    costs with, so the model is judged on the metric the search
    optimizes — and spends the ground-truth budget best-first.
    """
    if budget < 1:
        raise ValueError("search budget must be >= 1")
    for point in candidates:
        if not point.predicted:
            raise ValueError(
                "model_guided_search() needs predicted costs on every "
                "candidate; run DesignSpaceExplorer.explore first"
            )
    ranked = sorted(candidates, key=lambda p: objective(p.predicted))
    trace = SearchTrace(strategy="model-guided")
    for point in ranked[:budget]:
        if point.actual is None:
            evaluate_point(point, data=data)
        _record(trace, point, objective)
    return trace


def random_search(
    candidates: list[DesignPoint],
    budget: int,
    data: Optional[dict[str, Any]] = None,
    objective: Callable[[dict[str, int]], float] = default_objective,
    rng: Optional[np.random.Generator] = None,
) -> SearchTrace:
    """Verify uniformly random candidates — the model-free baseline."""
    if budget < 1:
        raise ValueError("search budget must be >= 1")
    rng = rng or np.random.default_rng(0)
    order = rng.permutation(len(candidates))
    trace = SearchTrace(strategy="random")
    for index in order[:budget]:
        point = candidates[int(index)]
        if point.actual is None:
            evaluate_point(point, data=data)
        _record(trace, point, objective)
    return trace
