"""LLMulator core: numeric modeling, calibration, separation, caching."""

from .acceleration import AccelerationStats, CachedPredictor
from .explorer import (
    DesignPoint,
    DesignSpaceExplorer,
    MappingChoice,
    apply_mapping,
)
from .calibration import (
    CalibrationConfig,
    CalibrationHistory,
    CalibrationStep,
    DynamicCalibrator,
    PreferenceTriplet,
    ReplayBuffer,
    make_environment,
)
from .inputs import bundle_from_program, class_i_segments
from .model import CostModel, CostPrediction, LLMulatorConfig
from .numeric_codec import NumericCodec, tradeoff_table
from .pareto import dominates, hypervolume_2d, pareto_front, pareto_points
from .search import (
    SearchTrace,
    annealing_search,
    evaluate_point,
    evolutionary_search,
    model_guided_search,
    random_search,
)
from .numeric_head import DigitClassificationHead, NumericPrediction
from .separation import (
    build_separation_mask,
    operator_mask_matrix,
    separation_savings,
)
from .trainer import TrainingConfig, TrainingExample, TrainingHistory, train_cost_model

__all__ = [
    "LLMulatorConfig",
    "CostModel",
    "CostPrediction",
    "NumericCodec",
    "tradeoff_table",
    "DigitClassificationHead",
    "NumericPrediction",
    "TrainingExample",
    "TrainingConfig",
    "TrainingHistory",
    "train_cost_model",
    "DynamicCalibrator",
    "CalibrationConfig",
    "CalibrationHistory",
    "CalibrationStep",
    "PreferenceTriplet",
    "ReplayBuffer",
    "make_environment",
    "CachedPredictor",
    "DesignSpaceExplorer",
    "DesignPoint",
    "MappingChoice",
    "apply_mapping",
    "SearchTrace",
    "evaluate_point",
    "model_guided_search",
    "random_search",
    "evolutionary_search",
    "annealing_search",
    "dominates",
    "pareto_front",
    "pareto_points",
    "hypervolume_2d",
    "AccelerationStats",
    "build_separation_mask",
    "operator_mask_matrix",
    "separation_savings",
    "bundle_from_program",
    "class_i_segments",
]
