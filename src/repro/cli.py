"""Command-line interface.

Subcommands:

* ``profile``   — run the EDA substrate on a dataflow program and print
  its ``<Power, Area, FF, Cycles>`` vector and RTL features.
* ``analyze``   — validate a program, classify operators (Class I/II),
  and print the dependence summary and transform-legality matrix from
  the static analysis layer (``--json`` for the machine form;
  ``--suggest`` appends legal, profitability-ranked rewrites).
* ``rewrite``   — ``apply``/``enumerate`` legality-gated loop
  transformations (interchange, tiling, fusion, distribution,
  unroll-and-jam) with interpreter bit-parity verification.
* ``synthesize``— generate a profiled training dataset to JSONL.
* ``train``     — train a cost model on a JSONL dataset and save it.
* ``predict``   — load a trained model and predict a program's costs.
* ``calibrate`` — run the DPO dynamic-calibration loop on a program
  against the profiler, sweeping a runtime input.
* ``explore``   — rank mapping candidates (unroll × memory delay) with
  a trained model and ground-truth the finalists.
* ``workloads`` — list the bundled benchmark suites with Table-2 stats.
* ``serve``     — run the persistent prediction service (warm models,
  micro-batching, tiered caches) on an HTTP port.
* ``campaign``  — ``run``/``resume``/``report`` resumable
  multi-objective search campaigns (workloads × rewrites × hardware ×
  strategies × objectives) with a journaled evaluation checkpoint;
  ``--timeline FILE`` writes a Perfetto-loadable sidecar.
* ``stats``     — print the unified telemetry snapshot (local process
  or a running server's ``/metrics`` via ``--remote``); ``--profile``
  adds a span-attributed CPU/memory profile window.
* ``bench``     — ``run``/``list``/``log``/``trend`` the registered
  benchmark suites through :mod:`repro.obs`: one harness over every
  ``scripts/bench_*.py``, an append-only ``BENCH_HISTORY.jsonl``
  ledger, and a statistical regression sentinel over the trajectory.

Example::

    python -m repro profile examples_gemm.c --data n=8 --mem-delay 5
    python -m repro synthesize --out dataset.jsonl --ast 10 --dataflow 20
    python -m repro train dataset.jsonl --out model.npz --epochs 5
    python -m repro predict examples_gemm.c --model model.npz --data n=8
    python -m repro serve --model model.npz --port 8173
    python -m repro predict examples_gemm.c --remote http://127.0.0.1:8173
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from .hls import HardwareParams
from .lang import classify_operators, count_dynamic_parameters, parse
from .profiler import Profiler


def _parse_data(items: list[str]) -> dict:
    """Parse ``name=value`` runtime-input arguments."""
    data = {}
    for item in items:
        if "=" not in item:
            raise SystemExit(f"error: --data expects name=value, got {item!r}")
        name, _, value = item.partition("=")
        try:
            data[name] = int(value)
        except ValueError:
            try:
                data[name] = float(value)
            except ValueError:
                raise SystemExit(
                    f"error: --data value for {name!r} must be numeric, "
                    f"got {value!r}"
                ) from None
    return data


def _params_from_args(args: argparse.Namespace) -> HardwareParams:
    return HardwareParams(
        mem_read_delay=args.mem_delay,
        mem_write_delay=args.mem_delay,
        pe_count=args.pe_count,
        memory_ports=args.memory_ports,
    )


def _read_program(path: str) -> str:
    from .api import CodecError, read_program

    try:
        return read_program(path)
    except CodecError as exc:
        raise SystemExit(f"error: {exc}") from None


def cmd_profile(args: argparse.Namespace) -> int:
    from .api import ProfileJob, Session
    from .errors import ReproError

    paths: list[str] = args.program
    data = _parse_data(args.data) or None
    if args.batch or len(paths) > 1:
        if args.per_op:
            raise SystemExit("--per-op is not available with --batch")
        return _profile_batch(paths, data, args)
    source = _read_program(paths[0])
    if args.per_op:
        from .attribution import attribute

        report = attribute(source, params=_params_from_args(args), data=data)
        print(report.table())
        print(json.dumps(report.totals.as_dict(), indent=2))
        return 0
    session = Session()
    try:
        report = session.profile(
            ProfileJob(
                source=source,
                data=data,
                params=_params_from_args(args),
                seed=args.seed,
                backend=args.backend,
                label=paths[0],
            )
        )
    except ReproError as exc:
        raise SystemExit(f"error: {exc}") from None
    print(json.dumps(report.as_dict(), indent=2))
    if args.verbose:
        print(report.rtl_think, file=sys.stderr)
    return 0


def _profile_batch(paths: list[str], data, args: argparse.Namespace) -> int:
    """``profile --batch``: fan several programs out over BatchProfiler."""
    from .profiler import BatchProfiler, ProfileJob

    jobs = [
        ProfileJob(program=_read_program(path), data=data, seed=args.seed)
        for path in paths
    ]
    batch = BatchProfiler(
        _params_from_args(args),
        backend=args.backend,
        max_workers=args.jobs,
    )
    reports = batch.profile_many(jobs)
    rows = []
    failures = 0
    for path, report in zip(paths, reports):
        if report is None:
            failures += 1
            rows.append({"program": path, "error": "simulation failed"})
        else:
            rows.append({"program": path, "costs": report.costs.as_dict()})
    print(json.dumps(rows, indent=2))
    return 1 if failures == len(rows) else 0


def _resolve_program_and_data(args: argparse.Namespace) -> tuple[str, dict]:
    """Resolve a program target (file path or bundled workload) to its
    source plus the workload's runtime data (empty for file paths)."""
    if args.workload:
        if args.program:
            raise SystemExit("error: pass a program path or --workload, not both")
        from .campaign.spec import WorkloadSpec
        from .errors import ReproError

        try:
            source, data = WorkloadSpec(name=args.workload).resolve()
        except ReproError as exc:
            raise SystemExit(f"error: {exc}") from None
        return source, dict(data)
    if not args.program:
        raise SystemExit(
            f"error: {args.command} needs a program path or --workload NAME"
        )
    try:
        with open(args.program, encoding="utf-8") as handle:
            return handle.read(), {}
    except OSError as exc:
        raise SystemExit(
            f"error: cannot read program {args.program!r}: "
            f"{exc.strerror or exc}"
        ) from None


def _analyze_source(args: argparse.Namespace) -> str:
    """Resolve the analyze target: a file path or a bundled workload."""
    source, _ = _resolve_program_and_data(args)
    return source


def cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import GLOBAL_ANALYSIS_CACHE, legality_matrix

    source = _analyze_source(args)
    analysis = GLOBAL_ANALYSIS_CACHE.get(source)
    validation = analysis.validation
    program = analysis.program

    if args.json:
        payload = {
            "digest": analysis.digest,
            "validation": validation.as_dict(),
            "dependences": {
                name: report.summary()
                for name, report in analysis.dependences.items()
            },
            "legality": {
                func.name: legality_matrix(func) for func in program.functions
            },
        }
        if getattr(args, "suggest", False) and validation.ok:
            accepted, rejected = _suggest_steps(source)
            payload["suggestions"] = {
                "legal": [candidate.as_dict() for candidate in accepted],
                "rejected": [candidate.as_dict() for candidate in rejected],
            }
        print(json.dumps(payload, indent=2))
        return 0 if validation.ok else 1

    if validation.functions:
        reports = classify_operators(program)
        for name, report in reports.items():
            dynamic = ",".join(report.dynamic_params) or "-"
            print(
                f"{name}: {report.operator_class.value} "
                f"loops={report.loop_count} branches={report.branch_count} "
                f"dynamic_params={dynamic}"
            )
        print(f"total dynamic parameters: {count_dynamic_parameters(program)}")

    status = "ok" if validation.ok else "INVALID"
    print(
        f"validation: {status} ({len(validation.errors)} errors, "
        f"{len(validation.warnings)} warnings)"
    )
    for issue in validation.issues:
        print(f"  {issue.describe()}")

    for name, report in analysis.dependences.items():
        summary = report.summary()
        print(
            f"dependences in '{name}': total={summary['total']} "
            f"flow={summary['flow']} anti={summary['anti']} "
            f"output={summary['output']} scalar={summary['scalar']} "
            f"loop_carried={summary['loop_carried']}"
        )
        shown = report.dependences[:_ANALYZE_MAX_DEPS]
        for dep in shown:
            print(f"  {dep.describe()}")
        hidden = len(report.dependences) - len(shown)
        if hidden > 0:
            print(f"  ... (+{hidden} more; use --json for the full list)")

    for func in program.functions:
        matrix = legality_matrix(func)
        if not matrix["loops"]:
            continue
        loops = ", ".join(loop["label"] for loop in matrix["loops"])
        print(f"legality in '{func.name}' (loops: {loops}):")
        for section in ("interchange", "tile", "fuse", "unroll", "distribute"):
            for row in matrix[section]:
                verdict = "legal" if row["ok"] else "illegal"
                print(f"  {row['transform']}: {verdict}")
                if not row["ok"]:
                    for reason in row["reasons"][:2]:
                        print(f"      - {reason}")

    if getattr(args, "suggest", False) and validation.ok:
        accepted, rejected = _suggest_steps(source)
        print(
            f"suggested rewrites ({len(accepted)} legal, "
            f"{len(rejected)} rejected; lower score = better):"
        )
        for candidate in accepted[:_ANALYZE_MAX_SUGGESTIONS]:
            print(f"  {candidate.step.to_text()}  score={candidate.score:.1f}")
        hidden = len(accepted) - _ANALYZE_MAX_SUGGESTIONS
        if hidden > 0:
            print(f"  ... (+{hidden} more; use --json for the full list)")
    return 0 if validation.ok else 1


def _suggest_steps(source: str):
    """Profitability-ranked single-step rewrite candidates for *source*,
    split into (legal, rejected)."""
    from .errors import ReproError
    from .rewrite import enumerate_steps

    try:
        candidates = enumerate_steps(source)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}") from None
    accepted = [candidate for candidate in candidates if candidate.ok]
    rejected = [candidate for candidate in candidates if not candidate.ok]
    return accepted, rejected


_ANALYZE_MAX_DEPS = 16
_ANALYZE_MAX_SUGGESTIONS = 12


def cmd_rewrite_apply(args: argparse.Namespace) -> int:
    from .errors import ReproError
    from .rewrite import RewriteSequence, bit_parity

    source, data = _resolve_program_and_data(args)
    try:
        sequence = RewriteSequence.from_texts(args.step)
        result = sequence.apply(source)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}") from None

    parity: Optional[bool] = None
    if args.verify:
        try:
            parity = bit_parity(source, result.program, data=data or None)
        except ReproError as exc:
            raise SystemExit(f"error: parity check failed to run: {exc}") from None

    if args.json:
        payload = result.as_dict()
        if parity is not None:
            payload["parity"] = parity
        print(json.dumps(payload, indent=2))
    else:
        print(result.source, end="" if result.source.endswith("\n") else "\n")
        for record in result.records:
            print(
                f"// {record.step.to_text()}: "
                f"{record.digest_before[:12]} -> {record.digest_after[:12]} "
                f"({record.dependence_count} dependences)",
                file=sys.stderr,
            )
        if parity is not None:
            print(
                f"// parity: {'bit-identical' if parity else 'MISMATCH'}",
                file=sys.stderr,
            )
    return 0 if parity is not False else 1


def cmd_rewrite_enumerate(args: argparse.Namespace) -> int:
    from .errors import ReproError
    from .rewrite import enumerate_sequences, enumerate_steps

    source, _ = _resolve_program_and_data(args)
    try:
        candidates = enumerate_steps(source)
        ranked = enumerate_sequences(
            source, max_len=args.max_len, top_k=args.top_k
        )
    except ReproError as exc:
        raise SystemExit(f"error: {exc}") from None
    rejected = [candidate for candidate in candidates if not candidate.ok]

    if args.json:
        payload = {
            "sequences": [sequence.as_dict() for sequence in ranked],
            "rejected": [candidate.as_dict() for candidate in rejected],
        }
        print(json.dumps(payload, indent=2))
        return 0

    print(
        f"legal sequences (top {len(ranked)}, max_len={args.max_len}; "
        f"lower score = better):"
    )
    for sequence in ranked:
        print(
            f"  {sequence.describe():60s} score={sequence.score:8.1f} "
            f"improvement={sequence.improvement:+.1f}"
        )
    if rejected:
        print(f"rejected single steps ({len(rejected)}):")
        for candidate in rejected:
            print(f"  {candidate.step.to_text()}")
            for reason in candidate.reasons[:1]:
                print(f"      - {reason}")
    return 0


def cmd_synthesize(args: argparse.Namespace) -> int:
    from .datagen import DatasetSynthesizer, SynthesizerConfig
    from .datagen.io import save_dataset

    config = SynthesizerConfig(
        n_ast=args.ast, n_dataflow=args.dataflow, n_llm=args.llm, seed=args.seed
    )
    dataset = DatasetSynthesizer(config).generate()
    count = save_dataset(dataset.records, args.out)
    print(f"wrote {count} records to {args.out} "
          f"(composition {dataset.composition()}, skipped {dataset.skipped})")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    from .core import CostModel, LLMulatorConfig, train_cost_model
    from .core.trainer import TrainingConfig
    from .datagen import direct_format
    from .datagen.io import load_dataset
    from .nn import save_model

    records = load_dataset(args.dataset)
    if not records:
        raise SystemExit(f"no records in {args.dataset}")
    examples = [direct_format(record) for record in records]
    model = CostModel(LLMulatorConfig(tier=args.tier, seed=args.seed))
    history = train_cost_model(
        model,
        examples,
        TrainingConfig(
            epochs=args.epochs,
            lr=args.lr,
            seed=args.seed,
            batch_size=args.batch_size,
        ),
    )
    save_model(model, args.out)
    print(
        f"trained {args.tier} model on {len(examples)} examples: "
        f"loss {history.epoch_losses[0]:.2f} -> {history.final_loss:.2f}; "
        f"saved to {args.out}"
    )
    return 0


def _build_predictor(args: argparse.Namespace):
    """The :class:`repro.api.Predictor` the flags ask for: a remote
    :class:`ServeClient` or a local :class:`Session` — the *only*
    difference between ``predict`` and ``predict --remote``."""
    if args.remote:
        from .serve import ServeClient

        return ServeClient(args.remote)
    from .api import Session

    return Session(models={"default": args.model}, tier=args.tier, seed=args.seed)


def cmd_predict(args: argparse.Namespace) -> int:
    from .api import CodecError, PredictJob, predict_jobs_from_jsonl
    from .errors import ReproError

    if args.program is None and not args.jsonl:
        raise SystemExit("error: predict needs a program path or --jsonl FILE")
    if args.program is not None and args.jsonl:
        raise SystemExit("error: pass either a program path or --jsonl, not both")
    if args.jsonl and args.data:
        raise SystemExit(
            "error: --data does not apply to --jsonl (put a 'data' object "
            "on each line instead)"
        )
    if not args.remote and not args.model:
        raise SystemExit("error: --model is required unless --remote is given")
    if args.remote and args.model:
        raise SystemExit(
            "error: --model does not apply to --remote (the server chooses "
            "its own checkpoints; pass 'model' per request via the API)"
        )

    params = _params_from_args(args)
    if args.jsonl:
        try:
            jobs = predict_jobs_from_jsonl(args.jsonl, params=params)
        except CodecError as exc:
            raise SystemExit(f"error: {exc}") from None
    else:
        base_data = _parse_data(args.data)
        jobs = [
            PredictJob(
                source=_read_program(args.program),
                data=base_data or None,
                params=params,
                label=args.program,
            )
        ]

    # One code path for local and remote: both predictors batch the
    # jobs (one encoder pass locally; concurrent submissions feeding
    # the server's micro-batcher remotely) and report failures as
    # one-line ReproErrors, so the two modes exit identically on the
    # same failure.
    try:
        predictions = _build_predictor(args).predict_jobs(jobs)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}") from None
    rows = [
        {"program": job.label, "predictions": prediction.cli_dict()}
        for job, prediction in zip(jobs, predictions)
    ]
    if args.jsonl:
        print(json.dumps(rows, indent=2))
    else:
        print(json.dumps(rows[0]["predictions"], indent=2))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .api import Session
    from .errors import ServeError
    from .serve import PredictionServer

    models: dict[str, str] = {}
    for spec in args.model:
        name, sep, path = spec.partition("=")
        if not sep:
            name, path = "default", spec
        if name in models:
            raise SystemExit(
                f"error: duplicate model name {name!r}; use NAME=PATH to "
                "serve several checkpoints"
            )
        models[name] = path
    session = Session(
        models=models, tier=args.tier, seed=args.seed, max_seq_len=args.max_seq_len
    )
    try:
        for name in session.load_models():  # eager load: fail before binding
            print(f"loaded model {name!r}", file=sys.stderr)
    except ServeError as exc:
        raise SystemExit(f"error: {exc}") from None
    try:
        server = PredictionServer(
            session=session,
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            verbose=args.verbose,
        )
    except OSError as exc:
        reason = exc.strerror or exc
        raise SystemExit(
            f"error: cannot bind {args.host}:{args.port}: {reason}"
        ) from None
    print(f"serving on {server.url} (models: {', '.join(session.models())})",
          file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down (draining queued requests)", file=sys.stderr)
        server.close()
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    from .core import (
        CalibrationConfig,
        CostModel,
        DynamicCalibrator,
        LLMulatorConfig,
        bundle_from_program,
        class_i_segments,
        make_environment,
    )
    from .nn import load_model

    source = _read_program(args.program)
    params = _params_from_args(args)
    sweep_name, _, sweep_values = args.sweep.partition("=")
    values = [int(v) for v in sweep_values.split(",") if v]
    if not values:
        raise SystemExit("--sweep expects name=v1,v2,... with at least one value")

    profiler = Profiler(params)
    segments = tuple(class_i_segments(source))
    stream = []
    for value in values:
        data = _parse_data(args.data)
        data[sweep_name] = value
        bundle = bundle_from_program(source, params=params, data=data)
        actual = profiler.profile(source, data=data).costs["cycles"]
        stream.append((bundle, actual))
    environment = make_environment(stream, class_i_segments=lambda _: segments)

    model = CostModel(LLMulatorConfig(tier=args.tier, seed=args.seed))
    load_model(model, args.model)
    calibrator = DynamicCalibrator(
        model, CalibrationConfig(metric="cycles", seed=args.seed)
    )
    history = calibrator.run(environment, iterations=args.iterations)
    for i, mape_value in enumerate(history.iteration_mape, start=1):
        print(f"iteration {i}: cycles MAPE {mape_value:.1%}")
    if args.out:
        calibrator.save(args.out)
        print(f"calibrated policy (model + adapter) saved to {args.out}")
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    from .api import ExploreJob, Session
    from .errors import ReproError

    source = _read_program(args.program)
    session = Session(
        models={"default": args.model}, tier=args.tier, seed=args.seed
    )
    try:
        report = session.explore(
            ExploreJob(
                source=source,
                data=_parse_data(args.data) or None,
                unroll_factors=tuple(args.unroll),
                memory_delays=tuple(args.mem_delays),
                max_candidates=args.max_candidates,
                verify_top=args.verify_top,
                label=args.program,
            )
        )
    except ReproError as exc:
        raise SystemExit(f"error: {exc}") from None
    print(f"{'rank':>4s}  {'design':30s} {'pred cycles':>11s} {'pred area':>10s} {'actual cycles':>13s}")
    for rank, choice in enumerate(report.candidates, start=1):
        actual = str(choice.actual["cycles"]) if choice.actual else "-"
        print(
            f"{rank:4d}  {choice.design:30s} "
            f"{choice.predicted['cycles']:11d} {choice.predicted['area']:10d} {actual:>13s}"
        )
    if args.verbose:
        print(
            "predictor cache: " + json.dumps(dict(report.cache_stats)),
            file=sys.stderr,
        )
    return 0


def _campaign_predictor(args: argparse.Namespace, spec):
    """The Predictor a campaign's model-guided cells rank through, or
    None for all-model-free specs (mirrors ``predict``'s local/remote
    constructor swap)."""
    if not spec.needs_model():
        if args.model or args.remote:
            print(
                "note: spec has no model-guided strategy; --model/--remote unused",
                file=sys.stderr,
            )
        return None
    if args.remote and args.model:
        raise SystemExit("error: pass either --model or --remote, not both")
    if args.remote:
        from .serve import ServeClient

        return ServeClient(args.remote)
    if not args.model:
        raise SystemExit(
            "error: spec contains a model-guided strategy; pass --model "
            "CHECKPOINT or --remote URL"
        )
    from .api import Session

    return Session(models={"default": args.model}, tier=args.tier, seed=args.seed)


def _run_campaign(args: argparse.Namespace, resume: bool) -> int:
    from .campaign import CampaignReport, CampaignRunner, load_spec
    from .errors import CampaignInterrupted, ReproError
    from .telemetry import TRACER, TimelineRecorder

    try:
        spec = load_spec(args.spec)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}") from None
    predictor = _campaign_predictor(args, spec)
    runner = CampaignRunner(
        spec,
        args.journal,
        predictor=predictor,
        ledger_path=getattr(args, "ledger", None),
    )
    # The timeline is a *sidecar*: the journal stays byte-identical
    # with or without --timeline (REPRO004 — no timestamps inside).
    recorder = TimelineRecorder(TRACER) if args.timeline else None

    def write_timeline() -> None:
        if recorder is not None and recorder.spans:
            events = recorder.write(args.timeline)
            print(
                f"timeline: {events} events -> {args.timeline}",
                file=sys.stderr,
            )

    try:
        if recorder is not None:
            with recorder:
                result = runner.run(
                    resume=resume,
                    overwrite=getattr(args, "overwrite", False),
                    max_evaluations=args.max_evals,
                )
        else:
            result = runner.run(
                resume=resume,
                overwrite=getattr(args, "overwrite", False),
                max_evaluations=args.max_evals,
            )
    except CampaignInterrupted as exc:
        write_timeline()
        print(f"interrupted: {exc}", file=sys.stderr)
        # The hint must rebuild the *same* predictor: a missing --tier
        # or --seed would load the checkpoint under a different config,
        # change the model-guided ranking and fail the journal replay.
        print(
            f"resume with: python -m repro campaign resume --spec {args.spec} "
            f"--journal {args.journal}"
            + (f" --model {args.model}" if args.model else "")
            + (f" --remote {args.remote}" if args.remote else "")
            + (f" --tier {args.tier}" if args.model and args.tier != "0.5B" else "")
            + (f" --seed {args.seed}" if args.model and args.seed != 0 else ""),
            file=sys.stderr,
        )
        return 3
    except ReproError as exc:
        raise SystemExit(f"error: {exc}") from None
    write_timeline()
    print(json.dumps(result.summary(), indent=2))
    try:
        report = CampaignReport.from_journal(args.journal, spec)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}") from None
    print(report.table(), file=sys.stderr)
    return 0


def cmd_campaign_run(args: argparse.Namespace) -> int:
    return _run_campaign(args, resume=False)


def cmd_campaign_resume(args: argparse.Namespace) -> int:
    return _run_campaign(args, resume=True)


def cmd_campaign_report(args: argparse.Namespace) -> int:
    from .campaign import CampaignReport, load_spec
    from .campaign.journal import CampaignJournal
    from .errors import ReproError

    try:
        spec = load_spec(args.spec)
        report = CampaignReport.from_journal(args.journal, spec)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}") from None
    if args.timeline:
        # Journals are timestamp-free by design, so the report renders
        # a *logical* timeline: one tick per journaled evaluation,
        # laned by cell id.
        from .telemetry import write_journal_timeline

        try:
            records = CampaignJournal.read_records(args.journal)
        except ReproError as exc:
            raise SystemExit(f"error: {exc}") from None
        events = write_journal_timeline(records, args.timeline)
        print(f"timeline: {events} events -> {args.timeline}", file=sys.stderr)
    if args.json:
        print(report.to_json())
    else:
        print(report.table())
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Print the unified telemetry snapshot — the local process's, or a
    running server's ``/metrics`` (``--remote URL``).  ``--profile``
    samples a CPU/memory window attributed to open telemetry spans."""
    from .errors import ReproError

    if args.remote:
        from .serve import ServeClient

        client = ServeClient(args.remote)
        snapshot = client.stats() if args.legacy else client.metrics()
        if args.profile:
            try:
                snapshot["profile"] = client.debug_profile(args.profile_seconds)
            except ReproError as exc:
                raise SystemExit(f"error: {exc}") from None
    else:
        from . import telemetry

        snapshot = telemetry.snapshot()
        if args.profile:
            from .obs import process_snapshot, profile_window

            try:
                snapshot["profile"] = profile_window(args.profile_seconds)
            except ReproError as exc:
                raise SystemExit(f"error: {exc}") from None
            snapshot["resource"] = process_snapshot()
    print(json.dumps(snapshot, indent=2, sort_keys=True))
    return 0


def _bench_config(args: argparse.Namespace):
    from .obs.bench import BenchConfig

    return BenchConfig(
        smoke=args.smoke, tier=getattr(args, "tier", None) or ""
    )


def cmd_bench_run(args: argparse.Namespace) -> int:
    """Run registered bench suites through the shared harness: measure,
    write the ``BENCH_*.json`` artifact, append the history ledger, gate
    through the regression sentinel."""
    from .errors import ObsError
    from .obs import bench

    try:
        names = bench.discover_suites()
    except ObsError as exc:
        raise SystemExit(f"error: {exc}") from None
    if args.suite:
        unknown = [name for name in args.suite if name not in names]
        if unknown:
            raise SystemExit(
                f"error: unknown suite(s) {', '.join(unknown)}; "
                f"registered: {', '.join(names)}"
            )
        names = list(args.suite)
    if not names:
        raise SystemExit("error: no bench suites registered")

    ledger = "" if args.no_ledger else (args.ledger or None)
    exit_code = 0
    for name in names:
        print(f"=== bench {name} ===", flush=True)
        try:
            outcome = bench.execute(
                name,
                _bench_config(args),
                ledger=ledger,
                check=not args.no_regress,
            )
        except ObsError as exc:
            print(f"FAIL: {name}: {exc}", file=sys.stderr)
            exit_code = 1
            continue
        bench._print_outcome(outcome)
        exit_code = max(exit_code, outcome.exit_code)
    return exit_code


def cmd_bench_list(args: argparse.Namespace) -> int:
    from .errors import ObsError
    from .obs import bench

    try:
        bench.discover_suites()
    except ObsError as exc:
        raise SystemExit(f"error: {exc}") from None
    for suite in bench.suites():
        print(f"{suite.name}: {suite.description}")
        for metric in suite.metrics:
            scope = "portable" if metric.portable else "same-host"
            print(f"    {metric.name} [{metric.unit}, {metric.direction} "
                  f"is better, {scope}]")
    return 0


def _open_ledger(args: argparse.Namespace):
    from .obs.bench import ledger_path
    from .obs.history import BenchLedger

    return BenchLedger(args.ledger or ledger_path())


def cmd_bench_log(args: argparse.Namespace) -> int:
    """Print ledger entries (newest last), optionally filtered."""
    from .errors import ObsError

    ledger = _open_ledger(args)
    try:
        entries = ledger.entries(
            suite=args.suite, metric=args.metric, tier=args.tier, mode=args.mode
        )
    except ObsError as exc:
        raise SystemExit(f"error: {exc}") from None
    if args.limit:
        entries = entries[-args.limit:]
    for entry in entries:
        print(json.dumps(entry.as_dict(), sort_keys=True))
    if not entries:
        print("(no matching ledger entries)", file=sys.stderr)
    return 0


def cmd_bench_trend(args: argparse.Namespace) -> int:
    """Sparkline trajectories per (suite, metric) from the ledger."""
    from .errors import ObsError
    from .obs.history import render_trend

    ledger = _open_ledger(args)
    try:
        suite_names = [args.suite] if args.suite else ledger.suites()
        if not suite_names:
            print("(empty ledger)", file=sys.stderr)
            return 0
        for suite_name in suite_names:
            metric_names = (
                [args.metric] if args.metric else ledger.metrics(suite_name)
            )
            for metric_name in metric_names:
                series = ledger.series(
                    suite_name, metric_name, tier=args.tier, mode=args.mode
                )
                if not series:
                    continue
                values = [entry.value for entry in series]
                newest = series[-1]
                print(
                    f"{suite_name}.{metric_name:32s} "
                    f"{render_trend(values)} "
                    f"n={len(values)} last={newest.value:g} {newest.unit} "
                    f"({newest.direction} is better)"
                )
    except ObsError as exc:
        raise SystemExit(f"error: {exc}") from None
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .eval.report import missing_experiments, write_report

    path = write_report(args.results, output_path=args.out)
    missing = missing_experiments(args.results)
    print(f"report written to {path}")
    if missing:
        print(f"{len(missing)} experiments not yet rendered: "
              + ", ".join(sorted(missing)), file=sys.stderr)
    return 0


def cmd_workloads(args: argparse.Namespace) -> int:
    from .workloads import (
        accelerator_suite,
        linalg_suite,
        modern_suite,
        polybench_suite,
    )

    suites = {
        "polybench": polybench_suite,
        "linalg": linalg_suite,
        "modern": modern_suite,
        "accelerators": accelerator_suite,
    }
    selected = [args.suite] if args.suite else list(suites)
    print(f"{'suite':13s} {'workload':22s} {'AllLen':>7s} {'GraphLen':>8s} "
          f"{'OpNum':>5s} {'DynNum':>6s} {'OpLen':>7s}")
    for suite_name in selected:
        for workload in suites[suite_name]():
            stats = workload.stats()
            print(
                f"{suite_name:13s} {workload.name:22s} {stats['all_len']:7d} "
                f"{stats['graph_len']:8d} {stats['op_num']:5d} "
                f"{stats['dyn_num']:6d} {stats['op_len']:7d}"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LLMulator reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_hw_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--mem-delay", type=int, default=10, help="memory R/W delay (cycles)")
        p.add_argument("--pe-count", type=int, default=4)
        p.add_argument("--memory-ports", type=int, default=2)

    profile = sub.add_parser("profile", help="profile a program through the EDA substrate")
    profile.add_argument("program", nargs="+", help="program path(s) ('-' for stdin)")
    profile.add_argument("--data", action="append", default=[], metavar="NAME=VALUE")
    profile.add_argument("--verbose", action="store_true")
    profile.add_argument(
        "--per-op", action="store_true",
        help="print a per-operator cost breakdown instead of totals only",
    )
    profile.add_argument(
        "--batch", action="store_true",
        help="profile all programs through the batched profiler (JSON array output)",
    )
    profile.add_argument(
        "--jobs", type=int, default=None,
        help="process-pool width for --batch (default: bounded by CPU count)",
    )
    profile.add_argument(
        "--backend", choices=("compiled", "interp"), default="compiled",
        help="simulation backend (identical results; compiled is faster)",
    )
    profile.add_argument("--seed", type=int, default=0)
    add_hw_flags(profile)
    profile.set_defaults(func=cmd_profile)

    analyze = sub.add_parser(
        "analyze",
        help="validate a program and print operator classes, dependences "
             "and the transform-legality matrix",
    )
    analyze.add_argument("program", nargs="?", default=None)
    analyze.add_argument(
        "--workload",
        help="analyze a bundled workload by name (e.g. gemm) instead of a file",
    )
    analyze.add_argument(
        "--json", action="store_true",
        help="emit the full analysis (validation, dependences, legality) as JSON",
    )
    analyze.add_argument(
        "--suggest", action="store_true",
        help="append legal, profitability-ranked rewrite steps "
             "(repro.rewrite candidates)",
    )
    analyze.set_defaults(func=cmd_analyze)

    rewrite = sub.add_parser(
        "rewrite",
        help="apply or enumerate legality-gated loop transformations",
    )
    rewrite_sub = rewrite.add_subparsers(dest="rewrite_command", required=True)

    def add_rewrite_target(p: argparse.ArgumentParser) -> None:
        p.add_argument("program", nargs="?", default=None,
                       help="program path; or use --workload")
        p.add_argument(
            "--workload",
            help="rewrite a bundled workload by name (e.g. gemm) instead of a file",
        )
        p.add_argument("--json", action="store_true")

    rw_apply = rewrite_sub.add_parser(
        "apply",
        help="apply a rewrite sequence (validator re-run after every step)",
    )
    add_rewrite_target(rw_apply)
    rw_apply.add_argument(
        "--step", action="append", required=True,
        metavar="KIND:FUNC:LOOPS[:FACTOR]",
        help="rewrite step, e.g. interchange:gemm_kernel:0,1 or "
             "tile:f:0,1:4; repeatable, applied in order",
    )
    rw_apply.add_argument(
        "--verify", action="store_true",
        help="check interpreter bit-parity against the original "
             "(exit 1 on mismatch)",
    )
    rw_apply.set_defaults(func=cmd_rewrite_apply)

    rw_enum = rewrite_sub.add_parser(
        "enumerate",
        help="beam-search legal rewrite sequences, profitability-ranked",
    )
    add_rewrite_target(rw_enum)
    rw_enum.add_argument("--max-len", type=int, default=2,
                         help="maximum steps per sequence")
    rw_enum.add_argument("--top-k", type=int, default=8,
                         help="sequences kept per beam level and returned")
    rw_enum.set_defaults(func=cmd_rewrite_enumerate)

    synthesize = sub.add_parser("synthesize", help="generate a training dataset")
    synthesize.add_argument("--out", required=True)
    synthesize.add_argument("--ast", type=int, default=12)
    synthesize.add_argument("--dataflow", type=int, default=20)
    synthesize.add_argument("--llm", type=int, default=8)
    synthesize.add_argument("--seed", type=int, default=0)
    synthesize.set_defaults(func=cmd_synthesize)

    train = sub.add_parser("train", help="train a cost model on a JSONL dataset")
    train.add_argument("dataset")
    train.add_argument("--out", required=True)
    train.add_argument("--tier", default="0.5B", choices=("0.5B", "1B", "8B"))
    train.add_argument("--epochs", type=int, default=5)
    train.add_argument("--lr", type=float, default=2e-3)
    train.add_argument("--batch-size", type=int, default=1,
                       help="examples per update (length-bucketed mini-batches)")
    train.add_argument("--seed", type=int, default=0)
    train.set_defaults(func=cmd_train)

    predict = sub.add_parser("predict", help="predict costs with a trained model")
    predict.add_argument("program", nargs="?", default=None,
                         help="program path ('-' for stdin); omit with --jsonl")
    predict.add_argument("--model", default=None,
                         help="trained checkpoint (.npz); required unless --remote")
    predict.add_argument("--tier", default="0.5B", choices=("0.5B", "1B", "8B"))
    predict.add_argument("--data", action="append", default=[], metavar="NAME=VALUE")
    predict.add_argument(
        "--jsonl", default=None, metavar="FILE",
        help="batch mode: one {'program': path | 'source': text, 'data': {...}} "
             "JSON object per line, predicted in one batched pass",
    )
    predict.add_argument(
        "--remote", default=None, metavar="URL",
        help="route through a running 'repro serve' instance instead of "
             "loading a model locally",
    )
    predict.add_argument("--seed", type=int, default=0)
    add_hw_flags(predict)
    predict.set_defaults(func=cmd_predict)

    serve = sub.add_parser(
        "serve", help="run the persistent prediction service over HTTP"
    )
    serve.add_argument(
        "--model", action="append", required=True, metavar="[NAME=]PATH",
        help="checkpoint to serve (repeatable; first one is the default model)",
    )
    serve.add_argument("--tier", default="0.5B", choices=("0.5B", "1B", "8B"))
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8173)
    serve.add_argument("--max-batch", type=int, default=8,
                       help="micro-batch flush size")
    serve.add_argument("--max-wait-ms", type=float, default=10.0,
                       help="max time a request waits for batch-mates")
    serve.add_argument("--max-seq-len", type=int, default=320)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request")
    serve.set_defaults(func=cmd_serve)

    calibrate = sub.add_parser(
        "calibrate", help="DPO-calibrate a trained model against the profiler"
    )
    calibrate.add_argument("program")
    calibrate.add_argument("--model", required=True)
    calibrate.add_argument("--sweep", required=True, metavar="NAME=V1,V2,...",
                           help="runtime input to sweep as the environment")
    calibrate.add_argument("--data", action="append", default=[], metavar="NAME=VALUE")
    calibrate.add_argument("--iterations", type=int, default=5)
    calibrate.add_argument("--tier", default="0.5B", choices=("0.5B", "1B", "8B"))
    calibrate.add_argument("--seed", type=int, default=0)
    calibrate.add_argument("--out", help="save the calibrated model here")
    add_hw_flags(calibrate)
    calibrate.set_defaults(func=cmd_calibrate)

    explore = sub.add_parser(
        "explore", help="rank mapping candidates with a trained model"
    )
    explore.add_argument("program")
    explore.add_argument("--model", required=True)
    explore.add_argument("--data", action="append", default=[], metavar="NAME=VALUE")
    explore.add_argument("--unroll", type=int, nargs="+", default=[1, 2, 4])
    explore.add_argument("--mem-delays", type=int, nargs="+", default=[10])
    explore.add_argument("--max-candidates", type=int, default=16)
    explore.add_argument("--verify-top", type=int, default=3)
    explore.add_argument("--tier", default="0.5B", choices=("0.5B", "1B", "8B"))
    explore.add_argument("--seed", type=int, default=0)
    explore.add_argument("--verbose", action="store_true",
                         help="print predictor cache statistics to stderr")
    explore.set_defaults(func=cmd_explore)

    campaign = sub.add_parser(
        "campaign",
        help="resumable multi-objective search campaigns over "
             "workloads x hardware x strategies",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    def add_campaign_flags(p: argparse.ArgumentParser, runs: bool) -> None:
        p.add_argument("--spec", required=True, metavar="FILE",
                       help="campaign spec JSON (see repro.campaign.save_spec)")
        p.add_argument("--journal", required=True, metavar="FILE",
                       help="append-only JSONL evaluation checkpoint")
        if runs:
            p.add_argument("--model", default=None,
                           help="trained checkpoint for model-guided cells")
            p.add_argument("--remote", default=None, metavar="URL",
                           help="rank through a running 'repro serve' instead")
            p.add_argument("--tier", default="0.5B", choices=("0.5B", "1B", "8B"))
            p.add_argument("--seed", type=int, default=0)
            p.add_argument(
                "--max-evals", type=int, default=None, metavar="N",
                help="stop after N fresh ground-truth evaluations (exit 3; "
                     "the journal keeps the finished prefix for resume)",
            )
            p.add_argument(
                "--ledger", default=None, metavar="FILE",
                help="append each cell's best objective to this bench "
                     "history ledger on completion (see 'repro bench')",
            )
        p.add_argument(
            "--timeline", default=None, metavar="FILE",
            help="write a Chrome-trace (Perfetto-loadable) timeline sidecar; "
                 "the journal itself stays byte-identical",
        )

    campaign_run = campaign_sub.add_parser(
        "run", help="execute a campaign from scratch, journaling every evaluation"
    )
    add_campaign_flags(campaign_run, runs=True)
    campaign_run.add_argument(
        "--overwrite", action="store_true",
        help="replace an existing journal instead of refusing",
    )
    campaign_run.set_defaults(func=cmd_campaign_run)

    campaign_resume = campaign_sub.add_parser(
        "resume", help="continue an interrupted campaign by replaying its journal"
    )
    add_campaign_flags(campaign_resume, runs=True)
    campaign_resume.set_defaults(func=cmd_campaign_resume)

    campaign_report = campaign_sub.add_parser(
        "report", help="derive traces, Pareto fronts and the strategy "
                       "comparison from a journal (no model needed)"
    )
    add_campaign_flags(campaign_report, runs=False)
    campaign_report.add_argument("--json", action="store_true",
                                 help="machine-readable report")
    campaign_report.set_defaults(func=cmd_campaign_report)

    report = sub.add_parser(
        "report", help="assemble results/ tables into one markdown report"
    )
    report.add_argument("--results", default="results")
    report.add_argument("--out", default=None)
    report.set_defaults(func=cmd_report)

    stats = sub.add_parser(
        "stats", help="print the unified telemetry snapshot (local process "
                      "or a running 'repro serve')"
    )
    stats.add_argument("--remote", default=None, metavar="URL",
                       help="read a running server's /metrics instead")
    stats.add_argument("--legacy", action="store_true",
                       help="with --remote: fetch the legacy /stats layout")
    stats.add_argument(
        "--profile", action="store_true",
        help="sample a CPU/memory window attributed to open telemetry "
             "spans (locally, or via the server's /debug/profile)",
    )
    stats.add_argument("--profile-seconds", type=float, default=2.0,
                       metavar="N", help="profile window length")
    stats.set_defaults(func=cmd_stats)

    bench = sub.add_parser(
        "bench", help="run, inspect and trend the registered benchmark "
                      "suites (repro.obs harness + history ledger)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    def add_ledger_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--ledger", default=None, metavar="FILE",
                       help="bench history ledger "
                            "(default <repo>/BENCH_HISTORY.jsonl)")

    bench_run = bench_sub.add_parser(
        "run", help="run suites: measure, write BENCH_*.json, append the "
                    "ledger, gate through the regression sentinel"
    )
    bench_run.add_argument("--suite", action="append", default=None,
                           metavar="NAME", help="run one suite (repeatable; "
                           "default: all registered)")
    bench_run.add_argument("--smoke", action="store_true",
                           help="small iteration counts for the CI lane")
    bench_run.add_argument("--tier", default=None,
                           choices=("0.5B", "1B", "8B"),
                           help="model tier for suites with a tier axis")
    add_ledger_flag(bench_run)
    bench_run.add_argument("--no-ledger", action="store_true",
                           help="do not append results to the ledger")
    bench_run.add_argument("--no-regress", action="store_true",
                           help="skip the regression sentinel")
    bench_run.set_defaults(func=cmd_bench_run)

    bench_list = bench_sub.add_parser(
        "list", help="list registered suites and their declared metrics"
    )
    bench_list.set_defaults(func=cmd_bench_list)

    def add_bench_filters(p: argparse.ArgumentParser) -> None:
        add_ledger_flag(p)
        p.add_argument("--suite", default=None)
        p.add_argument("--metric", default=None)
        p.add_argument("--tier", default=None)
        p.add_argument("--mode", default=None,
                       choices=("smoke", "full", "campaign"))

    bench_log = bench_sub.add_parser(
        "log", help="print ledger entries as JSONL (newest last)"
    )
    add_bench_filters(bench_log)
    bench_log.add_argument("--limit", type=int, default=None, metavar="N",
                           help="only the newest N matching entries")
    bench_log.set_defaults(func=cmd_bench_log)

    bench_trend = bench_sub.add_parser(
        "trend", help="sparkline metric trajectories from the ledger"
    )
    add_bench_filters(bench_trend)
    bench_trend.set_defaults(func=cmd_bench_trend)

    workloads = sub.add_parser("workloads", help="list bundled benchmark suites")
    workloads.add_argument(
        "--suite",
        choices=("polybench", "linalg", "modern", "accelerators"),
        help="restrict to one suite",
    )
    workloads.set_defaults(func=cmd_workloads)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early: exit quietly.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    raise SystemExit(main())
