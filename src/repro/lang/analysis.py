"""Static control-flow analysis for the mini dataflow language.

This module plays the role Frama-C plays in the paper: it decides, per
operator function, whether control flow depends on runtime inputs.

Operators are classified as

* ``CLASS_I`` — control flow is input-independent (e.g. a matrix
  transposition whose loop bounds are compile-time constants), or
* ``CLASS_II`` — control flow reads runtime inputs, either *data*
  taint (array contents steer branches, as in sorting) or *size* taint
  (scalar parameters steer loop bounds, as in a sliding window whose
  bounds come from the input tensor shape).

The classification feeds the dynamic control-flow separation mask of
Section 5.2 and the ``Dyn. Num`` column of Table 2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import AnalysisError
from . import ast


class OperatorClass(enum.Enum):
    """Input dependence class of an operator (paper Section 5.2)."""

    CLASS_I = "class_i"
    CLASS_II = "class_ii"


class TaintKind(enum.Flag):
    """What kind of runtime information a value derives from."""

    NONE = 0
    SIZE = enum.auto()  # scalar runtime parameters (loop bounds, strides)
    DATA = enum.auto()  # array element contents


@dataclass
class ControlFlowReport:
    """Result of analysing one function."""

    function: str
    operator_class: OperatorClass
    tainted_conditions: int = 0
    condition_taint: TaintKind = TaintKind.NONE
    dynamic_params: list[str] = field(default_factory=list)
    loop_count: int = 0
    branch_count: int = 0

    @property
    def is_input_dependent(self) -> bool:
        return self.operator_class is OperatorClass.CLASS_II


def _expr_reads(expr: ast.Expr) -> set[str]:
    """Names of variables read by *expr* (array bases included)."""
    reads: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Var):
            reads.add(node.name)
        elif isinstance(node, ast.Index):
            reads.add(node.base.name)
    return reads


def _collect_conditions(func: ast.FunctionDef) -> list[ast.Expr]:
    """Every control-flow condition expression in *func*."""
    conditions: list[ast.Expr] = []
    for node in ast.walk(func.body):
        if isinstance(node, ast.For) and node.cond is not None:
            conditions.append(node.cond)
        elif isinstance(node, (ast.While, ast.If)):
            conditions.append(node.cond)
        elif isinstance(node, ast.Ternary):
            conditions.append(node.cond)
    return conditions


class TaintAnalyzer:
    """Flow-insensitive fixpoint taint propagation within one function."""

    def __init__(self, func: ast.FunctionDef) -> None:
        self._func = func
        self.taint: dict[str, TaintKind] = {}
        for param in func.params:
            if param.type.is_array:
                # Reading the array *contents* yields DATA taint; the
                # array name itself only carries taint when indexed.
                self.taint[param.name] = TaintKind.DATA
            elif param.type.base in ("int", "float"):
                self.taint[param.name] = TaintKind.SIZE

    def _expr_taint(self, expr: ast.Expr) -> TaintKind:
        result = TaintKind.NONE
        for node in ast.walk(expr):
            if isinstance(node, ast.Var):
                result |= self.taint.get(node.name, TaintKind.NONE)
            elif isinstance(node, ast.Index):
                base_taint = self.taint.get(node.base.name, TaintKind.NONE)
                if base_taint & TaintKind.DATA:
                    result |= TaintKind.DATA
                for index in node.indices:
                    result |= self._expr_taint(index)
        return result

    def run(self) -> dict[str, TaintKind]:
        """Propagate taint through assignments until fixpoint."""
        changed = True
        assignments = [
            node for node in ast.walk(self._func.body)
            if isinstance(node, (ast.Assign, ast.Decl))
        ]
        iterations = 0
        while changed:
            iterations += 1
            if iterations > 1000:
                raise AnalysisError(
                    f"taint fixpoint did not converge in {self._func.name}"
                )
            changed = False
            for node in assignments:
                if isinstance(node, ast.Decl):
                    if node.init is None:
                        continue
                    name = node.name
                    incoming = self._expr_taint(node.init)
                else:
                    target = node.target
                    name = target.name if isinstance(target, ast.Var) else target.base.name
                    incoming = self._expr_taint(node.value)
                    if isinstance(target, ast.Index):
                        for index in target.indices:
                            incoming |= self._expr_taint(index)
                current = self.taint.get(name, TaintKind.NONE)
                merged = current | incoming
                if merged != current:
                    self.taint[name] = merged
                    changed = True
        return self.taint


def analyze_function(func: ast.FunctionDef) -> ControlFlowReport:
    """Classify one function's control flow (Class I vs Class II)."""
    analyzer = TaintAnalyzer(func)
    taint = analyzer.run()
    conditions = _collect_conditions(func)
    condition_taint = TaintKind.NONE
    tainted_conditions = 0
    for cond in conditions:
        cond_taint = analyzer._expr_taint(cond)
        if cond_taint != TaintKind.NONE:
            tainted_conditions += 1
            condition_taint |= cond_taint
    dynamic_params = [
        param.name
        for param in func.params
        if not param.type.is_array
        and any(param.name in _expr_reads(cond) for cond in conditions)
    ]
    # Scalars that reach conditions indirectly also count as dynamic.
    if condition_taint & TaintKind.SIZE:
        for param in func.params:
            if param.type.is_array or param.name in dynamic_params:
                continue
            if taint.get(param.name, TaintKind.NONE) & TaintKind.SIZE:
                for cond in conditions:
                    reads = _expr_reads(cond)
                    if any(
                        taint.get(name, TaintKind.NONE) & TaintKind.SIZE
                        for name in reads
                    ):
                        if _param_flows_to(analyzer, func, param.name, reads):
                            dynamic_params.append(param.name)
                            break
    operator_class = (
        OperatorClass.CLASS_II if condition_taint != TaintKind.NONE else OperatorClass.CLASS_I
    )
    loops = [n for n in ast.walk(func.body) if isinstance(n, (ast.For, ast.While))]
    branches = [n for n in ast.walk(func.body) if isinstance(n, (ast.If, ast.Ternary))]
    return ControlFlowReport(
        function=func.name,
        operator_class=operator_class,
        tainted_conditions=tainted_conditions,
        condition_taint=condition_taint,
        dynamic_params=dynamic_params,
        loop_count=len(loops),
        branch_count=len(branches),
    )


def _param_flows_to(
    analyzer: TaintAnalyzer,
    func: ast.FunctionDef,
    param: str,
    condition_reads: set[str],
) -> bool:
    """Conservative reachability: does *param* flow into any of the names
    read by a condition?  Uses a per-variable source map built from the
    assignment graph."""
    sources: dict[str, set[str]] = {param: {param}}
    changed = True
    assignments = [
        node for node in ast.walk(func.body)
        if isinstance(node, (ast.Assign, ast.Decl))
    ]
    for _ in range(100):
        if not changed:
            break
        changed = False
        for node in assignments:
            if isinstance(node, ast.Decl):
                if node.init is None:
                    continue
                name, value = node.name, node.init
            else:
                target = node.target
                name = target.name if isinstance(target, ast.Var) else target.base.name
                value = node.value
            incoming: set[str] = set()
            for read in _expr_reads(value):
                incoming |= sources.get(read, set())
            if incoming - sources.get(name, set()):
                sources.setdefault(name, set()).update(incoming)
                changed = True
    return any(param in sources.get(name, set()) for name in condition_reads)


def classify_operators(program: ast.Program) -> dict[str, ControlFlowReport]:
    """Analyse every function in *program*."""
    return {func.name: analyze_function(func) for func in program.functions}


def count_dynamic_parameters(program: ast.Program) -> int:
    """Paper Table 2 ``Dyn. Num``: number of control-flow-steering
    runtime parameters across the program."""
    total = 0
    for report in classify_operators(program).values():
        total += len(report.dynamic_params)
    return total


@dataclass
class ProgramFeatures:
    """Handcrafted features (used by the Tenset-MLP baseline and the
    workload statistics table)."""

    loop_count: int
    max_loop_depth: int
    branch_count: int
    add_count: int
    mul_count: int
    div_count: int
    cmp_count: int
    array_access_count: int
    call_count: int
    constant_loop_trip_product: float
    param_count: int
    array_param_count: int
    statement_count: int

    def as_vector(self) -> list[float]:
        return [
            float(self.loop_count),
            float(self.max_loop_depth),
            float(self.branch_count),
            float(self.add_count),
            float(self.mul_count),
            float(self.div_count),
            float(self.cmp_count),
            float(self.array_access_count),
            float(self.call_count),
            float(self.constant_loop_trip_product),
            float(self.param_count),
            float(self.array_param_count),
            float(self.statement_count),
        ]


def _constant_trip_count(loop: ast.For) -> float:
    """Best-effort constant trip count of a canonical for loop."""
    if loop.cond is None or not isinstance(loop.cond, ast.BinOp):
        return 1.0
    bound = loop.cond.right
    if not isinstance(bound, ast.IntLit):
        return 1.0
    start = 0
    if isinstance(loop.init, ast.Decl) and isinstance(loop.init.init, ast.IntLit):
        start = loop.init.init.value
    elif isinstance(loop.init, ast.Assign) and isinstance(loop.init.value, ast.IntLit):
        start = loop.init.value.value
    step = 1
    if isinstance(loop.step, ast.Assign) and isinstance(loop.step.value, ast.IntLit):
        step = max(1, abs(loop.step.value.value))
    trips = (bound.value - start) / step
    return max(trips, 1.0)


def extract_features(program: ast.Program) -> ProgramFeatures:
    """Compute handcrafted whole-program features."""
    loop_count = 0
    branch_count = 0
    add = mul = div = cmp = 0
    array_access = 0
    call_count = 0
    trip_product = 1.0
    stmt_count = 0
    depth = 0
    param_count = 0
    array_param_count = 0
    for func in program.functions:
        param_count += len(func.params)
        array_param_count += sum(1 for p in func.params if p.type.is_array)
        depth = max(depth, ast.max_loop_depth(func.body))
        for node in ast.walk(func.body):
            if isinstance(node, ast.For):
                loop_count += 1
                trip_product *= _constant_trip_count(node)
            elif isinstance(node, ast.While):
                loop_count += 1
            elif isinstance(node, (ast.If, ast.Ternary)):
                branch_count += 1
            elif isinstance(node, ast.BinOp):
                if node.op in ("+", "-"):
                    add += 1
                elif node.op == "*":
                    mul += 1
                elif node.op in ("/", "%"):
                    div += 1
                elif node.op in ("<", ">", "<=", ">=", "==", "!="):
                    cmp += 1
            elif isinstance(node, ast.Index):
                array_access += 1
            elif isinstance(node, ast.CallExpr):
                call_count += 1
            if isinstance(node, ast.Stmt):
                stmt_count += 1
    # Cap the trip product so features stay in a trainable range.
    trip_product = min(trip_product, 1e12)
    return ProgramFeatures(
        loop_count=loop_count,
        max_loop_depth=depth,
        branch_count=branch_count,
        add_count=add,
        mul_count=mul,
        div_count=div,
        cmp_count=cmp,
        array_access_count=array_access,
        call_count=call_count,
        constant_loop_trip_product=trip_product,
        param_count=param_count,
        array_param_count=array_param_count,
        statement_count=stmt_count,
    )
