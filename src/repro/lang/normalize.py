"""Program normalization (the paper's §7.2 future-work direction).

The paper attributes part of its residual error to "deeply abstracted
or non-local program semantics" and names program normalization as the
planned mitigation.  This pass canonicalizes a program before encoding:

* local variables and loop counters are renamed in declaration order
  (``v0``, ``v1``, …), removing author-specific naming noise;
* constant subexpressions are folded (``(2 + 3) * x`` → ``5 * x``);
* arithmetic identities are simplified (``x + 0``, ``x * 1``, ``x * 0``);
* directly nested blocks are flattened.

Semantics are preserved: the simulator produces identical results for
normalized programs (folded constants change neither values nor the
datapath the allocator sees in any way that breaks monotonicity).
"""

from __future__ import annotations

import copy
from typing import Optional, Union

from . import ast


def normalize(program: ast.Program) -> ast.Program:
    """Return a normalized deep copy of *program*."""
    clone = copy.deepcopy(program)
    for func in clone.functions:
        _rename_locals(func)
        func.body = _normalize_block(func.body)
    return clone


# -- renaming ----------------------------------------------------------


def _rename_locals(func: ast.FunctionDef) -> None:
    """Rename declared locals to v0, v1, ... in declaration order.

    Parameters keep their names (they are the function's interface and
    carry dataflow-graph meaning)."""
    param_names = {param.name for param in func.params}
    mapping: dict[str, str] = {}
    for node in ast.walk(func.body):
        if isinstance(node, ast.Decl) and node.name not in param_names:
            if node.name not in mapping:
                mapping[node.name] = f"v{len(mapping)}"
    if not mapping:
        return
    for node in ast.walk(func.body):
        if isinstance(node, ast.Decl) and node.name in mapping:
            node.name = mapping[node.name]
        elif isinstance(node, ast.Var) and node.name in mapping:
            node.name = mapping[node.name]


# -- constant folding -----------------------------------------------------


def _literal_value(expr: ast.Expr) -> Optional[Union[int, float]]:
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.FloatLit):
        return expr.value
    return None


def _make_literal(value: Union[int, float]) -> ast.Expr:
    if isinstance(value, int):
        return ast.IntLit(value)
    return ast.FloatLit(value)


_FOLDABLE_OPS = {"+", "-", "*", "/", "%"}


def _fold(op: str, left: Union[int, float], right: Union[int, float]):
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None
        if isinstance(left, int) and isinstance(right, int):
            return int(left / right)
        return left / right
    if op == "%":
        if right == 0:
            return None
        if isinstance(left, int) and isinstance(right, int):
            return left - int(left / right) * right
        return None
    return None


def simplify_expr(expr: ast.Expr) -> ast.Expr:
    """Fold constants and apply arithmetic identities, bottom-up."""
    if isinstance(expr, ast.BinOp):
        left = simplify_expr(expr.left)
        right = simplify_expr(expr.right)
        left_value = _literal_value(left)
        right_value = _literal_value(right)
        if (
            expr.op in _FOLDABLE_OPS
            and left_value is not None
            and right_value is not None
        ):
            folded = _fold(expr.op, left_value, right_value)
            if folded is not None and abs(float(folded)) < 1e15:
                return _make_literal(folded)
        # Identities: x+0, 0+x, x-0, x*1, 1*x, x*0, 0*x, x/1.
        if expr.op == "+" and right_value == 0:
            return left
        if expr.op == "+" and left_value == 0:
            return right
        if expr.op == "-" and right_value == 0:
            return left
        if expr.op == "*" and right_value == 1:
            return left
        if expr.op == "*" and left_value == 1:
            return right
        if expr.op == "*" and (right_value == 0 or left_value == 0):
            is_float = isinstance(left_value, float) or isinstance(right_value, float)
            return ast.FloatLit(0.0) if is_float else ast.IntLit(0)
        if expr.op == "/" and right_value == 1:
            return left
        return ast.BinOp(op=expr.op, left=left, right=right)
    if isinstance(expr, ast.UnaryOp):
        operand = simplify_expr(expr.operand)
        value = _literal_value(operand)
        if expr.op == "-" and value is not None:
            return _make_literal(-value)
        return ast.UnaryOp(op=expr.op, operand=operand)
    if isinstance(expr, ast.Index):
        return ast.Index(
            base=expr.base, indices=[simplify_expr(i) for i in expr.indices]
        )
    if isinstance(expr, ast.CallExpr):
        return ast.CallExpr(name=expr.name, args=[simplify_expr(a) for a in expr.args])
    if isinstance(expr, ast.Ternary):
        cond = simplify_expr(expr.cond)
        cond_value = _literal_value(cond)
        if cond_value is not None:
            return simplify_expr(expr.then if cond_value else expr.other)
        return ast.Ternary(
            cond=cond, then=simplify_expr(expr.then), other=simplify_expr(expr.other)
        )
    return expr


# -- statements ---------------------------------------------------------------


def _normalize_stmt(stmt: ast.Stmt) -> ast.Stmt:
    if isinstance(stmt, ast.Block):
        return _normalize_block(stmt)
    if isinstance(stmt, ast.Decl):
        if stmt.init is not None:
            stmt.init = simplify_expr(stmt.init)
        stmt.type.dims = [
            simplify_expr(d) if d is not None else None for d in stmt.type.dims
        ]
        return stmt
    if isinstance(stmt, ast.Assign):
        stmt.value = simplify_expr(stmt.value)
        if isinstance(stmt.target, ast.Index):
            stmt.target = simplify_expr(stmt.target)  # type: ignore[assignment]
        return stmt
    if isinstance(stmt, ast.For):
        if stmt.init is not None:
            stmt.init = _normalize_stmt(stmt.init)
        if stmt.cond is not None:
            stmt.cond = simplify_expr(stmt.cond)
        if stmt.step is not None:
            stmt.step = _normalize_stmt(stmt.step)
        stmt.body = _normalize_block(stmt.body)
        return stmt
    if isinstance(stmt, ast.While):
        stmt.cond = simplify_expr(stmt.cond)
        stmt.body = _normalize_block(stmt.body)
        return stmt
    if isinstance(stmt, ast.If):
        stmt.cond = simplify_expr(stmt.cond)
        stmt.then = _normalize_block(stmt.then)
        if stmt.other is not None:
            stmt.other = _normalize_block(stmt.other)
        return stmt
    if isinstance(stmt, ast.Return) and stmt.value is not None:
        stmt.value = simplify_expr(stmt.value)
        return stmt
    if isinstance(stmt, ast.ExprStmt):
        stmt.expr = simplify_expr(stmt.expr)
        return stmt
    return stmt


def _normalize_block(block: ast.Block) -> ast.Block:
    """Normalize children and flatten directly nested blocks."""
    stmts: list[ast.Stmt] = []
    for stmt in block.stmts:
        normalized = _normalize_stmt(stmt)
        if isinstance(normalized, ast.Block):
            stmts.extend(normalized.stmts)
        else:
            stmts.append(normalized)
    return ast.Block(stmts=stmts)
