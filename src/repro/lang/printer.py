"""Pretty-printer: AST back to source text.

``parse(to_source(parse(s)))`` is structurally idempotent, which the
property tests rely on, and the printed text is what the tokenizer and
the dataset formatters consume.
"""

from __future__ import annotations

from . import ast

_INDENT = "  "


def _format_type(type_: ast.Type, name: str = "") -> str:
    text = type_.base
    if name:
        text += f" {name}"
    for dim in type_.dims:
        text += "[" + ("" if dim is None else format_expr(dim)) + "]"
    return text


def format_expr(expr: ast.Expr) -> str:
    """Render an expression with explicit parentheses on binary ops."""
    if isinstance(expr, ast.IntLit):
        # Negative literals print parenthesized so reparsing (which
        # produces a unary minus) is textually stable.
        return str(expr.value) if expr.value >= 0 else f"({expr.value})"
    if isinstance(expr, ast.FloatLit):
        value = expr.value
        if value == int(value) and abs(value) < 1e15:
            text = f"{value:.1f}"
        else:
            text = repr(value)
        return text if value >= 0 else f"({text})"
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.BinOp):
        return f"({format_expr(expr.left)} {expr.op} {format_expr(expr.right)})"
    if isinstance(expr, ast.UnaryOp):
        return f"({expr.op}{format_expr(expr.operand)})"
    if isinstance(expr, ast.Index):
        indices = "".join(f"[{format_expr(i)}]" for i in expr.indices)
        return f"{expr.base.name}{indices}"
    if isinstance(expr, ast.CallExpr):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.Ternary):
        return (
            f"({format_expr(expr.cond)} ? {format_expr(expr.then)}"
            f" : {format_expr(expr.other)})"
        )
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def _format_simple_stmt(stmt: ast.Stmt) -> str:
    """A statement without trailing ';' (for for-loop headers)."""
    if isinstance(stmt, ast.Decl):
        text = _format_type(stmt.type, stmt.name)
        if stmt.init is not None:
            text += f" = {format_expr(stmt.init)}"
        return text
    if isinstance(stmt, ast.Assign):
        return f"{format_expr(stmt.target)} {stmt.op} {format_expr(stmt.value)}"
    if isinstance(stmt, ast.ExprStmt):
        return format_expr(stmt.expr)
    raise TypeError(f"cannot format {type(stmt).__name__} inline")


def _format_stmt(stmt: ast.Stmt, level: int, lines: list[str]) -> None:
    pad = _INDENT * level
    if isinstance(stmt, ast.Block):
        lines.append(pad + "{")
        for inner in stmt.stmts:
            _format_stmt(inner, level + 1, lines)
        lines.append(pad + "}")
    elif isinstance(stmt, (ast.Decl, ast.Assign, ast.ExprStmt)):
        lines.append(pad + _format_simple_stmt(stmt) + ";")
    elif isinstance(stmt, ast.For):
        for pragma in stmt.pragmas:
            lines.append(pad + (pragma.text or _default_pragma_text(pragma)))
        init = _format_simple_stmt(stmt.init) if stmt.init else ""
        cond = format_expr(stmt.cond) if stmt.cond else ""
        step = _format_simple_stmt(stmt.step) if stmt.step else ""
        lines.append(pad + f"for ({init}; {cond}; {step}) {{")
        for inner in stmt.body.stmts:
            _format_stmt(inner, level + 1, lines)
        lines.append(pad + "}")
    elif isinstance(stmt, ast.While):
        lines.append(pad + f"while ({format_expr(stmt.cond)}) {{")
        for inner in stmt.body.stmts:
            _format_stmt(inner, level + 1, lines)
        lines.append(pad + "}")
    elif isinstance(stmt, ast.If):
        lines.append(pad + f"if ({format_expr(stmt.cond)}) {{")
        for inner in stmt.then.stmts:
            _format_stmt(inner, level + 1, lines)
        if stmt.other is not None:
            lines.append(pad + "} else {")
            for inner in stmt.other.stmts:
                _format_stmt(inner, level + 1, lines)
        lines.append(pad + "}")
    elif isinstance(stmt, ast.Return):
        if stmt.value is None:
            lines.append(pad + "return;")
        else:
            lines.append(pad + f"return {format_expr(stmt.value)};")
    elif isinstance(stmt, ast.Break):
        lines.append(pad + "break;")
    elif isinstance(stmt, ast.Continue):
        lines.append(pad + "continue;")
    else:
        raise TypeError(f"unknown statement node {type(stmt).__name__}")


def _default_pragma_text(pragma: ast.Pragma) -> str:
    if pragma.kind == "parallel":
        return "#pragma omp parallel for"
    if pragma.factor > 1:
        return f"#pragma unroll {pragma.factor}"
    return "#pragma clang loop unroll(full)"


def format_function(func: ast.FunctionDef) -> str:
    params = ", ".join(_format_type(p.type, p.name) for p in func.params)
    lines = [f"{func.return_type.base} {func.name}({params}) {{"]
    for stmt in func.body.stmts:
        _format_stmt(stmt, 1, lines)
    lines.append("}")
    return "\n".join(lines)


def to_source(program: ast.Program) -> str:
    """Render a whole program as source text."""
    return "\n\n".join(format_function(func) for func in program.functions) + "\n"
