"""Recursive-descent parser for the mini dataflow language."""

from __future__ import annotations

import re
from typing import Optional

from ..errors import ParseError
from . import ast
from .lexer import tokenize
from .tokens import Token, TokenKind

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=")

_UNROLL_FULL = re.compile(r"unroll\s*\(\s*full\s*\)|unroll\s*$|unroll\s+full")
_UNROLL_FACTOR = re.compile(r"unroll(?:\s*\(|\s+)(\d+)\)?")


def _parse_pragma_token(token: Token) -> Optional[ast.Pragma]:
    """Interpret a ``#pragma`` line; unknown pragmas are ignored."""
    text = token.text[len("#pragma"):].strip()
    lowered = text.lower()
    if "parallel" in lowered:
        return ast.Pragma(kind="parallel", factor=0, text=token.text)
    if "unroll" in lowered:
        match = _UNROLL_FACTOR.search(lowered)
        if match:
            return ast.Pragma(kind="unroll", factor=int(match.group(1)), text=token.text)
        if _UNROLL_FULL.search(lowered):
            return ast.Pragma(kind="unroll", factor=0, text=token.text)
        return ast.Pragma(kind="unroll", factor=0, text=token.text)
    return None


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast.Program`."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _expect_punct(self, text: str) -> Token:
        token = self._peek()
        if not token.is_punct(text):
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.line, token.column)
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {token.text!r}", token.line, token.column)
        return self._advance()

    def _at_type(self) -> bool:
        token = self._peek()
        return token.kind is TokenKind.KEYWORD and token.text in ("void", "int", "float")

    # -- grammar -------------------------------------------------------

    def parse_program(self) -> ast.Program:
        functions: list[ast.FunctionDef] = []
        while self._peek().kind is not TokenKind.EOF:
            if self._peek().kind is TokenKind.PRAGMA:
                # Stray top-level pragma: skip.
                self._advance()
                continue
            functions.append(self._parse_function())
        return ast.Program(functions=functions)

    def _parse_base_type(self) -> str:
        token = self._peek()
        if not self._at_type():
            raise ParseError(f"expected type, found {token.text!r}", token.line, token.column)
        return self._advance().text

    def _parse_array_dims(self) -> list[Optional[ast.Expr]]:
        dims: list[Optional[ast.Expr]] = []
        while self._peek().is_punct("["):
            self._advance()
            if self._peek().is_punct("]"):
                dims.append(None)
            else:
                dims.append(self._parse_expr())
            self._expect_punct("]")
        return dims

    def _parse_function(self) -> ast.FunctionDef:
        base = self._parse_base_type()
        name = self._expect_ident().text
        self._expect_punct("(")
        params: list[ast.ParamDecl] = []
        if not self._peek().is_punct(")"):
            while True:
                params.append(self._parse_param())
                if self._peek().is_punct(","):
                    self._advance()
                    continue
                break
        self._expect_punct(")")
        body = self._parse_block()
        return ast.FunctionDef(
            return_type=ast.Type(base=base), name=name, params=params, body=body
        )

    def _parse_param(self) -> ast.ParamDecl:
        base = self._parse_base_type()
        name = self._expect_ident().text
        dims = self._parse_array_dims()
        return ast.ParamDecl(type=ast.Type(base=base, dims=dims), name=name)

    def _parse_block(self) -> ast.Block:
        self._expect_punct("{")
        stmts: list[ast.Stmt] = []
        while not self._peek().is_punct("}"):
            if self._peek().kind is TokenKind.EOF:
                token = self._peek()
                raise ParseError("unexpected end of input in block", token.line, token.column)
            stmts.append(self._parse_statement())
        self._expect_punct("}")
        return ast.Block(stmts=stmts)

    def _parse_statement(self) -> ast.Stmt:
        pragmas: list[ast.Pragma] = []
        while self._peek().kind is TokenKind.PRAGMA:
            pragma = _parse_pragma_token(self._advance())
            if pragma is not None:
                pragmas.append(pragma)
        token = self._peek()
        if token.is_keyword("for"):
            loop = self._parse_for()
            loop.pragmas = pragmas
            return loop
        if pragmas:
            # Pragmas only attach to loops; tolerate and drop otherwise.
            pass
        if token.is_punct("{"):
            return self._parse_block()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("return"):
            self._advance()
            value = None if self._peek().is_punct(";") else self._parse_expr()
            self._expect_punct(";")
            return ast.Return(value=value)
        if token.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            return ast.Break()
        if token.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            return ast.Continue()
        if self._at_type():
            decl = self._parse_decl()
            self._expect_punct(";")
            return decl
        stmt = self._parse_simple_statement()
        self._expect_punct(";")
        return stmt

    def _parse_decl(self) -> ast.Decl:
        base = self._parse_base_type()
        name = self._expect_ident().text
        dims = self._parse_array_dims()
        init = None
        if self._peek().is_punct("="):
            self._advance()
            init = self._parse_expr()
        return ast.Decl(type=ast.Type(base=base, dims=dims), name=name, init=init)

    def _parse_simple_statement(self) -> ast.Stmt:
        """An assignment, increment or expression statement (no ';')."""
        expr = self._parse_expr()
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.text in _ASSIGN_OPS:
            if not isinstance(expr, (ast.Var, ast.Index)):
                raise ParseError("invalid assignment target", token.line, token.column)
            op = self._advance().text
            value = self._parse_expr()
            return ast.Assign(target=expr, op=op, value=value)
        if token.is_punct("++") or token.is_punct("--"):
            if not isinstance(expr, (ast.Var, ast.Index)):
                raise ParseError("invalid increment target", token.line, token.column)
            op = "+=" if self._advance().text == "++" else "-="
            return ast.Assign(target=expr, op=op, value=ast.IntLit(1))
        return ast.ExprStmt(expr=expr)

    def _parse_for(self) -> ast.For:
        self._advance()  # 'for'
        self._expect_punct("(")
        init: Optional[ast.Stmt] = None
        if not self._peek().is_punct(";"):
            init = self._parse_decl() if self._at_type() else self._parse_simple_statement()
        self._expect_punct(";")
        cond: Optional[ast.Expr] = None
        if not self._peek().is_punct(";"):
            cond = self._parse_expr()
        self._expect_punct(";")
        step: Optional[ast.Stmt] = None
        if not self._peek().is_punct(")"):
            step = self._parse_simple_statement()
        self._expect_punct(")")
        body = self._parse_loop_body()
        return ast.For(init=init, cond=cond, step=step, body=body)

    def _parse_while(self) -> ast.While:
        self._advance()  # 'while'
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        body = self._parse_loop_body()
        return ast.While(cond=cond, body=body)

    def _parse_loop_body(self) -> ast.Block:
        if self._peek().is_punct("{"):
            return self._parse_block()
        stmt = self._parse_statement()
        return ast.Block(stmts=[stmt])

    def _parse_if(self) -> ast.If:
        self._advance()  # 'if'
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        then = self._parse_loop_body()
        other: Optional[ast.Block] = None
        if self._peek().is_keyword("else"):
            self._advance()
            other = self._parse_loop_body()
        return ast.If(cond=cond, then=then, other=other)

    # -- expressions ---------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self._peek().is_punct("?"):
            self._advance()
            then = self._parse_expr()
            self._expect_punct(":")
            other = self._parse_expr()
            return ast.Ternary(cond=cond, then=then, other=other)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind is not TokenKind.PUNCT:
                return left
            prec = _PRECEDENCE.get(token.text)
            if prec is None or prec < min_prec:
                return left
            op = self._advance().text
            right = self._parse_binary(prec + 1)
            left = ast.BinOp(op=op, left=left, right=right)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.is_punct("-") or token.is_punct("!") or token.is_punct("+"):
            op = self._advance().text
            operand = self._parse_unary()
            if op == "+":
                return operand
            return ast.UnaryOp(op=op, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while self._peek().is_punct("["):
            if not isinstance(expr, ast.Var):
                token = self._peek()
                raise ParseError("can only index plain arrays", token.line, token.column)
            indices: list[ast.Expr] = []
            while self._peek().is_punct("["):
                self._advance()
                indices.append(self._parse_expr())
                self._expect_punct("]")
            expr = ast.Index(base=expr, indices=indices)
        return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT:
            self._advance()
            return ast.IntLit(int(token.text, 0))
        if token.kind is TokenKind.FLOAT:
            self._advance()
            return ast.FloatLit(float(token.text.rstrip("fF")))
        if token.kind is TokenKind.IDENT:
            name = self._advance().text
            if self._peek().is_punct("("):
                self._advance()
                args: list[ast.Expr] = []
                if not self._peek().is_punct(")"):
                    while True:
                        args.append(self._parse_expr())
                        if self._peek().is_punct(","):
                            self._advance()
                            continue
                        break
                self._expect_punct(")")
                return ast.CallExpr(name=name, args=args)
            return ast.Var(name=name)
        if token.is_punct("("):
            self._advance()
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        raise ParseError(f"unexpected token {token.text!r}", token.line, token.column)


def parse(source: str) -> ast.Program:
    """Parse *source* into a :class:`repro.lang.ast.Program`."""
    return Parser(tokenize(source)).parse_program()


def parse_expression(source: str) -> ast.Expr:
    """Parse a single expression (used by tests and generators)."""
    parser = Parser(tokenize(source))
    expr = parser._parse_expr()
    token = parser._peek()
    if token.kind is not TokenKind.EOF:
        raise ParseError(f"trailing input {token.text!r}", token.line, token.column)
    return expr
