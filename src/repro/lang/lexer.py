"""Lexer for the mini dataflow language."""

from __future__ import annotations

from ..errors import LexError
from .tokens import KEYWORDS, PUNCTUATORS, Token, TokenKind


class Lexer:
    """Converts source text into a list of :class:`Token`.

    Comments (``//`` and ``/* */``) are skipped.  ``#pragma`` lines are
    emitted as single PRAGMA tokens carrying the remainder of the line,
    so the parser can attach them to the following statement.
    """

    def __init__(self, source: str) -> None:
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # -- internals ----------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._source):
                return
            if self._source[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1

    def _skip_trivia(self) -> None:
        while self._pos < len(self._source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._pos < len(self._source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", self._line, self._column)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, column = self._line, self._column
        char = self._peek()
        if not char:
            return Token(TokenKind.EOF, "", line, column)
        if char == "#":
            return self._lex_pragma(line, column)
        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            return self._lex_number(line, column)
        if char.isalpha() or char == "_":
            return self._lex_ident(line, column)
        for punct in PUNCTUATORS:
            if self._source.startswith(punct, self._pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, line, column)
        raise LexError(f"unexpected character {char!r}", line, column)

    def _lex_pragma(self, line: int, column: int) -> Token:
        start = self._pos
        while self._pos < len(self._source) and self._peek() != "\n":
            self._advance()
        text = self._source[start:self._pos].strip()
        if not text.startswith("#pragma"):
            raise LexError(f"unknown directive {text!r}", line, column)
        return Token(TokenKind.PRAGMA, text, line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self._pos
        saw_dot = False
        saw_exp = False
        while self._pos < len(self._source):
            char = self._peek()
            if char.isdigit():
                self._advance()
            elif char == "." and not saw_dot and not saw_exp:
                saw_dot = True
                self._advance()
            elif char in "eE" and not saw_exp and self._peek(1).isdigit():
                saw_exp = True
                self._advance(2)
            elif char in "eE" and not saw_exp and self._peek(1) in "+-" and self._peek(2).isdigit():
                saw_exp = True
                self._advance(3)
            elif char in "fF" and (saw_dot or saw_exp):
                self._advance()
                break
            else:
                break
        text = self._source[start:self._pos]
        kind = TokenKind.FLOAT if (saw_dot or saw_exp or text.endswith(("f", "F"))) else TokenKind.INT
        return Token(kind, text, line, column)

    def _lex_ident(self, line: int, column: int) -> Token:
        start = self._pos
        while self._pos < len(self._source) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self._source[start:self._pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, line, column)


def tokenize(source: str) -> list[Token]:
    """Tokenize *source* into a list ending with an EOF token."""
    return Lexer(source).tokenize()
