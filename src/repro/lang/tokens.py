"""Token definitions for the mini dataflow language.

The language is a small C subset rich enough to express the dataflow
programs the paper evaluates: typed functions, multi-dimensional arrays,
``for``/``while`` loops, ``if``/``else`` branches, arithmetic and logical
expressions, calls, and mapping pragmas (``#pragma unroll`` and
``#pragma omp parallel for``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    IDENT = "ident"
    INT = "int_literal"
    FLOAT = "float_literal"
    KEYWORD = "keyword"
    PUNCT = "punct"
    PRAGMA = "pragma"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "void",
        "int",
        "float",
        "for",
        "while",
        "if",
        "else",
        "return",
        "break",
        "continue",
    }
)

# Multi-character punctuators must be matched longest-first.
PUNCTUATORS = (
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "<<",
    ">>",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ";",
    "?",
    ":",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind.value}({self.text!r}@{self.line}:{self.column})"
