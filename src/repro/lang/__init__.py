"""Mini dataflow language: lexer, parser, AST, printer and analysis.

This package is the substrate everything else consumes — the paper's
C-based dataflow graphs and operators are expressed in this language.
"""

from . import ast
from .analysis import (
    ControlFlowReport,
    OperatorClass,
    ProgramFeatures,
    TaintKind,
    analyze_function,
    classify_operators,
    count_dynamic_parameters,
    extract_features,
)
from .lexer import Lexer, tokenize
from .normalize import normalize, simplify_expr
from .parser import Parser, parse, parse_expression
from .printer import format_expr, format_function, to_source
from .tokens import Token, TokenKind

__all__ = [
    "ast",
    "tokenize",
    "normalize",
    "simplify_expr",
    "Lexer",
    "parse",
    "parse_expression",
    "Parser",
    "to_source",
    "format_expr",
    "format_function",
    "Token",
    "TokenKind",
    "OperatorClass",
    "TaintKind",
    "ControlFlowReport",
    "ProgramFeatures",
    "analyze_function",
    "classify_operators",
    "count_dynamic_parameters",
    "extract_features",
]
