"""AST node definitions for the mini dataflow language.

Nodes are plain dataclasses.  ``walk`` yields every node in a subtree,
which the analyses, feature extractors and generators all build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union


@dataclass
class Node:
    """Base class for all AST nodes."""

    def children(self) -> list["Node"]:
        """Direct child nodes, in source order."""
        result: list[Node] = []
        for value in self.__dict__.values():
            if isinstance(value, Node):
                result.append(value)
            elif isinstance(value, list):
                result.extend(item for item in value if isinstance(item, Node))
        return result


def walk(node: Node) -> Iterator[Node]:
    """Yield *node* and every descendant in pre-order."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(current.children()))


# -- types ------------------------------------------------------------


@dataclass
class Type(Node):
    """A scalar or array type.

    ``dims`` holds one entry per array dimension; ``None`` marks an
    unsized dimension (as in ``float a[][]`` parameters) and an ``Expr``
    a sized one.
    """

    base: str  # "void", "int" or "float"
    dims: list[Optional["Expr"]] = field(default_factory=list)

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def rank(self) -> int:
        return len(self.dims)


# -- expressions -------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions."""


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class Var(Expr):
    name: str


@dataclass
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class UnaryOp(Expr):
    op: str
    operand: Expr


@dataclass
class Index(Expr):
    """Array subscript ``base[i0][i1]...`` flattened into one node."""

    base: Var
    indices: list[Expr]


@dataclass
class CallExpr(Expr):
    name: str
    args: list[Expr]


@dataclass
class Ternary(Expr):
    cond: Expr
    then: Expr
    other: Expr


# -- statements ---------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclass
class Pragma(Node):
    """A mapping pragma attached to a loop.

    ``kind`` is ``"unroll"`` or ``"parallel"``; ``factor`` is the unroll
    factor (0 means *full* unroll).
    """

    kind: str
    factor: int = 0
    text: str = ""


@dataclass
class Decl(Stmt):
    type: Type
    name: str
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    target: Union[Var, Index]
    op: str  # "=", "+=", ...
    value: Expr


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Stmt]
    body: Block
    pragmas: list[Pragma] = field(default_factory=list)

    @property
    def unroll_factor(self) -> int:
        """Unroll factor requested via pragma; 1 if none, 0 if full."""
        for pragma in self.pragmas:
            if pragma.kind == "unroll":
                return pragma.factor
        return 1

    @property
    def is_parallel(self) -> bool:
        return any(p.kind == "parallel" for p in self.pragmas)


@dataclass
class While(Stmt):
    cond: Expr
    body: Block


@dataclass
class If(Stmt):
    cond: Expr
    then: Block
    other: Optional[Block] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr


# -- top level -----------------------------------------------------------


@dataclass
class ParamDecl(Node):
    type: Type
    name: str


@dataclass
class FunctionDef(Node):
    return_type: Type
    name: str
    params: list[ParamDecl]
    body: Block


@dataclass
class Program(Node):
    functions: list[FunctionDef] = field(default_factory=list)

    def function(self, name: str) -> FunctionDef:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r}")

    @property
    def function_names(self) -> list[str]:
        return [func.name for func in self.functions]


def loops_in(node: Node) -> list[For]:
    """All ``For`` loops in the subtree rooted at *node*."""
    return [n for n in walk(node) if isinstance(n, For)]


def calls_in(node: Node) -> list[CallExpr]:
    """All call expressions in the subtree rooted at *node*."""
    return [n for n in walk(node) if isinstance(n, CallExpr)]


def max_loop_depth(node: Node) -> int:
    """Deepest loop nesting level in the subtree rooted at *node*."""

    def depth(current: Node) -> int:
        best = 0
        for child in current.children():
            child_depth = depth(child)
            if isinstance(child, (For, While)):
                child_depth += 1
            best = max(best, child_depth)
        return best

    return depth(node)
