"""Apply rewrite sequences with re-validation at every step.

A :class:`RewriteSequence` is the unit the campaign axis, the CLI and
the enumerator all share: an ordered tuple of :class:`RewriteStep`.
``apply`` threads a program through the steps, and after *every* step

* re-runs :class:`~repro.analysis.validate.ProgramValidator` (a rule
  that emits an invalid program is a bug, and we refuse to continue
  from one),
* incrementally recomputes the dependence report of the one function
  the step touched (reports for untouched functions carry over),
* tracks the content digest, so intermediate digests can be dropped
  from :data:`~repro.analysis.cache.GLOBAL_ANALYSIS_CACHE` — they
  will never be ingested again — while the final program's analysis is
  warmed into the cache for the ingestion boundary that runs next.

``bit_parity`` is the execution-level gate the acceptance criteria
lean on: both programs run under the interpreter on identical inputs
and every output array must be bit-identical.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..analysis.cache import AnalysisCache, GLOBAL_ANALYSIS_CACHE
from ..analysis.dependence import DependenceReport, analyze_dependences
from ..analysis.validate import ProgramValidator
from ..errors import RewriteError
from ..lang import ast, parse
from ..lang.printer import to_source
from ..sim import default_inputs, program_digest
from ..sim.interpreter import Interpreter
from .rules import RewriteStep, apply_step

__all__ = ["RewriteResult", "RewriteSequence", "StepRecord", "bit_parity"]


@dataclass(frozen=True)
class StepRecord:
    """What one applied step did to the program."""

    step: RewriteStep
    digest_before: str
    digest_after: str
    dependence_count: int

    def as_dict(self) -> dict:
        return {
            "step": self.step.to_text(),
            "digest_before": self.digest_before,
            "digest_after": self.digest_after,
            "dependences": self.dependence_count,
        }


@dataclass(frozen=True)
class RewriteResult:
    """The outcome of applying a full sequence."""

    steps: tuple[RewriteStep, ...]
    program: ast.Program
    source: str
    digest_before: str
    digest_after: str
    records: tuple[StepRecord, ...] = ()

    def as_dict(self) -> dict:
        return {
            "steps": [step.to_text() for step in self.steps],
            "digest_before": self.digest_before,
            "digest_after": self.digest_after,
            "records": [record.as_dict() for record in self.records],
            "source": self.source,
        }


@dataclass(frozen=True)
class RewriteSequence:
    """An ordered, replayable tuple of rewrite steps."""

    steps: tuple[RewriteStep, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))

    @classmethod
    def from_texts(cls, texts) -> "RewriteSequence":
        return cls(steps=tuple(RewriteStep.from_text(t) for t in texts))

    def describe(self) -> str:
        return " ; ".join(step.to_text() for step in self.steps) or "<identity>"

    def apply(
        self,
        program: "ast.Program | str",
        cache: Optional[AnalysisCache] = None,
    ) -> RewriteResult:
        """Thread *program* through every step; see the module docstring
        for the per-step contract."""
        if cache is None:
            cache = GLOBAL_ANALYSIS_CACHE
        if isinstance(program, str):
            program = parse(program)
        validation = ProgramValidator().validate(program)
        if not validation.ok:
            raise RewriteError(
                "refusing to rewrite an invalid program: "
                + validation.reasons()[0]
            )
        current = program
        digest = program_digest(to_source(current))
        original_digest = digest
        reports: dict[str, DependenceReport] = {}
        records: list[StepRecord] = []
        intermediate_digests: list[str] = []
        for step in self.steps:
            try:
                func = current.function(step.function)
            except KeyError:
                raise RewriteError(
                    f"{step.to_text()}: program has no function "
                    f"{step.function!r}"
                ) from None
            prior = reports.get(step.function)
            if prior is None:
                prior = analyze_dependences(func)
            rewritten = apply_step(current, step, report=prior)
            check = ProgramValidator().validate(rewritten)
            if not check.ok:
                raise RewriteError(
                    f"{step.to_text()} produced an invalid program: "
                    + check.reasons()[0]
                )
            # incremental recompute: only the touched function's
            # dependence summary changes
            fresh = analyze_dependences(rewritten.function(step.function))
            reports[step.function] = fresh
            new_digest = program_digest(to_source(rewritten))
            records.append(
                StepRecord(
                    step=step,
                    digest_before=digest,
                    digest_after=new_digest,
                    dependence_count=len(fresh.dependences),
                )
            )
            if digest != original_digest:
                intermediate_digests.append(digest)
            current, digest = rewritten, new_digest
        # Cache hygiene: intermediate programs will never be ingested
        # again, so their analysis entries are dead weight; the final
        # program is about to be ingested (campaign admission, serve),
        # so warm its entry.
        for stale in intermediate_digests:
            if stale != digest:
                cache.invalidate(stale)
        source = to_source(current)
        if self.steps:
            cache.get(source, digest=digest)
        return RewriteResult(
            steps=self.steps,
            program=current,
            source=source,
            digest_before=original_digest,
            digest_after=digest,
            records=tuple(records),
        )


def bit_parity(
    original: "ast.Program | str",
    rewritten: "ast.Program | str",
    function: str = "",
    data: Optional[dict] = None,
    seed: int = 7,
) -> bool:
    """Do both programs leave bit-identical contents in every array
    argument of *function* (default: the last function, the dataflow
    entry point) on identical deterministic inputs?"""
    if isinstance(original, str):
        original = parse(original)
    if isinstance(rewritten, str):
        rewritten = parse(rewritten)
    if not function:
        if not original.functions:
            raise RewriteError("cannot check parity of an empty program")
        function = original.functions[-1].name
    base = _final_arrays(original, function, data, seed)
    after = _final_arrays(rewritten, function, data, seed)
    if set(base) != set(after):
        return False
    return all(np.array_equal(base[k], after[k]) for k in base)


def _final_arrays(
    program: ast.Program, function: str, data: Optional[dict], seed: int
) -> dict:
    args = default_inputs(
        program,
        function,
        rng=np.random.default_rng(seed),
        overrides=copy.deepcopy(data) if data else None,
    )
    Interpreter(program).run(function, args)
    return {
        k: v.copy() for k, v in args.items() if isinstance(v, np.ndarray)
    }
