"""Static profitability scoring for candidate rewrites.

A new analysis over the ``AffineExpr`` access sets the dataflow layer
already computes: for every array access we estimate the *memory
traffic* it generates (how many accesses miss a small model cache) plus
the *loop header overhead* of the nest around it.  The sum is a score —
lower is better — that ranks rewritten programs without simulating
them, so :mod:`repro.rewrite.enumerate` can prune the sequence space to
a top-k instead of exploding.

The model is deliberately coarse (it has to agree with the cycle
simulator's cost surface only in *ordering*, not magnitude):

* an access inside a nest of trip counts ``t1..tn`` is executed
  ``t1*...*tn`` times;
* unit-stride accesses in the innermost loop pay ``1/CACHE_LINE_ELEMS``
  per execution (spatial reuse), others pay 1;
* an access invariant in some loop ``l`` is only fetched once per
  distinct value of the *other* indices, provided the data touched in
  one iteration of ``l`` (its reuse distance, ``footprint``) fits in
  ``CACHE_CAPACITY`` — temporal reuse;
* every loop header costs ``HEADER_COST`` per iteration it drives
  (this is the term the simulator actually charges, and what fusion and
  unroll-and-jam reduce).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..analysis.dataflow import FunctionDataflow, LoopDesc, analyze_dataflow
from ..analysis.dependence import DependenceReport
from ..lang import ast

__all__ = [
    "CACHE_CAPACITY",
    "CACHE_LINE_ELEMS",
    "DEFAULT_TRIP",
    "HEADER_COST",
    "FootprintReport",
    "estimate_profitability",
    "score_program",
]

CACHE_LINE_ELEMS = 4
DEFAULT_TRIP = 8
HEADER_COST = 2.0
CACHE_CAPACITY = 256


def _trip(loop: LoopDesc) -> int:
    bounds = loop.value_range()
    if bounds is None:
        return DEFAULT_TRIP
    lo, hi = bounds
    stride = abs(loop.step) if loop.step else 1
    return max(1, (hi - lo) // stride + 1)


@dataclass(frozen=True)
class FootprintReport:
    """Traffic + overhead estimate for one function."""

    function: str
    traffic: float
    header_overhead: float
    loop_footprints: dict = field(default_factory=dict)

    @property
    def score(self) -> float:
        return self.traffic + self.header_overhead

    def as_dict(self) -> dict:
        return {
            "function": self.function,
            "traffic": round(self.traffic, 3),
            "header_overhead": round(self.header_overhead, 3),
            "score": round(self.score, 3),
            "loop_footprints": {
                k: round(v, 3) for k, v in self.loop_footprints.items()
            },
        }


def _flow_of(
    target: Union[ast.FunctionDef, DependenceReport, FunctionDataflow]
) -> FunctionDataflow:
    if isinstance(target, FunctionDataflow):
        return target
    if isinstance(target, DependenceReport):
        return target.dataflow
    return analyze_dataflow(target)


def _access_varies_in(access, var: str) -> bool:
    if access.opaque:
        return True
    return any(
        (not sub.affine) or sub.coeff(var) != 0 for sub in access.subscripts
    )


def _footprints(flow: FunctionDataflow) -> dict:
    """``loop index -> elements touched during ONE iteration of that
    loop`` — the reuse distance seen by anything invariant in it."""
    out: dict = {}
    for loop in flow.loops:
        total = 0.0
        for statement in flow.statements:
            if loop.index not in statement.loop_ids:
                continue
            position = statement.loop_ids.index(loop.index)
            deeper = statement.loop_ids[position + 1 :]
            for access in statement.reads + statement.writes:
                span = 1.0
                for inner_id in deeper:
                    inner = flow.loops[inner_id]
                    if _access_varies_in(access, inner.var):
                        span *= _trip(inner)
                total += span
        out[loop.index] = total
    return out


def estimate_profitability(
    target: Union[ast.FunctionDef, DependenceReport, FunctionDataflow]
) -> FootprintReport:
    """Score one function; see the module docstring for the model."""
    flow = _flow_of(target)
    footprints = _footprints(flow)
    traffic = 0.0
    for statement in flow.statements:
        if statement.kind == "header":
            continue
        chain = [flow.loops[i] for i in statement.loop_ids]
        iterations = 1.0
        for loop in chain:
            iterations *= _trip(loop)
        innermost = chain[-1] if chain else None
        for access in statement.reads + statement.writes:
            if access.opaque:
                traffic += iterations
                continue
            cost = iterations
            if innermost is not None and _unit_stride(access, innermost.var):
                cost /= CACHE_LINE_ELEMS
            for loop in chain:
                if _access_varies_in(access, loop.var):
                    continue
                # temporal reuse: the value survives across iterations
                # of `loop` only if the per-iteration footprint fits
                if (
                    loop is innermost
                    or footprints[loop.index] <= CACHE_CAPACITY
                ):
                    cost /= _trip(loop)
            traffic += cost
    header_overhead = 0.0
    for loop in flow.loops:
        driven = float(_trip(loop))
        cursor = loop.parent
        while cursor is not None:
            driven *= _trip(flow.loops[cursor])
            cursor = flow.loops[cursor].parent
        header_overhead += HEADER_COST * driven
    return FootprintReport(
        function=flow.function,
        traffic=traffic,
        header_overhead=header_overhead,
        loop_footprints={
            flow.loops[i].label: v for i, v in footprints.items()
        },
    )


def _unit_stride(access, var: str) -> bool:
    """Unit stride in *var*: the last subscript moves by ±1 with it and
    no other subscript moves at all."""
    if access.opaque or not access.subscripts:
        return False
    if not all(sub.affine for sub in access.subscripts):
        return False
    last = access.subscripts[-1]
    if last.coeff(var) not in (1, -1):
        return False
    return all(sub.coeff(var) == 0 for sub in access.subscripts[:-1])


def score_program(program: ast.Program) -> float:
    """Whole-program score: the sum over functions (lower is better)."""
    return sum(
        estimate_profitability(func).score for func in program.functions
    )
