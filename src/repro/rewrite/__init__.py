"""Analysis-directed program rewriting.

The stack, bottom to top:

``rules``          — the five transform kinds (interchange, tile,
                     fuse, distribute, unroll-and-jam) as pure
                     AST→AST functions, each gated on an ``ok``
                     :class:`~repro.analysis.legality.LegalityVerdict`.
``apply``          — :class:`RewriteSequence`: replayable step lists,
                     re-validated after every step, with analysis-cache
                     hygiene; plus the ``bit_parity`` execution gate.
``profitability``  — affine footprint / reuse-distance scoring that
                     ranks rewritten programs without simulating them.
``enumerate``      — bounded beam search over legal sequences,
                     profitability-pruned to a top-k.

Everything downstream (campaign rewrite axis, ``repro rewrite`` CLI,
``analyze --suggest``) composes these four modules.
"""

from .apply import RewriteResult, RewriteSequence, StepRecord, bit_parity
from .enumerate import (
    RankedSequence,
    StepCandidate,
    candidate_steps,
    enumerate_sequences,
    enumerate_steps,
)
from .profitability import FootprintReport, estimate_profitability, score_program
from .rules import REWRITE_KINDS, RewriteStep, apply_step, loop_nodes

__all__ = [
    "FootprintReport",
    "REWRITE_KINDS",
    "RankedSequence",
    "RewriteResult",
    "RewriteSequence",
    "RewriteStep",
    "StepCandidate",
    "StepRecord",
    "apply_step",
    "bit_parity",
    "candidate_steps",
    "enumerate_sequences",
    "enumerate_steps",
    "estimate_profitability",
    "loop_nodes",
    "score_program",
]
