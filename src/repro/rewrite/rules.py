"""Legality-gated loop transformations as pure AST→AST rewrites.

Each rule is a function from a :class:`~repro.lang.ast.Program` to a
*new* program (inputs are never mutated) and refuses to fire without an
``ok`` :class:`~repro.analysis.legality.LegalityVerdict` from the
analysis layer — the verdict's reasons are cited verbatim in the
:class:`~repro.errors.RewriteError` so a rejected rewrite always names
the dependence (or structural obstacle) that blocked it.

Loops are addressed by their pre-order index within the function, the
same numbering :class:`~repro.analysis.dataflow.LoopDesc.index` uses,
so analysis verdicts and AST surgery always talk about the same loop.

The five rule kinds:

``interchange``  swap the headers of a nested pair (legality:
                 ``can_interchange``).
``tile``         strip-mine one loop or a band of two into tile/point
                 loops (``can_tile``).
``fuse``         merge two adjacent sibling loops with identical
                 headers (``can_fuse``).
``distribute``   split one loop's body into two sequential loops
                 (``can_distribute``).
``unroll_jam``   replicate the (innermost or jammed) body by a factor
                 and widen the step (``can_unroll``).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from ..analysis.dependence import DependenceReport, analyze_dependences
from ..analysis.legality import (
    can_distribute,
    can_fuse,
    can_interchange,
    can_tile,
    can_unroll,
)
from ..errors import RewriteError
from ..lang import ast

__all__ = ["REWRITE_KINDS", "RewriteStep", "apply_step", "loop_nodes"]

REWRITE_KINDS = ("interchange", "tile", "fuse", "distribute", "unroll_jam")

# kind -> (min loops, max loops, needs factor)
_ARITY = {
    "interchange": (2, 2, False),
    "tile": (1, 2, True),
    "fuse": (2, 2, False),
    "distribute": (1, 1, True),
    "unroll_jam": (1, 1, True),
}


@dataclass(frozen=True)
class RewriteStep:
    """One transform application, addressed structurally.

    ``loops`` are pre-order loop indices within ``function``.
    ``factor`` is the tile size (``tile``), the split position
    (``distribute``) or the unroll factor (``unroll_jam``); unused (0)
    otherwise.  The text form is ``kind:function:loops[:factor]``,
    e.g. ``interchange:gemm_kernel:0,1`` or ``tile:kernel:1,2:4``.
    """

    kind: str
    function: str
    loops: tuple[int, ...]
    factor: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _ARITY:
            raise RewriteError(
                f"unknown rewrite kind {self.kind!r}; "
                f"expected one of {', '.join(REWRITE_KINDS)}"
            )
        if not self.function:
            raise RewriteError("rewrite step needs a function name")
        lo, hi, needs_factor = _ARITY[self.kind]
        loops = tuple(int(i) for i in self.loops)
        object.__setattr__(self, "loops", loops)
        if not lo <= len(loops) <= hi:
            raise RewriteError(
                f"{self.kind} takes {lo}"
                + (f"-{hi}" if hi != lo else "")
                + f" loop indices, got {len(loops)}"
            )
        if any(i < 0 for i in loops):
            raise RewriteError(f"negative loop index in {self.kind} step")
        if needs_factor:
            minimum = 1 if self.kind == "distribute" else 2
            if self.factor < minimum:
                raise RewriteError(
                    f"{self.kind} needs factor >= {minimum}, got {self.factor}"
                )
        elif self.factor:
            raise RewriteError(f"{self.kind} does not take a factor")

    def describe(self) -> str:
        return self.to_text()

    # -- text / payload codecs -------------------------------------------

    def to_text(self) -> str:
        body = f"{self.kind}:{self.function}:" + ",".join(
            str(i) for i in self.loops
        )
        _, _, needs_factor = _ARITY[self.kind]
        return f"{body}:{self.factor}" if needs_factor else body

    @classmethod
    def from_text(cls, text: str) -> "RewriteStep":
        parts = text.strip().split(":")
        if len(parts) not in (3, 4):
            raise RewriteError(
                f"malformed rewrite step {text!r}; "
                "expected kind:function:loops[:factor]"
            )
        kind, function, loop_text = parts[0], parts[1], parts[2]
        try:
            loops = tuple(int(i) for i in loop_text.split(",") if i != "")
        except ValueError:
            raise RewriteError(
                f"malformed loop list {loop_text!r} in rewrite step {text!r}"
            ) from None
        factor = 0
        if len(parts) == 4:
            try:
                factor = int(parts[3])
            except ValueError:
                raise RewriteError(
                    f"malformed factor {parts[3]!r} in rewrite step {text!r}"
                ) from None
        return cls(kind=kind, function=function, loops=loops, factor=factor)

    def to_payload(self) -> str:
        return self.to_text()

    @classmethod
    def from_payload(cls, payload: object) -> "RewriteStep":
        if not isinstance(payload, str):
            raise RewriteError(
                f"rewrite step payload must be a string, got {type(payload).__name__}"
            )
        return cls.from_text(payload)


# -- AST helpers -------------------------------------------------------


def loop_nodes(func: ast.FunctionDef) -> list[ast.Stmt]:
    """For/While nodes in the same pre-order ``analyze_dataflow`` uses,
    so positional indices line up with :class:`LoopDesc.index`."""
    out: list[ast.Stmt] = []

    def visit(stmts: list[ast.Stmt]) -> None:
        for s in stmts:
            if isinstance(s, (ast.For, ast.While)):
                out.append(s)
                visit(s.body.stmts)
            elif isinstance(s, ast.If):
                visit(s.then.stmts)
                if s.other is not None:
                    visit(s.other.stmts)
            elif isinstance(s, ast.Block):
                visit(s.stmts)

    visit(func.body.stmts)
    return out


def _loop_at(func: ast.FunctionDef, index: int, step: RewriteStep) -> ast.For:
    nodes = loop_nodes(func)
    if not 0 <= index < len(nodes):
        raise RewriteError(
            f"{step.describe()}: function {func.name!r} has no loop #{index} "
            f"(it has {len(nodes)} loops)"
        )
    node = nodes[index]
    if not isinstance(node, ast.For):
        raise RewriteError(
            f"{step.describe()}: loop #{index} is a while loop; "
            "rewrites only target for loops"
        )
    return node


def _owner_of(
    func: ast.FunctionDef, target: ast.Stmt
) -> tuple[list[ast.Stmt], int]:
    """The statement list that directly holds *target*, plus its slot."""
    stack: list[list[ast.Stmt]] = [func.body.stmts]
    while stack:
        stmts = stack.pop()
        for position, s in enumerate(stmts):
            if s is target:
                return stmts, position
            if isinstance(s, (ast.For, ast.While)):
                stack.append(s.body.stmts)
            elif isinstance(s, ast.If):
                stack.append(s.then.stmts)
                if s.other is not None:
                    stack.append(s.other.stmts)
            elif isinstance(s, ast.Block):
                stack.append(s.stmts)
    raise RewriteError(
        f"loop is not reachable from the body of {func.name!r}"
    )


def _used_names(func: ast.FunctionDef) -> set[str]:
    names = {p.name for p in func.params}
    for node in ast.walk(func):
        if isinstance(node, ast.Var):
            names.add(node.name)
        elif isinstance(node, ast.Decl):
            names.add(node.name)
    return names


def _fresh_name(base: str, used: set[str]) -> str:
    candidate = base + "T"
    suffix = 2
    while candidate in used:
        candidate = f"{base}T{suffix}"
        suffix += 1
    used.add(candidate)
    return candidate


def _header_triple(desc_like: ast.For, step: RewriteStep) -> tuple[str, int, int, int]:
    """(var, start, bound, step) of a canonical ``for (int v = a; v < b;
    v += s)`` header with integer-literal start/bound; RewriteError
    otherwise.  Used by tile and unroll-and-jam, which must do integer
    arithmetic on the trip space."""
    loop = desc_like
    if isinstance(loop.init, ast.Decl) and isinstance(loop.init.init, ast.IntLit):
        var, start = loop.init.name, loop.init.init.value
    elif (
        isinstance(loop.init, ast.Assign)
        and isinstance(loop.init.target, ast.Var)
        and isinstance(loop.init.value, ast.IntLit)
    ):
        var, start = loop.init.target.name, loop.init.value.value
    else:
        raise RewriteError(
            f"{step.describe()}: loop init is not a literal assignment"
        )
    cond = loop.cond
    if not (
        isinstance(cond, ast.BinOp)
        and cond.op == "<"
        and isinstance(cond.left, ast.Var)
        and cond.left.name == var
        and isinstance(cond.right, ast.IntLit)
    ):
        raise RewriteError(
            f"{step.describe()}: loop condition is not `{var} < literal`"
        )
    bound = cond.right.value
    stride = _step_stride(loop, var)
    if stride is None or stride <= 0:
        raise RewriteError(
            f"{step.describe()}: loop step is not a positive literal stride"
        )
    return var, start, bound, stride


def _step_stride(loop: ast.For, var: str) -> "int | None":
    """The literal stride of ``v += c`` / ``v = v + c`` steps."""
    step = loop.step
    if not isinstance(step, ast.Assign):
        return None
    if not (isinstance(step.target, ast.Var) and step.target.name == var):
        return None
    if step.op in ("+=",) and isinstance(step.value, ast.IntLit):
        return step.value.value
    if step.op == "-=" and isinstance(step.value, ast.IntLit):
        return -step.value.value
    if step.op == "=" and isinstance(step.value, ast.BinOp):
        value = step.value
        if (
            value.op == "+"
            and isinstance(value.left, ast.Var)
            and value.left.name == var
            and isinstance(value.right, ast.IntLit)
        ):
            return value.right.value
        if (
            value.op == "-"
            and isinstance(value.left, ast.Var)
            and value.left.name == var
            and isinstance(value.right, ast.IntLit)
        ):
            return -value.right.value
    return None


# -- induction-variable offset substitution (unroll bodies) ------------


def _subst_expr(expr: ast.Expr, name: str, offset: int) -> ast.Expr:
    if isinstance(expr, ast.Var):
        if expr.name == name:
            return ast.BinOp(
                op="+", left=ast.Var(name=name), right=ast.IntLit(value=offset)
            )
        return expr
    if isinstance(expr, ast.BinOp):
        expr.left = _subst_expr(expr.left, name, offset)
        expr.right = _subst_expr(expr.right, name, offset)
        return expr
    if isinstance(expr, ast.UnaryOp):
        expr.operand = _subst_expr(expr.operand, name, offset)
        return expr
    if isinstance(expr, ast.Index):
        expr.indices = [_subst_expr(i, name, offset) for i in expr.indices]
        return expr
    if isinstance(expr, ast.CallExpr):
        expr.args = [_subst_expr(a, name, offset) for a in expr.args]
        return expr
    if isinstance(expr, ast.Ternary):
        expr.cond = _subst_expr(expr.cond, name, offset)
        expr.then = _subst_expr(expr.then, name, offset)
        expr.other = _subst_expr(expr.other, name, offset)
        return expr
    return expr


def _subst_stmt(stmt: ast.Stmt, name: str, offset: int) -> None:
    """Replace every read of ``name`` with ``name + offset`` in place,
    recursing through nested control flow (so replicated loop bodies
    that contain further loops stay consistent)."""
    if isinstance(stmt, ast.Assign):
        if isinstance(stmt.target, ast.Index):
            stmt.target.indices = [
                _subst_expr(i, name, offset) for i in stmt.target.indices
            ]
        stmt.value = _subst_expr(stmt.value, name, offset)
    elif isinstance(stmt, ast.Decl):
        if stmt.init is not None:
            stmt.init = _subst_expr(stmt.init, name, offset)
    elif isinstance(stmt, ast.ExprStmt):
        stmt.expr = _subst_expr(stmt.expr, name, offset)
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            stmt.value = _subst_expr(stmt.value, name, offset)
    elif isinstance(stmt, ast.If):
        stmt.cond = _subst_expr(stmt.cond, name, offset)
        for s in stmt.then.stmts:
            _subst_stmt(s, name, offset)
        if stmt.other is not None:
            for s in stmt.other.stmts:
                _subst_stmt(s, name, offset)
    elif isinstance(stmt, ast.While):
        stmt.cond = _subst_expr(stmt.cond, name, offset)
        for s in stmt.body.stmts:
            _subst_stmt(s, name, offset)
    elif isinstance(stmt, ast.For):
        if stmt.init is not None:
            _subst_stmt(stmt.init, name, offset)
        if stmt.cond is not None:
            stmt.cond = _subst_expr(stmt.cond, name, offset)
        if stmt.step is not None:
            _subst_stmt(stmt.step, name, offset)
        for s in stmt.body.stmts:
            _subst_stmt(s, name, offset)
    elif isinstance(stmt, ast.Block):
        for s in stmt.stmts:
            _subst_stmt(s, name, offset)


def _rename_var(stmt: ast.Stmt, old: str, new: str) -> None:
    for node in ast.walk(stmt):
        if isinstance(node, ast.Var) and node.name == old:
            node.name = new
        elif isinstance(node, ast.Decl) and node.name == old:
            node.name = new


def _subtree_defines(stmt: ast.Stmt, name: str) -> bool:
    """Does the subtree write or re-declare *name*?  (Loop headers of
    nested loops count; reads do not.)"""
    for node in ast.walk(stmt):
        if isinstance(node, ast.Decl) and node.name == name:
            return True
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.target, ast.Var)
            and node.target.name == name
        ):
            return True
    return False


def _subtree_reads(stmt: ast.Stmt, name: str) -> bool:
    return any(
        isinstance(node, ast.Var) and node.name == name
        for node in ast.walk(stmt)
    )


def _refuse(step: RewriteStep, verdict) -> None:
    if not verdict.ok:
        raise RewriteError(
            f"refusing {step.describe()}: {verdict.describe()}"
        )


# -- the rules ---------------------------------------------------------


def apply_step(
    program: ast.Program,
    step: RewriteStep,
    report: "DependenceReport | None" = None,
) -> ast.Program:
    """Apply one :class:`RewriteStep`, returning a new program.

    The input program is never mutated.  Raises
    :class:`~repro.errors.RewriteError` when the legality analysis
    refuses the transform (citing the verdict) or when the AST does not
    have the shape the rule needs.
    """
    try:
        func = program.function(step.function)
    except KeyError:
        raise RewriteError(
            f"{step.describe()}: program has no function "
            f"{step.function!r} (functions: {', '.join(program.function_names)})"
        ) from None
    if report is None:
        report = analyze_dependences(func)
    rule = _RULES[step.kind]
    return rule(program, func, step, report)


def _apply_interchange(
    program: ast.Program,
    func: ast.FunctionDef,
    step: RewriteStep,
    report: DependenceReport,
) -> ast.Program:
    outer_index, inner_index = step.loops
    _refuse(step, can_interchange(report, outer_index, inner_index))
    new_program = copy.deepcopy(program)
    new_func = new_program.function(step.function)
    outer = _loop_at(new_func, outer_index, step)
    inner = _loop_at(new_func, inner_index, step)
    outer.init, inner.init = inner.init, outer.init
    outer.cond, inner.cond = inner.cond, outer.cond
    outer.step, inner.step = inner.step, outer.step
    return new_program


def _apply_tile(
    program: ast.Program,
    func: ast.FunctionDef,
    step: RewriteStep,
    report: DependenceReport,
) -> ast.Program:
    _refuse(step, can_tile(report, list(step.loops)))
    factor = step.factor
    new_program = copy.deepcopy(program)
    new_func = new_program.function(step.function)
    loops = [_loop_at(new_func, i, step) for i in step.loops]
    if len(loops) == 2:
        outer, inner = loops
        if outer.body.stmts != [inner]:
            raise RewriteError(
                f"{step.describe()}: the two loops are not a perfect "
                "outer/inner pair in the AST"
            )
    headers = [_header_triple(loop, step) for loop in loops]
    for (var, start, bound, stride), loop in zip(headers, loops):
        if stride != 1:
            raise RewriteError(
                f"{step.describe()}: tiling needs unit-stride loops; "
                f"{var} has stride {stride}"
            )
        if (bound - start) % factor != 0:
            raise RewriteError(
                f"{step.describe()}: tile size {factor} does not divide "
                f"the trip count of {var} ({bound - start})"
            )
    used = _used_names(new_func)
    tile_loops: list[ast.For] = []
    for (var, start, bound, _), loop in zip(headers, loops):
        tile_var = _fresh_name(var, used)
        # point loop: reuse the original node so the body (and any
        # pragmas) stay attached to the var they describe
        loop.init = ast.Decl(
            type=ast.Type(base="int"), name=var, init=ast.Var(name=tile_var)
        )
        loop.cond = ast.BinOp(
            op="<",
            left=ast.Var(name=var),
            right=ast.BinOp(
                op="+", left=ast.Var(name=tile_var), right=ast.IntLit(value=factor)
            ),
        )
        tile_loops.append(
            ast.For(
                init=ast.Decl(
                    type=ast.Type(base="int"),
                    name=tile_var,
                    init=ast.IntLit(value=start),
                ),
                cond=ast.BinOp(
                    op="<", left=ast.Var(name=tile_var), right=ast.IntLit(value=bound)
                ),
                step=ast.Assign(
                    target=ast.Var(name=tile_var),
                    op="+=",
                    value=ast.IntLit(value=factor),
                ),
                body=ast.Block(stmts=[]),
                pragmas=[],
            )
        )
    owner, position = _owner_of(new_func, loops[0])
    if len(loops) == 1:
        tile_loops[0].body.stmts = [loops[0]]
        owner[position] = tile_loops[0]
    else:
        # iT { jT { i { j { body } } } }
        tile_loops[0].body.stmts = [tile_loops[1]]
        tile_loops[1].body.stmts = [loops[0]]
        owner[position] = tile_loops[0]
    return new_program


def _apply_fuse(
    program: ast.Program,
    func: ast.FunctionDef,
    step: RewriteStep,
    report: DependenceReport,
) -> ast.Program:
    first_index, second_index = step.loops
    _refuse(step, can_fuse(report, first_index, second_index))
    new_program = copy.deepcopy(program)
    new_func = new_program.function(step.function)
    first = _loop_at(new_func, first_index, step)
    second = _loop_at(new_func, second_index, step)
    owner, position = _owner_of(new_func, first)
    if position + 1 >= len(owner) or owner[position + 1] is not second:
        raise RewriteError(
            f"{step.describe()}: the loops are not adjacent statements "
            "of the same block"
        )
    var_a = _induction_var(first, step)
    var_b = _induction_var(second, step)
    if var_a != var_b:
        if _subtree_reads(second.body, var_a) or _subtree_defines(
            second.body, var_a
        ):
            raise RewriteError(
                f"{step.describe()}: renaming {var_b!r} to {var_a!r} would "
                f"capture an existing use of {var_a!r} in the second loop"
            )
        for s in second.body.stmts:
            _rename_var(s, var_b, var_a)
    first.body.stmts.extend(second.body.stmts)
    del owner[position + 1]
    return new_program


def _induction_var(loop: ast.For, step: RewriteStep) -> str:
    if isinstance(loop.init, ast.Decl):
        return loop.init.name
    if isinstance(loop.init, ast.Assign) and isinstance(loop.init.target, ast.Var):
        return loop.init.target.name
    raise RewriteError(
        f"{step.describe()}: cannot determine the loop's induction variable"
    )


def _apply_distribute(
    program: ast.Program,
    func: ast.FunctionDef,
    step: RewriteStep,
    report: DependenceReport,
) -> ast.Program:
    (loop_index,) = step.loops
    split = step.factor
    _refuse(step, can_distribute(report, loop_index, split))
    new_program = copy.deepcopy(program)
    new_func = new_program.function(step.function)
    loop = _loop_at(new_func, loop_index, step)
    body = loop.body.stmts
    if not all(isinstance(s, (ast.Assign, ast.Decl, ast.For)) for s in body):
        raise RewriteError(
            f"{step.describe()}: loop body contains statements a "
            "statement-list split cannot represent"
        )
    if not 1 <= split < len(body):
        raise RewriteError(
            f"{step.describe()}: split {split} out of range for a body "
            f"of {len(body)} statements"
        )
    tail = ast.For(
        init=copy.deepcopy(loop.init),
        cond=copy.deepcopy(loop.cond),
        step=copy.deepcopy(loop.step),
        body=ast.Block(stmts=body[split:]),
        pragmas=copy.deepcopy(loop.pragmas),
    )
    loop.body.stmts = body[:split]
    owner, position = _owner_of(new_func, loop)
    owner.insert(position + 1, tail)
    return new_program


def _apply_unroll_jam(
    program: ast.Program,
    func: ast.FunctionDef,
    step: RewriteStep,
    report: DependenceReport,
) -> ast.Program:
    (loop_index,) = step.loops
    factor = step.factor
    _refuse(step, can_unroll(report, loop_index, factor=factor))
    new_program = copy.deepcopy(program)
    new_func = new_program.function(step.function)
    loop = _loop_at(new_func, loop_index, step)
    var, start, bound, stride = _header_triple(loop, step)
    if (bound - start) % (stride * factor) != 0:
        raise RewriteError(
            f"{step.describe()}: factor {factor} does not divide the "
            f"trip count of {var} ({(bound - start) // stride})"
        )
    if _subtree_defines(loop.body, var):
        raise RewriteError(
            f"{step.describe()}: the loop body redefines the induction "
            f"variable {var!r}"
        )
    inner_fors = [s for s in loop.body.stmts if isinstance(s, ast.For)]
    if inner_fors:
        # unroll-and-jam: can_unroll already demands a perfect nest,
        # which in the AST means the body is exactly one For
        if len(loop.body.stmts) != 1 or not isinstance(
            loop.body.stmts[0], ast.For
        ):
            raise RewriteError(
                f"{step.describe()}: unroll-and-jam needs a body that is "
                "exactly one nested loop"
            )
        jam_target = loop.body.stmts[0]
        header_parts = [jam_target.init, jam_target.cond, jam_target.step]
        for part in header_parts:
            if part is not None and _subtree_reads(part, var):
                raise RewriteError(
                    f"{step.describe()}: the inner loop's header depends "
                    f"on {var!r}; jamming cannot preserve it"
                )
        replicate_into = jam_target.body
    else:
        replicate_into = loop.body
    template = [copy.deepcopy(s) for s in replicate_into.stmts]
    new_body: list[ast.Stmt] = list(replicate_into.stmts)
    for copy_index in range(1, factor):
        offset = copy_index * stride
        for s in template:
            clone = copy.deepcopy(s)
            _subst_stmt(clone, var, offset)
            new_body.append(clone)
    replicate_into.stmts = new_body
    loop.step = ast.Assign(
        target=ast.Var(name=var), op="+=", value=ast.IntLit(value=stride * factor)
    )
    return new_program


_RULES = {
    "interchange": _apply_interchange,
    "tile": _apply_tile,
    "fuse": _apply_fuse,
    "distribute": _apply_distribute,
    "unroll_jam": _apply_unroll_jam,
}
