"""Bounded enumeration of legal rewrite sequences.

Candidate generation is structural (every nested pair is an
interchange/tile candidate, every adjacent sibling pair a fusion
candidate, ...), the legality layer prunes it to the legal subset, and
:mod:`repro.rewrite.profitability` ranks what survives so callers get a
top-k instead of a combinatorial explosion.  Rejected candidates are
kept — with the verdict's cited dependence — because "what was refused
and why" is half the value of an analysis-directed engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.dependence import analyze_dependences
from ..errors import RewriteError
from ..lang import ast, parse
from .apply import RewriteSequence
from .profitability import score_program
from .rules import RewriteStep, apply_step, loop_nodes

__all__ = [
    "RankedSequence",
    "StepCandidate",
    "candidate_steps",
    "enumerate_sequences",
    "enumerate_steps",
]

DEFAULT_TILE_SIZES = (4,)
DEFAULT_UNROLL_FACTORS = (2, 4)


@dataclass(frozen=True)
class StepCandidate:
    """One attempted single-step rewrite with its outcome."""

    step: RewriteStep
    ok: bool
    reasons: tuple[str, ...] = ()
    score: float = 0.0  # post-rewrite program score when ok

    def as_dict(self) -> dict:
        payload = {
            "step": self.step.to_text(),
            "ok": self.ok,
            "reasons": list(self.reasons),
        }
        if self.ok:
            payload["score"] = round(self.score, 3)
        return payload


@dataclass(frozen=True)
class RankedSequence:
    """A legal sequence with its profitability score (lower is
    better than ``baseline`` when the model predicts a win)."""

    steps: tuple[RewriteStep, ...]
    score: float
    baseline: float
    digest: str
    source: str = ""

    @property
    def improvement(self) -> float:
        return self.baseline - self.score

    def describe(self) -> str:
        return " ; ".join(step.to_text() for step in self.steps)

    def as_dict(self) -> dict:
        return {
            "steps": [step.to_text() for step in self.steps],
            "score": round(self.score, 3),
            "baseline": round(self.baseline, 3),
            "improvement": round(self.improvement, 3),
            "digest": self.digest,
        }


def candidate_steps(
    program: ast.Program,
    tile_sizes: tuple = DEFAULT_TILE_SIZES,
    unroll_factors: tuple = DEFAULT_UNROLL_FACTORS,
) -> list[RewriteStep]:
    """Structurally plausible steps, *before* any legality check."""
    out: list[RewriteStep] = []
    for func in program.functions:
        flow = analyze_dependences(func).dataflow
        if not flow.loops:
            continue
        for loop in flow.loops:
            for child in flow.children_of(loop.index):
                out.append(
                    RewriteStep(
                        kind="interchange",
                        function=func.name,
                        loops=(loop.index, child.index),
                    )
                )
                for size in tile_sizes:
                    out.append(
                        RewriteStep(
                            kind="tile",
                            function=func.name,
                            loops=(loop.index, child.index),
                            factor=size,
                        )
                    )
            for factor in unroll_factors:
                out.append(
                    RewriteStep(
                        kind="unroll_jam",
                        function=func.name,
                        loops=(loop.index,),
                        factor=factor,
                    )
                )
        for parent in [None] + [l.index for l in flow.loops]:
            siblings = sorted(flow.children_of(parent), key=lambda l: l.order)
            for a, b in zip(siblings, siblings[1:]):
                out.append(
                    RewriteStep(
                        kind="fuse",
                        function=func.name,
                        loops=(a.index, b.index),
                    )
                )
        nodes = loop_nodes(func)
        for loop in flow.loops:
            node = nodes[loop.index]
            if not isinstance(node, ast.For):
                continue
            body = node.body.stmts
            if len(body) < 2 or not all(
                isinstance(s, (ast.Assign, ast.Decl, ast.For)) for s in body
            ):
                continue
            for split in range(1, len(body)):
                out.append(
                    RewriteStep(
                        kind="distribute",
                        function=func.name,
                        loops=(loop.index,),
                        factor=split,
                    )
                )
    return out


def enumerate_steps(
    program: "ast.Program | str",
    tile_sizes: tuple = DEFAULT_TILE_SIZES,
    unroll_factors: tuple = DEFAULT_UNROLL_FACTORS,
) -> list[StepCandidate]:
    """Attempt every candidate single step; legal ones come back scored
    (ascending — best first), rejected ones carry the cited reasons."""
    if isinstance(program, str):
        program = parse(program)
    accepted: list[StepCandidate] = []
    rejected: list[StepCandidate] = []
    for step in candidate_steps(program, tile_sizes, unroll_factors):
        try:
            rewritten = apply_step(program, step)
        except RewriteError as exc:
            rejected.append(
                StepCandidate(step=step, ok=False, reasons=(str(exc),))
            )
            continue
        accepted.append(
            StepCandidate(step=step, ok=True, score=score_program(rewritten))
        )
    accepted.sort(key=lambda c: (c.score, c.step.to_text()))
    return accepted + rejected


def enumerate_sequences(
    program: "ast.Program | str",
    max_len: int = 2,
    top_k: int = 8,
    tile_sizes: tuple = DEFAULT_TILE_SIZES,
    unroll_factors: tuple = DEFAULT_UNROLL_FACTORS,
) -> list[RankedSequence]:
    """Beam-search legal sequences up to *max_len* steps, keeping the
    profitability top-k per level; every returned sequence replays
    cleanly from the original program (that is how it was built)."""
    if isinstance(program, str):
        program = parse(program)
    baseline = score_program(program)
    seen_digests: set[str] = set()
    results: list[RankedSequence] = []
    # beam entries: (score, steps, program)
    beam: list[tuple[float, tuple[RewriteStep, ...], ast.Program]] = [
        (baseline, (), program)
    ]
    for _ in range(max_len):
        frontier: list[tuple[float, tuple[RewriteStep, ...], ast.Program]] = []
        for _, steps, current in beam:
            for step in candidate_steps(current, tile_sizes, unroll_factors):
                try:
                    rewritten = apply_step(current, step)
                except RewriteError:
                    continue
                sequence = steps + (step,)
                # replay from the original through the shared applier:
                # this re-runs the validator after every step and is
                # the exact object campaign cells will execute
                try:
                    replayed = RewriteSequence(steps=sequence).apply(program)
                except RewriteError:
                    continue
                if replayed.digest_after in seen_digests:
                    continue
                seen_digests.add(replayed.digest_after)
                score = score_program(replayed.program)
                results.append(
                    RankedSequence(
                        steps=sequence,
                        score=score,
                        baseline=baseline,
                        digest=replayed.digest_after,
                        source=replayed.source,
                    )
                )
                frontier.append((score, sequence, rewritten))
        frontier.sort(key=lambda entry: (entry[0], [s.to_text() for s in entry[1]]))
        beam = frontier[:top_k]
        if not beam:
            break
    results.sort(key=lambda r: (r.score, [s.to_text() for s in r.steps]))
    return results[:top_k]
