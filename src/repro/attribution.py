"""Per-operator cost attribution.

The paper reasons about operators individually — §5.2 classifies them
into Class I/II, §5.3 re-predicts only changed operators — so designers
need to know *where* a dataflow design's costs live, not just the
end-to-end ``<Power, Area, FF, Cycles>`` vector.  This module splits
the profiler's totals across the operator functions:

* **cycles** come from the simulator's per-function counters;
* **area / flip-flops / power** are distributed by each operator's
  cell-weighted resource allocation, then rescaled so the per-operator
  values sum exactly to the end-to-end totals (interconnect and clock
  overhead is spread proportionally).

The residual (graph-function control, call glue) is reported under the
graph function's own name so nothing silently disappears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from .asicflow.library import RESOURCE_TO_CELL, SKY130, CellLibrary
from .hls import HardwareParams, ResourceCounts, allocate_program
from .lang import ast, parse
from .profiler import CostVector, ProfileReport, Profiler

__all__ = ["OperatorCosts", "AttributionReport", "attribute"]


@dataclass(frozen=True)
class OperatorCosts:
    """One operator's share of the design's cost vector."""

    name: str
    cycles: int
    area_um2: int
    flip_flops: int
    power_uw: int
    functional_units: int

    def share_of(self, totals: CostVector, metric: str) -> float:
        """This operator's fraction of the design total for *metric*."""
        total = totals[metric]
        if total == 0:
            return 0.0
        own = {
            "cycles": self.cycles,
            "area": self.area_um2,
            "ff": self.flip_flops,
            "power": self.power_uw,
        }[metric]
        return own / total


@dataclass
class AttributionReport:
    """Operator-level breakdown reconciled to the end-to-end profile."""

    totals: CostVector
    operators: list[OperatorCosts]
    profile: ProfileReport

    def operator(self, name: str) -> OperatorCosts:
        for op in self.operators:
            if op.name == name:
                return op
        raise KeyError(f"no operator named {name!r} in the attribution")

    def hottest(self, metric: str = "cycles") -> OperatorCosts:
        """The operator with the largest share of *metric*."""
        key = {
            "cycles": lambda op: op.cycles,
            "area": lambda op: op.area_um2,
            "ff": lambda op: op.flip_flops,
            "power": lambda op: op.power_uw,
        }[metric]
        return max(self.operators, key=key)

    def table(self) -> str:
        """Human-readable breakdown, one row per operator."""
        header = (
            f"{'operator':20s} {'cycles':>9s} {'cyc%':>6s} {'area':>9s} "
            f"{'area%':>6s} {'FF':>5s} {'power':>7s}"
        )
        rows = [header]
        for op in self.operators:
            rows.append(
                f"{op.name:20s} {op.cycles:9d} "
                f"{op.share_of(self.totals, 'cycles'):6.1%} "
                f"{op.area_um2:9d} {op.share_of(self.totals, 'area'):6.1%} "
                f"{op.flip_flops:5d} {op.power_uw:7d}"
            )
        return "\n".join(rows)


def _cell_weights(
    counts: ResourceCounts, library: CellLibrary
) -> tuple[float, float, float]:
    """(area, leakage_nw, switch_energy) of one function's raw cells."""
    area = 0.0
    leakage = 0.0
    switch = 0.0
    for field_name, cell_name in RESOURCE_TO_CELL.items():
        count = getattr(counts, field_name)
        cell = library[cell_name]
        area += count * cell.area_um2
        leakage += count * cell.leakage_nw
        switch += count * cell.switch_energy_fj
    # Control FSM flip-flops, as in the synthesis estimator.
    fsm_ffs = counts.module_instances * 6
    area += fsm_ffs * library["dff"].area_um2
    leakage += fsm_ffs * library["dff"].leakage_nw
    switch += fsm_ffs * library["dff"].switch_energy_fj
    return area, leakage, switch


def _largest_remainder(shares: np.ndarray, total: int) -> list[int]:
    """Integer apportionment of *total* by *shares* that sums exactly."""
    if total == 0 or shares.sum() == 0:
        return [0] * len(shares)
    exact = shares / shares.sum() * total
    floors = np.floor(exact).astype(int)
    remainder = total - int(floors.sum())
    order = np.argsort(-(exact - floors), kind="stable")
    for i in order[:remainder]:
        floors[i] += 1
    return floors.tolist()


def attribute(
    program: ast.Program | str,
    params: Optional[HardwareParams] = None,
    data: Optional[dict[str, Any]] = None,
    top: Optional[str] = None,
    max_steps: int = 5_000_000,
) -> AttributionReport:
    """Profile *program* and split its cost vector across operators.

    Per-operator values always sum exactly to the profiled totals
    (largest-remainder apportionment), so the breakdown can be read as
    a partition of the headline numbers.
    """
    if isinstance(program, str):
        program = parse(program)
    profiler = Profiler(params, max_steps=max_steps)
    report = profiler.profile(program, data=data, top=top)

    allocation = allocate_program(program)
    names = [func.name for func in program.functions]
    areas = []
    leakages = []
    switches = []
    units = []
    for name in names:
        counts = allocation.per_function.get(name, ResourceCounts())
        area, leakage, switch = _cell_weights(counts, SKY130)
        areas.append(area)
        leakages.append(leakage)
        switches.append(switch)
        units.append(counts.functional_units)

    area_parts = _largest_remainder(
        np.asarray(areas), report.costs.area_um2
    )
    # Power mixes leakage and switching; weight by their sum per function.
    power_parts = _largest_remainder(
        np.asarray(leakages) + np.asarray(switches), report.costs.power_uw
    )

    ff_weights = []
    for name in names:
        counts = allocation.per_function.get(name, ResourceCounts())
        ff_weights.append(counts.registers + counts.module_instances * 6)
    ff_parts = _largest_remainder(
        np.asarray(ff_weights, dtype=np.float64), report.costs.flip_flops
    )

    interpreter_cycles = _per_function_cycles(
        program, profiler.params, data, top, max_steps
    )
    cycle_weights = np.asarray(
        [interpreter_cycles.get(name, 0) for name in names], dtype=np.float64
    )
    cycle_parts = _largest_remainder(cycle_weights, report.costs.cycles)

    operators = [
        OperatorCosts(
            name=name,
            cycles=cycle_parts[i],
            area_um2=area_parts[i],
            flip_flops=ff_parts[i],
            power_uw=power_parts[i],
            functional_units=units[i],
        )
        for i, name in enumerate(names)
    ]
    return AttributionReport(totals=report.costs, operators=operators, profile=report)


def _per_function_cycles(
    program: ast.Program,
    params: HardwareParams,
    data: Optional[dict[str, Any]],
    top: Optional[str],
    max_steps: int,
) -> dict[str, int]:
    """Exclusive per-function cycle counts from one simulation run."""
    from .sim import Interpreter, default_inputs

    top_name = top
    if top_name is None:
        for candidate in ("dataflow", "graph", "main", "top"):
            if candidate in program.function_names:
                top_name = candidate
                break
        else:
            top_name = program.function_names[-1]
    inputs = default_inputs(program, top_name, overrides=data)
    result = Interpreter(program, params, max_steps=max_steps).run(top_name, inputs)
    per_function = dict(result.per_function_cycles)
    # The top function's counter includes its callees; make it exclusive
    # so the weights partition the run instead of double-counting.
    if top_name in per_function:
        callee_total = sum(
            cycles for name, cycles in per_function.items() if name != top_name
        )
        per_function[top_name] = max(0, per_function[top_name] - callee_total)
    return per_function
