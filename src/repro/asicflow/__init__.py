"""ASIC flow (OpenROAD substitute): library, synthesis, power."""

from .library import RESOURCE_TO_CELL, SKY130, Cell, CellLibrary
from .power import PowerReport, estimate_power
from .synthesis import SynthesisResult, synthesize

__all__ = [
    "Cell",
    "CellLibrary",
    "SKY130",
    "RESOURCE_TO_CELL",
    "SynthesisResult",
    "synthesize",
    "PowerReport",
    "estimate_power",
]
