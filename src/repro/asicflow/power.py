"""Power estimation (OpenROAD report_power substitute).

Total power = leakage (from synthesis) + dynamic switching power, where
dynamic power is driven by the activity each functional unit sees under
the program's loop structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..hls import AllocationResult, HardwareParams, allocate_program
from ..lang import ast
from .library import RESOURCE_TO_CELL, SKY130, CellLibrary
from .synthesis import SynthesisResult, synthesize


@dataclass
class PowerReport:
    """Static + dynamic power breakdown in µW."""

    leakage_uw: int
    dynamic_uw: int

    @property
    def total_uw(self) -> int:
        return self.leakage_uw + self.dynamic_uw


def _activity_factor(program: ast.Program) -> float:
    """Switching-activity proxy: deeper loop nests keep units busier.

    Saturates logarithmically so activity stays within [0.05, 1.0].
    """
    weighted = 0.0
    for func in program.functions:
        for loop in ast.loops_in(func.body):
            depth_bonus = 1.0
            body_ops = sum(
                1
                for node in ast.walk(loop.body)
                if isinstance(node, (ast.BinOp, ast.Index))
            )
            weighted += depth_bonus * body_ops
    activity = 0.05 + 0.12 * math.log1p(weighted)
    return min(activity, 1.0)


def estimate_power(
    program: ast.Program,
    params: HardwareParams | None = None,
    library: CellLibrary = SKY130,
    allocation: AllocationResult | None = None,
    synthesis: SynthesisResult | None = None,
) -> PowerReport:
    """Estimate total power for *program* under *params*."""
    params = params or HardwareParams()
    allocation = allocation or allocate_program(program)
    synthesis = synthesis or synthesize(program, params, library, allocation)
    activity = _activity_factor(program)
    frequency_mhz = 1000.0 / params.clock_period_ns
    total = allocation.total
    dynamic_uw = 0.0
    for field_name, cell_name in RESOURCE_TO_CELL.items():
        count = getattr(total, field_name)
        cell = library[cell_name]
        # P_dyn = E_switch * f * activity; fJ * MHz = nW.
        dynamic_uw += count * cell.switch_energy_fj * frequency_mhz * activity / 1000.0
    # Clock tree: every FF toggles at f regardless of activity.
    dynamic_uw += synthesis.flip_flops * library["dff"].switch_energy_fj * frequency_mhz / 1000.0
    return PowerReport(
        leakage_uw=synthesis.static_power_uw,
        dynamic_uw=int(round(dynamic_uw)),
    )
