"""Physical synthesis estimator (OpenROAD substitute).

Turns the HLS allocation into the static metrics the paper labels with:
area (µm²), flip-flop count, longest-path delay and static+dynamic
power (µW).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..hls import AllocationResult, HardwareParams, allocate_program
from ..lang import ast
from .library import RESOURCE_TO_CELL, SKY130, CellLibrary


@dataclass
class SynthesisResult:
    """Static physical metrics of one design."""

    area_um2: int
    flip_flops: int
    longest_path_ns: float
    static_power_uw: int
    utilization: float

    @property
    def area_mm2(self) -> float:
        return self.area_um2 / 1e6


def _datapath_depth(program: ast.Program) -> int:
    """Longest combinational expression chain (proxy for critical path)."""

    def expr_depth(expr: ast.Expr) -> int:
        if isinstance(expr, ast.BinOp):
            return 1 + max(expr_depth(expr.left), expr_depth(expr.right))
        if isinstance(expr, ast.UnaryOp):
            return 1 + expr_depth(expr.operand)
        if isinstance(expr, ast.Index):
            return 1 + max((expr_depth(i) for i in expr.indices), default=0)
        if isinstance(expr, ast.Ternary):
            return 1 + max(expr_depth(expr.cond), expr_depth(expr.then), expr_depth(expr.other))
        if isinstance(expr, ast.CallExpr):
            return 1 + max((expr_depth(a) for a in expr.args), default=0)
        return 0

    depth = 1
    for func in program.functions:
        for node in ast.walk(func.body):
            if isinstance(node, ast.Assign):
                depth = max(depth, expr_depth(node.value))
            elif isinstance(node, ast.Decl) and node.init is not None:
                depth = max(depth, expr_depth(node.init))
    return depth


def synthesize(
    program: ast.Program,
    params: HardwareParams | None = None,
    library: CellLibrary = SKY130,
    allocation: AllocationResult | None = None,
) -> SynthesisResult:
    """Estimate post-synthesis area, FF count, delay and leakage."""
    params = params or HardwareParams()
    allocation = allocation or allocate_program(program)
    total = allocation.total
    area = 0.0
    leakage_nw = 0.0
    for field_name, cell_name in RESOURCE_TO_CELL.items():
        count = getattr(total, field_name)
        cell = library[cell_name]
        area += count * cell.area_um2
        leakage_nw += count * cell.leakage_nw
    # Control FSM overhead: one-hot state register per module.
    fsm_ffs = total.module_instances * 6
    area += fsm_ffs * library["dff"].area_um2
    leakage_nw += fsm_ffs * library["dff"].leakage_nw
    flip_flops = total.registers + fsm_ffs
    # Interconnect overhead grows mildly super-linearly with cell count.
    cell_count = total.functional_units + total.multiplexers + flip_flops
    interconnect = 0.08 * area * math.log1p(cell_count) / 8.0
    area += interconnect
    depth = _datapath_depth(program)
    # ~0.9 ns per logic level in a 130nm-class process, slowed slightly
    # when memory ports are scarce.
    longest_path = 0.9 * depth + 0.15 * max(0, 4 - params.memory_ports)
    return SynthesisResult(
        area_um2=int(round(area)),
        flip_flops=int(flip_flops),
        longest_path_ns=round(longest_path, 2),
        static_power_uw=int(round(leakage_nw / 1000.0)) + 1,
        utilization=0.72,
    )
