"""SkyWater130-flavoured standard-cell library constants.

Numbers are calibrated to the rough magnitudes of the open SkyWater
130nm PDK (sky130_fd_sc_hd): a DFF is ~20 µm², a 2:1 mux ~11 µm², and
arithmetic macros scale accordingly.  Absolute fidelity is not the goal
— monotone, structure-sensitive label generation is.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Cell:
    """One macro/cell: area, leakage and switching energy."""

    name: str
    area_um2: float
    leakage_nw: float
    switch_energy_fj: float  # energy per activation
    latency_cycles: int  # pipeline latency at the default clock


class CellLibrary:
    """Lookup table of datapath macros for the ASIC flow."""

    def __init__(self) -> None:
        self._cells = {
            cell.name: cell
            for cell in (
                Cell("int_adder", 130.0, 3.0, 45.0, 1),
                Cell("int_multiplier", 980.0, 22.0, 420.0, 3),
                Cell("int_divider", 2900.0, 60.0, 1500.0, 18),
                Cell("fp_adder", 1550.0, 35.0, 600.0, 4),
                Cell("fp_multiplier", 2700.0, 58.0, 1100.0, 5),
                Cell("fp_divider", 7800.0, 160.0, 4200.0, 24),
                Cell("comparator", 70.0, 1.5, 18.0, 1),
                Cell("logic_unit", 48.0, 1.0, 12.0, 1),
                Cell("mux21", 11.2, 0.25, 2.5, 0),
                Cell("dff", 20.0, 0.5, 1.8, 0),
                Cell("sram_word", 1.9, 0.05, 6.0, 0),
            )
        }

    def __getitem__(self, name: str) -> Cell:
        return self._cells[name]

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    @property
    def names(self) -> list[str]:
        return sorted(self._cells)


SKY130 = CellLibrary()

# Map ResourceCounts field -> cell name.
RESOURCE_TO_CELL = {
    "int_adders": "int_adder",
    "int_multipliers": "int_multiplier",
    "int_dividers": "int_divider",
    "fp_adders": "fp_adder",
    "fp_multipliers": "fp_multiplier",
    "fp_dividers": "fp_divider",
    "comparators": "comparator",
    "logic_units": "logic_unit",
    "multiplexers": "mux21",
    "registers": "dff",
    "memory_words": "sram_word",
}
