"""LLM-based data generation substitute (paper §6.1, third stage).

The paper prompts an LLM to produce dataflow variants beyond template
limits.  Offline, we substitute a rule-based mutation engine applying
the same *kinds* of rewrites the paper cites (e.g. replacing a 3×3
convolution with a 5×5 depthwise variant, restructuring loops,
renaming, inserting benign code) — semantic-preserving where the
paper's mutations are, diversity-increasing where they are not.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..lang import ast

MUTATIONS = (
    "rename_identifiers",
    "literal_jitter",
    "loop_interchange",
    "dead_code",
    "kernel_variant",
    "duplicate_statement",
)


@dataclass
class MutationResult:
    """A mutated program and the mutation applied."""

    program: ast.Program
    mutation: str
    changed: bool


class LLMStyleMutator:
    """Applies diversity mutations to dataflow programs."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def mutate(
        self, program: ast.Program, mutation: Optional[str] = None
    ) -> MutationResult:
        """Apply one mutation (random if unspecified) to a copy."""
        mutation = mutation or str(self._rng.choice(MUTATIONS))
        clone = copy.deepcopy(program)
        handler: Callable[[ast.Program], bool] = getattr(self, f"_apply_{mutation}")
        changed = handler(clone)
        return MutationResult(program=clone, mutation=mutation, changed=changed)

    def variants(self, program: ast.Program, count: int) -> list[MutationResult]:
        """Generate *count* mutated variants of *program*."""
        results = []
        for _ in range(count):
            result = self.mutate(program)
            if result.changed:
                results.append(result)
        return results

    # -- mutations --------------------------------------------------------

    def _apply_rename_identifiers(self, program: ast.Program) -> bool:
        """Rename local variables consistently within each function."""
        changed = False
        for func in program.functions:
            mapping: dict[str, str] = {}
            for node in ast.walk(func.body):
                if isinstance(node, ast.Decl) and not node.type.is_array:
                    if node.name not in mapping:
                        mapping[node.name] = f"v{len(mapping)}_{self._rng.integers(100)}"
            if not mapping:
                continue
            for node in ast.walk(func.body):
                if isinstance(node, ast.Decl) and node.name in mapping:
                    node.name = mapping[node.name]
                    changed = True
                elif isinstance(node, ast.Var) and node.name in mapping:
                    node.name = mapping[node.name]
                    changed = True
        return changed

    def _apply_literal_jitter(self, program: ast.Program) -> bool:
        """Perturb non-structural float literals by up to ±50%."""
        changed = False
        for func in program.functions:
            for node in ast.walk(func.body):
                if isinstance(node, ast.FloatLit) and node.value != 0.0:
                    factor = float(self._rng.uniform(0.5, 1.5))
                    node.value = float(np.round(node.value * factor, 2))
                    changed = True
        return changed

    def _apply_loop_interchange(self, program: ast.Program) -> bool:
        """Swap the induction variables of a perfectly nested loop pair."""
        for func in program.functions:
            for loop in ast.loops_in(func.body):
                inner_loops = [
                    s for s in loop.body.stmts if isinstance(s, ast.For)
                ]
                if len(inner_loops) != 1 or len(loop.body.stmts) != 1:
                    continue
                inner = inner_loops[0]
                if not (
                    isinstance(loop.init, ast.Decl)
                    and isinstance(inner.init, ast.Decl)
                    and isinstance(loop.cond, ast.BinOp)
                    and isinstance(inner.cond, ast.BinOp)
                    and isinstance(loop.cond.left, ast.Var)
                    and isinstance(inner.cond.left, ast.Var)
                ):
                    continue
                # Swap bounds and steps; bodies keep variable names, so
                # iteration order changes but the iteration *set* does
                # not (valid for rectangular nests).
                loop.cond.right, inner.cond.right = inner.cond.right, loop.cond.right
                loop.step, inner.step = inner.step, loop.step
                outer_var = loop.init.name
                inner_var = inner.init.name
                loop.init.name, inner.init.name = inner_var, outer_var
                loop.cond.left.name, inner.cond.left.name = inner_var, outer_var
                self._fix_step_var(loop, inner_var)
                self._fix_step_var(inner, outer_var)
                return True
        return False

    @staticmethod
    def _fix_step_var(loop: ast.For, var: str) -> None:
        if isinstance(loop.step, ast.Assign) and isinstance(loop.step.target, ast.Var):
            loop.step.target.name = var

    def _apply_dead_code(self, program: ast.Program) -> bool:
        """Insert an unused local computation (no semantic effect on
        outputs, small effect on area/cycles — like real HLS pragmas)."""
        candidates = [f for f in program.functions if f.body.stmts]
        if not candidates:
            return False
        func = candidates[int(self._rng.integers(len(candidates)))]
        name = f"dead{self._rng.integers(1000)}"
        value = float(np.round(self._rng.uniform(0.0, 8.0), 1))
        func.body.stmts.insert(
            0, ast.Decl(ast.Type("float"), name, ast.FloatLit(value))
        )
        return True

    def _apply_kernel_variant(self, program: ast.Program) -> bool:
        """Resize a small constant loop bound (e.g. a 3-wide window
        becomes 5-wide — the 3×3 → 5×5 depthwise swap of the paper)."""
        for func in program.functions:
            for loop in ast.loops_in(func.body):
                if (
                    isinstance(loop.cond, ast.BinOp)
                    and isinstance(loop.cond.right, ast.IntLit)
                    and 2 <= loop.cond.right.value <= 6
                ):
                    old = loop.cond.right.value
                    new = old + 2 if old <= 4 else old - 2
                    loop.cond.right.value = new
                    return True
        return False

    def _apply_duplicate_statement(self, program: ast.Program) -> bool:
        """Duplicate an innermost assignment (extra work, same shape)."""
        for func in program.functions:
            for loop in ast.loops_in(func.body):
                assigns = [s for s in loop.body.stmts if isinstance(s, ast.Assign)]
                if assigns:
                    loop.body.stmts.append(copy.deepcopy(assigns[-1]))
                    return True
        return False
