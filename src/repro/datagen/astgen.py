"""AST-based random program generation (ldrgen substitute).

Generates syntactically correct, scope-safe, always-terminating
operator functions: random declarations, arithmetic assignments,
constant-bound loops and branches.  This is the "general first" layer
of the progressive data synthesizer (paper §6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lang import ast


@dataclass(frozen=True)
class AstGenConfig:
    """Bounds for random program generation."""

    max_stmts: int = 5
    max_expr_depth: int = 3
    max_loop_depth: int = 2
    max_loop_bound: int = 12
    min_loop_bound: int = 2
    array_dim: int = 8
    branch_probability: float = 0.25
    loop_probability: float = 0.45


class AstGenerator:
    """Random generator over the mini-language grammar."""

    def __init__(self, config: AstGenConfig | None = None, seed: int = 0) -> None:
        self.config = config or AstGenConfig()
        self._rng = np.random.default_rng(seed)
        self._name_counter = 0

    # -- naming ----------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._name_counter += 1
        return f"{prefix}{self._name_counter}"

    # -- expressions ---------------------------------------------------------

    def _gen_expr(
        self,
        scalars: list[str],
        arrays: list[tuple[str, int]],
        index_vars: list[str],
        depth: int,
        want_float: bool,
    ) -> ast.Expr:
        rng = self._rng
        if depth <= 0 or rng.random() < 0.35:
            choices = []
            if scalars:
                choices.append("scalar")
            if arrays and index_vars:
                choices.append("array")
            choices.append("lit")
            kind = rng.choice(choices)
            if kind == "scalar":
                return ast.Var(str(rng.choice(scalars)))
            if kind == "array":
                name, rank = arrays[int(rng.integers(len(arrays)))]
                indices = [
                    ast.Var(str(rng.choice(index_vars))) for _ in range(rank)
                ]
                return ast.Index(base=ast.Var(name), indices=indices)
            if want_float:
                return ast.FloatLit(float(np.round(rng.uniform(0.1, 9.9), 1)))
            return ast.IntLit(int(rng.integers(1, 100)))
        op = str(rng.choice(["+", "-", "*", "+", "*"]))
        left = self._gen_expr(scalars, arrays, index_vars, depth - 1, want_float)
        right = self._gen_expr(scalars, arrays, index_vars, depth - 1, want_float)
        return ast.BinOp(op=op, left=left, right=right)

    def _gen_condition(
        self,
        scalars: list[str],
        arrays: list[tuple[str, int]],
        index_vars: list[str],
        want_float: bool,
    ) -> ast.Expr:
        rng = self._rng
        left = self._gen_expr(scalars, arrays, index_vars, 1, want_float)
        op = str(rng.choice(["<", ">", "<=", ">=", "==", "!="]))
        if want_float:
            right: ast.Expr = ast.FloatLit(float(np.round(rng.uniform(-2, 2), 1)))
        else:
            right = ast.IntLit(int(rng.integers(0, 20)))
        return ast.BinOp(op=op, left=left, right=right)

    # -- statements -------------------------------------------------------------

    def _gen_stmts(
        self,
        scalars: list[str],
        arrays: list[tuple[str, int]],
        index_vars: list[str],
        loop_depth: int,
        budget: int,
        want_float: bool,
    ) -> list[ast.Stmt]:
        rng = self._rng
        stmts: list[ast.Stmt] = []
        count = int(rng.integers(1, max(2, budget + 1)))
        for _ in range(count):
            roll = rng.random()
            if roll < self.config.loop_probability and loop_depth < self.config.max_loop_depth:
                stmts.append(
                    self._gen_loop(scalars, arrays, index_vars, loop_depth, want_float)
                )
            elif roll < self.config.loop_probability + self.config.branch_probability:
                cond = self._gen_condition(scalars, arrays, index_vars, want_float)
                then = ast.Block(
                    stmts=self._gen_assignments(scalars, arrays, index_vars, 1, want_float)
                )
                other = None
                if rng.random() < 0.4:
                    other = ast.Block(
                        stmts=self._gen_assignments(
                            scalars, arrays, index_vars, 1, want_float
                        )
                    )
                stmts.append(ast.If(cond=cond, then=then, other=other))
            else:
                stmts.extend(
                    self._gen_assignments(scalars, arrays, index_vars, 1, want_float)
                )
        return stmts

    def _gen_assignments(
        self,
        scalars: list[str],
        arrays: list[tuple[str, int]],
        index_vars: list[str],
        count: int,
        want_float: bool,
    ) -> list[ast.Stmt]:
        rng = self._rng
        stmts: list[ast.Stmt] = []
        for _ in range(count):
            value = self._gen_expr(
                scalars, arrays, index_vars, self.config.max_expr_depth, want_float
            )
            if arrays and index_vars and rng.random() < 0.6:
                name, rank = arrays[int(rng.integers(len(arrays)))]
                indices = [ast.Var(str(rng.choice(index_vars))) for _ in range(rank)]
                target: ast.Var | ast.Index = ast.Index(base=ast.Var(name), indices=indices)
            elif scalars:
                target = ast.Var(str(rng.choice(scalars)))
            else:
                continue
            op = str(rng.choice(["=", "+=", "="]))
            stmts.append(ast.Assign(target=target, op=op, value=value))
        return stmts

    def _gen_loop(
        self,
        scalars: list[str],
        arrays: list[tuple[str, int]],
        index_vars: list[str],
        loop_depth: int,
        want_float: bool,
    ) -> ast.For:
        rng = self._rng
        var = self._fresh("i")
        bound = int(
            rng.integers(self.config.min_loop_bound, self.config.max_loop_bound + 1)
        )
        step = int(rng.choice([1, 1, 1, 2]))
        body_stmts = self._gen_stmts(
            scalars,
            arrays,
            index_vars + [var],
            loop_depth + 1,
            budget=2,
            want_float=want_float,
        )
        return ast.For(
            init=ast.Decl(type=ast.Type(base="int"), name=var, init=ast.IntLit(0)),
            cond=ast.BinOp(op="<", left=ast.Var(var), right=ast.IntLit(bound)),
            step=ast.Assign(target=ast.Var(var), op="+=", value=ast.IntLit(step)),
            body=ast.Block(stmts=body_stmts),
        )

    # -- top level ------------------------------------------------------------------

    def generate_operator(self, name: str | None = None) -> ast.FunctionDef:
        """One random operator function."""
        rng = self._rng
        name = name or self._fresh("op")
        want_float = bool(rng.random() < 0.7)
        base = "float" if want_float else "int"
        dim = self.config.array_dim
        n_arrays = int(rng.integers(1, 4))
        params: list[ast.ParamDecl] = []
        arrays: list[tuple[str, int]] = []
        for index in range(n_arrays):
            rank = int(rng.choice([1, 2]))
            dims: list = [ast.IntLit(dim) for _ in range(rank)]
            array_name = f"a{index}"
            params.append(
                ast.ParamDecl(type=ast.Type(base=base, dims=dims), name=array_name)
            )
            arrays.append((array_name, rank))
        scalars: list[str] = []
        if rng.random() < 0.5:
            params.append(ast.ParamDecl(type=ast.Type(base="int"), name="n"))
            scalars.append("n")
        local = self._fresh("t")
        body: list[ast.Stmt] = [
            ast.Decl(
                type=ast.Type(base=base),
                name=local,
                init=ast.FloatLit(0.0) if want_float else ast.IntLit(0),
            )
        ]
        scalars = scalars + [local]
        body.extend(
            self._gen_stmts(
                scalars, arrays, [], 0, self.config.max_stmts, want_float
            )
        )
        return ast.FunctionDef(
            return_type=ast.Type(base="void"), name=name, params=params, body=body_block(body)
        )

    def generate_program(self, n_operators: int = 1) -> ast.Program:
        """A program: operators plus a dataflow wrapper calling them."""
        operators = [self.generate_operator() for _ in range(n_operators)]
        return wrap_in_dataflow(operators)


def body_block(stmts: list[ast.Stmt]) -> ast.Block:
    return ast.Block(stmts=stmts)


def _type_key(type_: ast.Type) -> tuple:
    dims = tuple(
        dim.value if isinstance(dim, ast.IntLit) else None for dim in type_.dims
    )
    return (type_.base, dims)


def wrap_in_dataflow(operators: list[ast.FunctionDef]) -> ast.Program:
    """Build a ``dataflow`` top function calling each operator once,
    forwarding its own parameters.

    Parameters with the same name *and* type are shared between
    operators (creating producer→consumer dataflow edges); name clashes
    with different types are renamed.
    """
    top_params: list[ast.ParamDecl] = []
    seen: dict[str, tuple] = {}
    calls: list[ast.Stmt] = []
    for index, op in enumerate(operators):
        args: list[ast.Expr] = []
        for param in op.params:
            key = _type_key(param.type)
            outer_name = param.name
            if outer_name in seen and seen[outer_name] != key:
                outer_name = f"{param.name}_{index}"
            if outer_name not in seen:
                top_params.append(ast.ParamDecl(type=param.type, name=outer_name))
                seen[outer_name] = key
            args.append(ast.Var(outer_name))
        calls.append(ast.ExprStmt(expr=ast.CallExpr(name=op.name, args=args)))
    top = ast.FunctionDef(
        return_type=ast.Type(base="void"),
        name="dataflow",
        params=top_params,
        body=ast.Block(stmts=calls),
    )
    return ast.Program(functions=[*operators, top])
