"""Dataset export/import as JSON Lines.

Records are serialized with program source text, hardware params,
runtime data and the profiled cost vector, so a synthesized corpus can
be saved once and reused across training runs (the paper's Tenset-style
dataset artifact).
"""

from __future__ import annotations

import json
import os
from typing import Iterable

import numpy as np

from ..errors import DatasetError
from ..hls import HardwareParams, RtlFeatures
from ..lang import parse, to_source
from ..profiler import CostVector, ProfileReport
from .formatting import DatasetRecord


def _data_to_json(data: dict | None) -> dict | None:
    if data is None:
        return None
    result = {}
    for name, value in data.items():
        if isinstance(value, np.ndarray):
            result[name] = {"__array__": value.tolist(), "dtype": str(value.dtype)}
        else:
            result[name] = value
    return result


def _data_from_json(data: dict | None) -> dict | None:
    if data is None:
        return None
    result = {}
    for name, value in data.items():
        if isinstance(value, dict) and "__array__" in value:
            result[name] = np.asarray(value["__array__"], dtype=value["dtype"])
        else:
            result[name] = value
    return result


def record_to_json(record: DatasetRecord) -> dict:
    """Serialize one record to a JSON-compatible dict."""
    costs = record.report.costs
    rtl = record.report.rtl
    return {
        "source": to_source(record.program),
        "source_kind": record.source_kind,
        "params": {
            "mem_read_delay": record.params.mem_read_delay,
            "mem_write_delay": record.params.mem_write_delay,
            "pe_count": record.params.pe_count,
            "memory_ports": record.params.memory_ports,
            "clock_period_ns": record.params.clock_period_ns,
        },
        "data": _data_to_json(record.data),
        "costs": costs.as_dict(),
        "rtl": {
            "modules_instantiated": rtl.modules_instantiated,
            "performance_conflicts": rtl.performance_conflicts,
            "estimated_resource_area": rtl.estimated_resource_area,
            "mux21_area": rtl.mux21_area,
            "allocated_multiplexers": rtl.allocated_multiplexers,
            "register_count": rtl.register_count,
            "memory_words": rtl.memory_words,
            "functional_units": rtl.functional_units,
        },
        "longest_path_ns": record.report.longest_path_ns,
        "ops_executed": record.report.ops_executed,
    }


def record_from_json(payload: dict) -> DatasetRecord:
    """Inverse of :func:`record_to_json`."""
    try:
        program = parse(payload["source"])
        costs = payload["costs"]
        rtl = payload["rtl"]
        report = ProfileReport(
            costs=CostVector(
                power_uw=int(costs["power"]),
                area_um2=int(costs["area"]),
                flip_flops=int(costs["ff"]),
                cycles=int(costs["cycles"]),
            ),
            rtl=RtlFeatures(**rtl),
            longest_path_ns=float(payload.get("longest_path_ns", 0.0)),
            ops_executed=int(payload.get("ops_executed", 0)),
        )
        return DatasetRecord(
            program=program,
            params=HardwareParams(**payload["params"]),
            data=_data_from_json(payload.get("data")),
            report=report,
            source_kind=payload.get("source_kind", "external"),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise DatasetError(f"malformed dataset record: {error}") from error


def save_dataset(records: Iterable[DatasetRecord], path: str) -> int:
    """Write records as JSON Lines; returns the record count."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    count = 0
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record_to_json(record)) + "\n")
            count += 1
    return count


def load_dataset(path: str) -> list[DatasetRecord]:
    """Read records written by :func:`save_dataset`."""
    records = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise DatasetError(
                    f"invalid JSON on line {line_number} of {path}"
                ) from error
            records.append(record_from_json(payload))
    return records
