"""End-to-end progressive dataset synthesizer (paper §6, Figure 7).

Pipeline: AST-based generation → dataflow-specific generation →
LLM-style mutation, each profiled through the EDA substrate under a
sweep of hardware mapping parameters, then formatted directly or with
reasoning fragments.  The paper's training mix is ~30% AST-based, ~50%
dataflow-specific, ~20% LLM-generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import DatasetError, SimulationError
from ..hls import HardwareParams
from ..lang import ast
from ..profiler import Profiler, StaticProfileCache
from .astgen import AstGenConfig, AstGenerator
from .dataflowgen import DataflowGenConfig, DataflowGraphGenerator
from .formatting import DatasetRecord, direct_format, reasoning_format
from .llmgen import LLMStyleMutator


@dataclass(frozen=True)
class SynthesizerConfig:
    """Composition and sweep configuration."""

    n_ast: int = 12
    n_dataflow: int = 20
    n_llm: int = 8
    memory_delays: tuple[int, ...] = (10, 5, 2)
    reasoning_fraction: float = 0.3
    scalar_base: int = 8
    max_steps: int = 800_000
    seed: int = 0
    # Simulation backend used while profiling generated programs; the
    # backends produce identical labels (tests/test_sim_compiler.py).
    backend: str = "compiled"
    # Bounds for the AST stage.  None = the default generator; ablations
    # can pass e.g. shallow bounds (max_loop_depth=1) to reproduce the
    # paper's characterization of naive synthetic datasets (§2).
    ast_config: Optional[AstGenConfig] = None

    @property
    def total(self) -> int:
        return self.n_ast + self.n_dataflow + self.n_llm


@dataclass
class SynthesizedDataset:
    """Records plus composition statistics."""

    records: list[DatasetRecord] = field(default_factory=list)
    skipped: int = 0

    def composition(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.source_kind] = counts.get(record.source_kind, 0) + 1
        return counts

    def training_examples(
        self, reasoning_fraction: float = 0.0, rng: Optional[np.random.Generator] = None
    ):
        """Format records into training examples; a fraction get the
        reasoning (``<think>``) format."""
        rng = rng or np.random.default_rng(0)
        examples = []
        for record in self.records:
            if rng.random() < reasoning_fraction:
                examples.append(reasoning_format(record))
            else:
                examples.append(direct_format(record))
        return examples


class DatasetSynthesizer:
    """Generates, profiles and formats progressive training data."""

    def __init__(self, config: Optional[SynthesizerConfig] = None) -> None:
        self.config = config or SynthesizerConfig()
        seed = self.config.seed
        self._rng = np.random.default_rng(seed)
        self._ast_gen = AstGenerator(
            self.config.ast_config or AstGenConfig(), seed=seed + 1
        )
        self._flow_gen = DataflowGraphGenerator(DataflowGenConfig(), seed=seed + 2)
        self._mutator = LLMStyleMutator(seed=seed + 3)
        # Generated programs are mostly unique, but mutation retries and
        # the hardware-parameter sweep revisit (program, params) pairs;
        # one synthesizer-local cache absorbs those repeats.
        self._static_cache = StaticProfileCache()

    # -- profiling -----------------------------------------------------------

    def _profile(
        self,
        program: ast.Program,
        params: HardwareParams,
        data: Optional[dict],
        kind: str,
        dataset: SynthesizedDataset,
    ) -> Optional[DatasetRecord]:
        profiler = Profiler(
            params,
            max_steps=self.config.max_steps,
            backend=self.config.backend,
            static_cache=self._static_cache,
        )
        try:
            report = profiler.profile(program, data=data, rng=self._rng)
        except SimulationError:
            dataset.skipped += 1
            return None
        record = DatasetRecord(
            program=program, params=params, data=data, report=report, source_kind=kind
        )
        dataset.records.append(record)
        return record

    def _random_params(self) -> HardwareParams:
        delay = int(self._rng.choice(self.config.memory_delays))
        return HardwareParams(mem_read_delay=delay, mem_write_delay=delay)

    def _random_data(self, program: ast.Program) -> Optional[dict]:
        """Scalar runtime inputs within ±50% of the configured base."""
        top = program.function(program.function_names[-1])
        data: dict = {}
        base = self.config.scalar_base
        for param in top.params:
            if not param.type.is_array:
                low = max(1, base // 2)
                high = max(low + 1, base + base // 2)
                data[param.name] = int(self._rng.integers(low, high + 1))
        return data or None

    # -- generation ---------------------------------------------------------------

    def generate(self) -> SynthesizedDataset:
        """Run the full progressive pipeline."""
        dataset = SynthesizedDataset()
        # Stage 1: AST-based (general) programs.
        while sum(1 for r in dataset.records if r.source_kind == "ast") < self.config.n_ast:
            program = self._ast_gen.generate_program(
                n_operators=int(self._rng.integers(1, 3))
            )
            self._profile(
                program, self._random_params(), self._random_data(program), "ast", dataset
            )
            if dataset.skipped > 4 * self.config.total:
                raise DatasetError("too many generation failures in AST stage")
        # Stage 2: dataflow-specific programs.
        flow_programs: list[ast.Program] = []
        while (
            sum(1 for r in dataset.records if r.source_kind == "dataflow")
            < self.config.n_dataflow
        ):
            program, _ = self._flow_gen.generate_program()
            record = self._profile(
                program, self._random_params(), self._random_data(program), "dataflow", dataset
            )
            if record is not None:
                flow_programs.append(program)
            if dataset.skipped > 4 * self.config.total:
                raise DatasetError("too many generation failures in dataflow stage")
        # Stage 3: LLM-style mutations of stage-2 programs.
        attempts = 0
        while (
            sum(1 for r in dataset.records if r.source_kind == "llm") < self.config.n_llm
            and attempts < 8 * self.config.n_llm
        ):
            attempts += 1
            base = flow_programs[int(self._rng.integers(len(flow_programs)))]
            result = self._mutator.mutate(base)
            if not result.changed:
                continue
            self._profile(
                result.program,
                self._random_params(),
                self._random_data(result.program),
                "llm",
                dataset,
            )
        return dataset
