"""Progressive data formatting (paper §6.2).

Two formats:

* **Direct** — ``[graph][op][params][data] → targets`` (efficient,
  end-to-end).
* **Reasoning** — the same plus a ``<think>`` fragment carrying
  RTL-level intermediate features (module counts, mux counts, …)
  extracted by the HLS substitute, mirroring Figures 8/9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..core.inputs import bundle_from_program, class_i_segments
from ..core.trainer import TrainingExample
from ..hls import HardwareParams
from ..lang import ast
from ..profiler import ProfileReport


@dataclass
class DatasetRecord:
    """One profiled program ready for formatting."""

    program: ast.Program
    params: HardwareParams
    data: Optional[dict[str, Any]]
    report: ProfileReport
    source_kind: str  # "ast", "dataflow", "llm", "external"


def direct_format(record: DatasetRecord) -> TrainingExample:
    """Direct data format: input text → profiled targets."""
    bundle = bundle_from_program(
        record.program, params=record.params, data=record.data
    )
    return TrainingExample(
        bundle=bundle,
        targets=record.report.costs.as_dict(),
        class_i_segments=tuple(class_i_segments(record.program)),
    )


def reasoning_format(record: DatasetRecord) -> TrainingExample:
    """Reasoning data format: ``[P, R, C]`` with RTL features in
    ``<think>`` tags (the encapsulated reasoning fragments)."""
    bundle = bundle_from_program(
        record.program,
        params=record.params,
        data=record.data,
        think_text=record.report.rtl.think_text(),
    )
    return TrainingExample(
        bundle=bundle,
        targets=record.report.costs.as_dict(),
        class_i_segments=tuple(class_i_segments(record.program)),
    )


def render_reasoning_text(record: DatasetRecord) -> str:
    """Full textual rendering of the reasoning format (Figure 9)."""
    bundle = bundle_from_program(record.program, record.params, record.data)
    costs = record.report.costs
    return (
        f"{bundle.graph_text}\n"
        + "\n".join(bundle.op_texts)
        + "\n<think>\n"
        + record.report.rtl.think_text()
        + "\n</think>\n"
        + f"<Power>{costs.power_uw}</Power>"
        + f"<Area>{costs.area_um2}</Area>"
        + f"<FF>{costs.flip_flops}</FF>"
        + f"<Cycles>{costs.cycles}</Cycles>"
    )


def render_direct_text(record: DatasetRecord) -> str:
    """Full textual rendering of the direct format (Figure 10)."""
    bundle = bundle_from_program(record.program, record.params, record.data)
    costs = record.report.costs
    return (
        f"{bundle.graph_text}\n"
        + "\n".join(bundle.op_texts)
        + f"\n<Power>{costs.power_uw}</Power>"
        + f"<Area>{costs.area_um2}</Area>"
        + f"<FF>{costs.flip_flops}</FF>"
        + f"<Cycles>{costs.cycles}</Cycles>"
    )
