"""Progressive dataset synthesizer (paper Section 6)."""

from .astgen import AstGenConfig, AstGenerator, wrap_in_dataflow
from .dataflowgen import (
    DYNAMIC_TEMPLATES,
    DataflowGenConfig,
    DataflowGraphGenerator,
    DataflowOperatorGenerator,
    GeneratedOperator,
    TEMPLATES,
)
from .formatting import (
    DatasetRecord,
    direct_format,
    reasoning_format,
    render_direct_text,
    render_reasoning_text,
)
from .llmgen import LLMStyleMutator, MUTATIONS, MutationResult
from .synthesizer import DatasetSynthesizer, SynthesizedDataset, SynthesizerConfig

__all__ = [
    "AstGenerator",
    "AstGenConfig",
    "wrap_in_dataflow",
    "DataflowOperatorGenerator",
    "DataflowGraphGenerator",
    "DataflowGenConfig",
    "GeneratedOperator",
    "TEMPLATES",
    "DYNAMIC_TEMPLATES",
    "LLMStyleMutator",
    "MutationResult",
    "MUTATIONS",
    "DatasetRecord",
    "direct_format",
    "reasoning_format",
    "render_direct_text",
    "render_reasoning_text",
    "DatasetSynthesizer",
    "SynthesizedDataset",
    "SynthesizerConfig",
]
