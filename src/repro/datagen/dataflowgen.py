"""Dataflow-specific generation (paper §6.1, second stage).

Operators are modeled as loop trees over array access patterns (the
tree-based generation adapted from Tileflow-style loop modeling): a
template fixes the access pattern, then loop order, step sizes, bounds
and mapping pragmas are mutated within ranges.  A graph generator
composes operators into producer→consumer chains, and input-dependent
control flow is introduced through scalar loop bounds and data-driven
branches, with scalars iterated within ±50% of their base value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..lang import ast

TEMPLATES = (
    "elementwise",
    "reduction",
    "stencil1d",
    "matmul",
    "transpose",
    "dynamic_bound",
    "data_branch",
    "pool2d",
)

# Templates whose control flow depends on runtime input.
DYNAMIC_TEMPLATES = ("dynamic_bound", "data_branch")


@dataclass(frozen=True)
class DataflowGenConfig:
    """Mutation ranges for dataflow-specific generation."""

    dim: int = 8
    min_bound: int = 4
    max_bound: int = 12
    # Up to 8 operators per graph: the Table-2 applications span 5-21
    # operator instances, and graph width is what stretches the static
    # label range (area/power add roughly per operator).
    max_operators: int = 8
    pragma_probability: float = 0.35
    parallel_probability: float = 0.15
    interchange_probability: float = 0.5
    dynamic_fraction: float = 0.35


@dataclass
class GeneratedOperator:
    """One generated operator with metadata for graph composition."""

    function: ast.FunctionDef
    template: str
    reads: list[str] = field(default_factory=list)
    writes: list[str] = field(default_factory=list)
    has_scalar: bool = False

    @property
    def is_dynamic(self) -> bool:
        return self.template in DYNAMIC_TEMPLATES


def _int(value: int) -> ast.IntLit:
    return ast.IntLit(value)


def _for(var: str, bound: ast.Expr, body: list[ast.Stmt], step: int = 1) -> ast.For:
    return ast.For(
        init=ast.Decl(type=ast.Type(base="int"), name=var, init=_int(0)),
        cond=ast.BinOp(op="<", left=ast.Var(var), right=bound),
        step=ast.Assign(target=ast.Var(var), op="+=", value=_int(step)),
        body=ast.Block(stmts=body),
    )


def _idx(name: str, *vars_: str) -> ast.Index:
    return ast.Index(base=ast.Var(name), indices=[ast.Var(v) for v in vars_])


class DataflowOperatorGenerator:
    """Generates operators from loop-tree templates with mutations."""

    def __init__(
        self, config: Optional[DataflowGenConfig] = None, seed: int = 0
    ) -> None:
        self.config = config or DataflowGenConfig()
        self._rng = np.random.default_rng(seed)
        self._counter = 0

    def _fresh_name(self, template: str) -> str:
        self._counter += 1
        return f"{template}_{self._counter}"

    def _bound(self) -> int:
        return int(
            self._rng.integers(self.config.min_bound, self.config.max_bound + 1)
        )

    def _maybe_pragmas(self, loop: ast.For) -> ast.For:
        rng = self._rng
        if rng.random() < self.config.pragma_probability:
            factor = int(rng.choice([2, 4, 0]))
            loop.pragmas.append(ast.Pragma(kind="unroll", factor=factor))
        if rng.random() < self.config.parallel_probability:
            loop.pragmas.append(ast.Pragma(kind="parallel"))
        return loop

    # -- templates -----------------------------------------------------------

    def generate(self, template: Optional[str] = None) -> GeneratedOperator:
        """Generate one operator, optionally from a named template."""
        rng = self._rng
        if template is None:
            if rng.random() < self.config.dynamic_fraction:
                template = str(rng.choice(DYNAMIC_TEMPLATES))
            else:
                static = [t for t in TEMPLATES if t not in DYNAMIC_TEMPLATES]
                template = str(rng.choice(static))
        builder = getattr(self, f"_build_{template}")
        return builder()

    def _build_elementwise(self) -> GeneratedOperator:
        dim = self.config.dim
        name = self._fresh_name("ew")
        scale = float(np.round(self._rng.uniform(0.5, 4.0), 1))
        op = str(self._rng.choice(["*", "+", "-"]))
        body = [
            ast.Assign(
                target=_idx("dst", "i", "j"),
                op="=",
                value=ast.BinOp(op=op, left=_idx("src", "i", "j"), right=ast.FloatLit(scale)),
            )
        ]
        inner = self._maybe_pragmas(_for("j", _int(dim), body, step=int(self._rng.choice([1, 2]))))
        outer = _for("i", _int(dim), [inner])
        func = ast.FunctionDef(
            return_type=ast.Type(base="void"),
            name=name,
            params=[
                ast.ParamDecl(ast.Type("float", [_int(dim), _int(dim)]), "src"),
                ast.ParamDecl(ast.Type("float", [_int(dim), _int(dim)]), "dst"),
            ],
            body=ast.Block(stmts=[outer]),
        )
        return GeneratedOperator(func, "elementwise", reads=["src"], writes=["dst"])

    def _build_reduction(self) -> GeneratedOperator:
        dim = self.config.dim
        name = self._fresh_name("red")
        body = [
            ast.Assign(
                target=ast.Var("acc"),
                op="+=",
                value=_idx("src", "i", "j"),
            )
        ]
        inner = self._maybe_pragmas(_for("j", _int(dim), body))
        outer = _for("i", _int(dim), [inner])
        store = ast.Assign(target=_idx("dst", "i"), op="=", value=ast.Var("acc"))
        outer.body.stmts.append(store)
        func = ast.FunctionDef(
            return_type=ast.Type(base="void"),
            name=name,
            params=[
                ast.ParamDecl(ast.Type("float", [_int(dim), _int(dim)]), "src"),
                ast.ParamDecl(ast.Type("float", [_int(dim)]), "dst"),
            ],
            body=ast.Block(
                stmts=[
                    ast.Decl(ast.Type("float"), "acc", ast.FloatLit(0.0)),
                    outer,
                ]
            ),
        )
        return GeneratedOperator(func, "reduction", reads=["src"], writes=["dst"])

    def _build_stencil1d(self) -> GeneratedOperator:
        dim = self.config.dim * self.config.dim
        name = self._fresh_name("sten")
        left = ast.Index(
            base=ast.Var("src"),
            indices=[ast.BinOp(op="-", left=ast.Var("i"), right=_int(1))],
        )
        mid = _idx("src", "i")
        right = ast.Index(
            base=ast.Var("src"),
            indices=[ast.BinOp(op="+", left=ast.Var("i"), right=_int(1))],
        )
        value = ast.BinOp(op="+", left=ast.BinOp(op="+", left=left, right=mid), right=right)
        body = [ast.Assign(target=_idx("dst", "i"), op="=", value=value)]
        loop = self._maybe_pragmas(_for("i", _int(dim), body))
        func = ast.FunctionDef(
            return_type=ast.Type(base="void"),
            name=name,
            params=[
                ast.ParamDecl(ast.Type("float", [_int(dim)]), "src"),
                ast.ParamDecl(ast.Type("float", [_int(dim)]), "dst"),
            ],
            body=ast.Block(stmts=[loop]),
        )
        return GeneratedOperator(func, "stencil1d", reads=["src"], writes=["dst"])

    def _build_matmul(self) -> GeneratedOperator:
        dim = self.config.dim
        name = self._fresh_name("mm")
        update = ast.Assign(
            target=_idx("dst", "i", "j"),
            op="+=",
            value=ast.BinOp(op="*", left=_idx("src", "i", "k"), right=_idx("wgt", "k", "j")),
        )
        k_loop = self._maybe_pragmas(_for("k", _int(dim), [update]))
        j_loop = _for("j", _int(dim), [k_loop])
        i_loop = _for("i", _int(dim), [j_loop])
        loops = [i_loop, j_loop, k_loop]
        if self._rng.random() < self.config.interchange_probability:
            # Loop interchange mutation: swap the two outer loop variables.
            loops[0].init.name, loops[1].init.name = loops[1].init.name, loops[0].init.name
            loops[0].cond.left.name, loops[1].cond.left.name = (
                loops[1].cond.left.name,
                loops[0].cond.left.name,
            )
            loops[0].step.target.name, loops[1].step.target.name = (
                loops[1].step.target.name,
                loops[0].step.target.name,
            )
        func = ast.FunctionDef(
            return_type=ast.Type(base="void"),
            name=name,
            params=[
                ast.ParamDecl(ast.Type("float", [_int(dim), _int(dim)]), "src"),
                ast.ParamDecl(ast.Type("float", [_int(dim), _int(dim)]), "wgt"),
                ast.ParamDecl(ast.Type("float", [_int(dim), _int(dim)]), "dst"),
            ],
            body=ast.Block(stmts=[i_loop]),
        )
        return GeneratedOperator(func, "matmul", reads=["src", "wgt"], writes=["dst"])

    def _build_transpose(self) -> GeneratedOperator:
        dim = self.config.dim
        name = self._fresh_name("tr")
        body = [ast.Assign(target=_idx("dst", "j", "i"), op="=", value=_idx("src", "i", "j"))]
        inner = self._maybe_pragmas(_for("j", _int(dim), body))
        outer = _for("i", _int(dim), [inner])
        func = ast.FunctionDef(
            return_type=ast.Type(base="void"),
            name=name,
            params=[
                ast.ParamDecl(ast.Type("float", [_int(dim), _int(dim)]), "src"),
                ast.ParamDecl(ast.Type("float", [_int(dim), _int(dim)]), "dst"),
            ],
            body=ast.Block(stmts=[outer]),
        )
        return GeneratedOperator(func, "transpose", reads=["src"], writes=["dst"])

    def _build_pool2d(self) -> GeneratedOperator:
        dim = self.config.dim
        name = self._fresh_name("pool")
        window = int(self._rng.choice([2, 4]))
        acc_update = ast.Assign(
            target=ast.Var("acc"),
            op="+=",
            value=ast.Index(
                base=ast.Var("src"),
                indices=[
                    ast.BinOp(op="+", left=ast.Var("i"), right=ast.Var("u")),
                    ast.Var("j"),
                ],
            ),
        )
        u_loop = _for("u", _int(window), [acc_update])
        body = [
            ast.Assign(target=ast.Var("acc"), op="=", value=ast.FloatLit(0.0)),
            u_loop,
            ast.Assign(
                target=_idx("dst", "i", "j"),
                op="=",
                value=ast.BinOp(op="/", left=ast.Var("acc"), right=ast.FloatLit(float(window))),
            ),
        ]
        inner = self._maybe_pragmas(_for("j", _int(dim), body))
        outer = _for("i", _int(dim), [inner], step=window)
        func = ast.FunctionDef(
            return_type=ast.Type(base="void"),
            name=name,
            params=[
                ast.ParamDecl(ast.Type("float", [_int(dim), _int(dim)]), "src"),
                ast.ParamDecl(ast.Type("float", [_int(dim), _int(dim)]), "dst"),
            ],
            body=ast.Block(
                stmts=[ast.Decl(ast.Type("float"), "acc", ast.FloatLit(0.0)), outer]
            ),
        )
        return GeneratedOperator(func, "pool2d", reads=["src"], writes=["dst"])

    def _build_dynamic_bound(self) -> GeneratedOperator:
        """Sliding-window style operator: loop bound is a runtime scalar."""
        dim = self.config.dim
        name = self._fresh_name("dyn")
        body = [
            ast.Assign(
                target=_idx("dst", "i", "j"),
                op="=",
                value=ast.BinOp(op="+", left=_idx("src", "i", "j"), right=ast.FloatLit(1.0)),
            )
        ]
        inner = self._maybe_pragmas(_for("j", ast.Var("w"), body))
        outer = _for("i", ast.Var("h"), [inner])
        func = ast.FunctionDef(
            return_type=ast.Type(base="void"),
            name=name,
            params=[
                ast.ParamDecl(ast.Type("float", [_int(dim), _int(dim)]), "src"),
                ast.ParamDecl(ast.Type("float", [_int(dim), _int(dim)]), "dst"),
                ast.ParamDecl(ast.Type("int"), "h"),
                ast.ParamDecl(ast.Type("int"), "w"),
            ],
            body=ast.Block(stmts=[outer]),
        )
        return GeneratedOperator(
            func, "dynamic_bound", reads=["src"], writes=["dst"], has_scalar=True
        )

    def _build_data_branch(self) -> GeneratedOperator:
        """ReLU/threshold style operator: branch steered by array data."""
        dim = self.config.dim
        name = self._fresh_name("br")
        threshold = float(np.round(self._rng.uniform(-1.0, 1.0), 1))
        then = ast.Block(
            stmts=[
                ast.Assign(
                    target=_idx("dst", "i", "j"),
                    op="=",
                    value=ast.BinOp(op="*", left=_idx("src", "i", "j"), right=ast.FloatLit(2.0)),
                )
            ]
        )
        other = ast.Block(
            stmts=[ast.Assign(target=_idx("dst", "i", "j"), op="=", value=ast.FloatLit(0.0))]
        )
        branch = ast.If(
            cond=ast.BinOp(op=">", left=_idx("src", "i", "j"), right=ast.FloatLit(threshold)),
            then=then,
            other=other,
        )
        inner = self._maybe_pragmas(_for("j", _int(dim), [branch]))
        outer = _for("i", _int(dim), [inner])
        func = ast.FunctionDef(
            return_type=ast.Type(base="void"),
            name=name,
            params=[
                ast.ParamDecl(ast.Type("float", [_int(dim), _int(dim)]), "src"),
                ast.ParamDecl(ast.Type("float", [_int(dim), _int(dim)]), "dst"),
            ],
            body=ast.Block(stmts=[outer]),
        )
        return GeneratedOperator(func, "data_branch", reads=["src"], writes=["dst"])


class DataflowGraphGenerator:
    """Composes generated operators into producer→consumer programs."""

    def __init__(
        self, config: Optional[DataflowGenConfig] = None, seed: int = 0
    ) -> None:
        self.config = config or DataflowGenConfig()
        self._rng = np.random.default_rng(seed)
        self._op_gen = DataflowOperatorGenerator(self.config, seed=seed + 1)

    def generate_program(
        self, n_operators: Optional[int] = None
    ) -> tuple[ast.Program, list[GeneratedOperator]]:
        """A chained dataflow program plus its operator metadata.

        Operators are chained on 2-D buffers where signatures allow;
        incompatible operators receive fresh top-level arrays.  The
        operator *order* is randomly permuted (the paper's "randomly
        changes operator parameters and their order").
        """
        rng = self._rng
        count = n_operators or int(rng.integers(2, self.config.max_operators + 1))
        operators = [self._op_gen.generate() for _ in range(count)]
        rng.shuffle(operators)
        dim = self.config.dim
        top_params: list[ast.ParamDecl] = [
            ast.ParamDecl(ast.Type("float", [_int(dim), _int(dim)]), "input0")
        ]
        calls: list[ast.Stmt] = []
        chain_array = "input0"
        buffer_index = 0
        scalar_names: list[str] = []
        for op in operators:
            args: list[ast.Expr] = []
            produced: Optional[str] = None
            for param in op.function.params:
                if not param.type.is_array:
                    scalar = f"n{len(scalar_names)}"
                    scalar_names.append(scalar)
                    top_params.append(ast.ParamDecl(ast.Type("int"), scalar))
                    args.append(ast.Var(scalar))
                    continue
                is_2d_square = (
                    param.type.rank == 2
                    and all(
                        isinstance(d, ast.IntLit) and d.value == dim
                        for d in param.type.dims
                    )
                )
                if param.name in op.reads and is_2d_square:
                    args.append(ast.Var(chain_array))
                elif param.name in op.writes and is_2d_square:
                    produced = f"buf{buffer_index}"
                    buffer_index += 1
                    top_params.append(
                        ast.ParamDecl(ast.Type("float", [_int(dim), _int(dim)]), produced)
                    )
                    args.append(ast.Var(produced))
                else:
                    fresh = f"aux{buffer_index}"
                    buffer_index += 1
                    top_params.append(ast.ParamDecl(param.type, fresh))
                    args.append(ast.Var(fresh))
            calls.append(
                ast.ExprStmt(expr=ast.CallExpr(name=op.function.name, args=args))
            )
            if produced is not None:
                chain_array = produced
        top = ast.FunctionDef(
            return_type=ast.Type(base="void"),
            name="dataflow",
            params=top_params,
            body=ast.Block(stmts=calls),
        )
        program = ast.Program(functions=[*[op.function for op in operators], top])
        return program, operators

    def scalar_sweep(self, base: int = 8) -> list[int]:
        """Runtime scalar values within ±50% of *base* (paper §6.1)."""
        low = max(1, int(base * 0.5))
        high = max(low + 1, int(base * 1.5))
        return sorted(set(int(v) for v in self._rng.integers(low, high + 1, size=3)))
