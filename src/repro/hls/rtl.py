"""RTL-level feature extraction (Bambu/SiliconCompiler substitute).

Produces the intermediate compilation features the paper's reasoning
data format exposes inside ``<think>`` tags (Figure 8): module counts,
multiplexer counts, performance conflicts and estimated resource areas.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import ast
from .allocation import AllocationResult, allocate_program
from .params import HardwareParams

# Rough per-unit area contributions used for the *estimated* (pre-layout)
# resource report.  Final areas come from repro.asicflow.
_UNIT_AREA = {
    "int_adders": 32.0,
    "int_multipliers": 240.0,
    "int_dividers": 700.0,
    "fp_adders": 380.0,
    "fp_multipliers": 1150.0,
    "fp_dividers": 3400.0,
    "comparators": 18.0,
    "logic_units": 12.0,
}

MUX21_AREA = 11.2


@dataclass
class RtlFeatures:
    """The feature bundle SiliconCompiler-style extraction reports."""

    modules_instantiated: int
    performance_conflicts: int
    estimated_resource_area: int
    mux21_area: float
    allocated_multiplexers: int
    register_count: int
    memory_words: int
    functional_units: int

    def think_text(self) -> str:
        """Render as the paper's ``<think>`` reasoning fragment."""
        return (
            f"Number of modules instantiated: {self.modules_instantiated}\n"
            f"Number of performance conflicts: {self.performance_conflicts}\n"
            f"Estimated resources area: {self.estimated_resource_area}\n"
            f"Estimated area of MUX21: {self.mux21_area:.1f}\n"
            f"Number of allocated multiplexers: {self.allocated_multiplexers}"
        )


def _count_conflicts(program: ast.Program, params: HardwareParams) -> int:
    """Performance conflicts: concurrent memory accesses competing for
    the configured number of ports, summed over loop bodies."""
    conflicts = 0
    for func in program.functions:
        for loop in ast.loops_in(func.body):
            accesses = sum(
                1 for node in ast.walk(loop.body) if isinstance(node, ast.Index)
            )
            lanes = max(1, loop.unroll_factor) * (2 if loop.is_parallel else 1)
            concurrent = accesses * lanes
            if concurrent > params.memory_ports:
                conflicts += concurrent - params.memory_ports
    return conflicts


def extract_rtl_features(
    program: ast.Program,
    params: HardwareParams | None = None,
    allocation: AllocationResult | None = None,
) -> RtlFeatures:
    """Extract RTL-level reasoning features for *program*."""
    params = params or HardwareParams()
    allocation = allocation or allocate_program(program)
    total = allocation.total
    area = 0.0
    for field_name, unit_area in _UNIT_AREA.items():
        area += getattr(total, field_name) * unit_area
    area += total.multiplexers * MUX21_AREA
    return RtlFeatures(
        modules_instantiated=total.module_instances,
        performance_conflicts=_count_conflicts(program, params),
        estimated_resource_area=int(round(area)),
        mux21_area=total.multiplexers * MUX21_AREA,
        allocated_multiplexers=total.multiplexers,
        register_count=total.registers,
        memory_words=total.memory_words,
        functional_units=total.functional_units,
    )
