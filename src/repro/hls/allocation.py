"""HLS resource allocation (Bambu substitute, part 1).

Walks the AST and decides which functional units, multiplexers and
registers a straight-forward HLS flow would instantiate.  Unroll pragmas
duplicate datapath resources; parallel pragmas duplicate whole PE lanes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang import ast


@dataclass
class ResourceCounts:
    """Functional-unit and storage counts for one function."""

    int_adders: int = 0
    int_multipliers: int = 0
    int_dividers: int = 0
    fp_adders: int = 0
    fp_multipliers: int = 0
    fp_dividers: int = 0
    comparators: int = 0
    logic_units: int = 0
    multiplexers: int = 0
    registers: int = 0
    memory_words: int = 0
    module_instances: int = 0

    def merge(self, other: "ResourceCounts") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def scaled(self, factor: int) -> "ResourceCounts":
        result = ResourceCounts()
        for name in self.__dataclass_fields__:
            setattr(result, name, getattr(self, name) * factor)
        return result

    @property
    def functional_units(self) -> int:
        return (
            self.int_adders
            + self.int_multipliers
            + self.int_dividers
            + self.fp_adders
            + self.fp_multipliers
            + self.fp_dividers
            + self.comparators
            + self.logic_units
        )


@dataclass
class AllocationResult:
    """Per-function and total resource allocation of a program."""

    per_function: dict[str, ResourceCounts] = field(default_factory=dict)
    total: ResourceCounts = field(default_factory=ResourceCounts)


class _FunctionAllocator:
    """Allocates resources for one function."""

    def __init__(self, func: ast.FunctionDef, float_context: bool) -> None:
        self._func = func
        self._scalar_types: dict[str, str] = {}
        self._default_float = float_context
        for param in func.params:
            self._scalar_types[param.name] = param.type.base

    def _expr_is_float(self, expr: ast.Expr) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.FloatLit):
                return True
            if isinstance(node, ast.Var):
                if self._scalar_types.get(node.name) == "float":
                    return True
            if isinstance(node, ast.Index):
                if self._scalar_types.get(node.base.name) == "float":
                    return True
        return False

    def _count_expr(self, expr: ast.Expr, counts: ResourceCounts) -> None:
        is_float = self._expr_is_float(expr)
        for node in ast.walk(expr):
            if isinstance(node, ast.BinOp):
                if node.op in ("+", "-"):
                    if is_float:
                        counts.fp_adders += 1
                    else:
                        counts.int_adders += 1
                elif node.op == "*":
                    if is_float:
                        counts.fp_multipliers += 1
                    else:
                        counts.int_multipliers += 1
                elif node.op in ("/", "%"):
                    if is_float:
                        counts.fp_dividers += 1
                    else:
                        counts.int_dividers += 1
                elif node.op in ("<", ">", "<=", ">=", "==", "!="):
                    counts.comparators += 1
                else:
                    counts.logic_units += 1
            elif isinstance(node, ast.UnaryOp):
                counts.logic_units += 1
            elif isinstance(node, ast.Index):
                # Each distinct access needs address generation (adder)
                # and a port mux.
                counts.int_adders += max(0, len(node.indices) - 1)
                counts.multiplexers += 1
            elif isinstance(node, ast.Ternary):
                counts.multiplexers += 1
            elif isinstance(node, ast.CallExpr):
                counts.module_instances += 1

    def _array_words(self, type_: ast.Type) -> int:
        words = 1
        for dim in type_.dims:
            if isinstance(dim, ast.IntLit):
                words *= max(1, dim.value)
            else:
                words *= 64  # unsized dimension: assume a default bank
        return words

    def _count_stmts(self, stmts: list[ast.Stmt]) -> ResourceCounts:
        counts = ResourceCounts()
        for stmt in stmts:
            if isinstance(stmt, ast.For):
                body = self._count_stmts(stmt.body.stmts)
                # Loop control: induction register, comparator, adder.
                body.registers += 1
                body.comparators += 1
                body.int_adders += 1
                factor = stmt.unroll_factor
                if factor == 0:
                    factor = _static_trip_count(stmt, default=8)
                factor = max(1, min(factor, 64))
                body = body.scaled(factor)
                if stmt.is_parallel:
                    body = body.scaled(2)
                    body.multiplexers += 2
                counts.merge(body)
            elif isinstance(stmt, ast.While):
                body = self._count_stmts(stmt.body.stmts)
                body.comparators += 1
                body.registers += 1
                counts.merge(body)
                self._count_expr(stmt.cond, counts)
            elif isinstance(stmt, ast.If):
                self._count_expr(stmt.cond, counts)
                counts.multiplexers += 1  # join point
                counts.merge(self._count_stmts(stmt.then.stmts))
                if stmt.other is not None:
                    counts.multiplexers += 1
                    counts.merge(self._count_stmts(stmt.other.stmts))
            elif isinstance(stmt, ast.Block):
                counts.merge(self._count_stmts(stmt.stmts))
            elif isinstance(stmt, ast.Decl):
                self._scalar_types[stmt.name] = stmt.type.base
                if stmt.type.is_array:
                    counts.memory_words += self._array_words(stmt.type)
                else:
                    counts.registers += 1
                if stmt.init is not None:
                    self._count_expr(stmt.init, counts)
            elif isinstance(stmt, ast.Assign):
                self._count_expr(stmt.value, counts)
                if isinstance(stmt.target, ast.Index):
                    counts.multiplexers += 1
                    for index in stmt.target.indices:
                        self._count_expr(index, counts)
                else:
                    counts.registers += 1
                if stmt.op != "=":
                    if self._expr_is_float(stmt.target):
                        counts.fp_adders += 1
                    else:
                        counts.int_adders += 1
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                self._count_expr(stmt.value, counts)
            elif isinstance(stmt, ast.ExprStmt):
                self._count_expr(stmt.expr, counts)
        return counts

    def allocate(self) -> ResourceCounts:
        counts = self._count_stmts(self._func.body.stmts)
        counts.module_instances += 1  # the function's own module
        # Parameter registers / port buffers.
        counts.registers += sum(1 for p in self._func.params if not p.type.is_array)
        return counts


def _static_trip_count(loop: ast.For, default: int) -> int:
    if loop.cond is not None and isinstance(loop.cond, ast.BinOp):
        if isinstance(loop.cond.right, ast.IntLit):
            start = 0
            if isinstance(loop.init, ast.Decl) and isinstance(loop.init.init, ast.IntLit):
                start = loop.init.init.value
            step = 1
            if isinstance(loop.step, ast.Assign) and isinstance(loop.step.value, ast.IntLit):
                step = max(1, abs(loop.step.value.value))
            return max(1, (loop.cond.right.value - start) // step)
    return default


def allocate_program(program: ast.Program) -> AllocationResult:
    """Allocate resources for every function in *program*."""
    result = AllocationResult()
    has_float = any(
        isinstance(node, ast.FloatLit)
        for func in program.functions
        for node in ast.walk(func.body)
    )
    for func in program.functions:
        allocator = _FunctionAllocator(func, float_context=has_float)
        counts = allocator.allocate()
        result.per_function[func.name] = counts
        result.total.merge(counts)
    return result
