"""Operation scheduling (Bambu substitute, part 2).

A classic resource-constrained list scheduler over the expression DAG
of a loop body: operations become nodes with datapath latencies, edges
follow data dependences, and each control step admits at most the
configured number of functional units and memory ports.

The scheduler reports the initiation latency of one loop-body iteration
and the per-step resource usage — the quantities an HLS report exposes
and a useful cross-check on the cycle simulator's per-iteration costs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..errors import SchedulingError
from ..lang import ast
from .params import HardwareParams


class OpKind(enum.Enum):
    """Functional-unit class of a scheduled operation."""

    ADD = "add"
    MUL = "mul"
    DIV = "div"
    CMP = "cmp"
    LOGIC = "logic"
    LOAD = "load"
    STORE = "store"


_LATENCY = {
    OpKind.ADD: 1,
    OpKind.MUL: 3,
    OpKind.DIV: 18,
    OpKind.CMP: 1,
    OpKind.LOGIC: 1,
    # Memory latencies come from HardwareParams at schedule time.
}


@dataclass
class Operation:
    """One schedulable operation node."""

    index: int
    kind: OpKind
    deps: list[int] = field(default_factory=list)
    start: int = -1

    def latency(self, params: HardwareParams) -> int:
        if self.kind is OpKind.LOAD:
            return params.mem_read_delay
        if self.kind is OpKind.STORE:
            return params.mem_write_delay
        return _LATENCY[self.kind]


@dataclass(frozen=True)
class ResourceBudget:
    """Units available per control step."""

    adders: int = 2
    multipliers: int = 2
    dividers: int = 1
    comparators: int = 2
    logic_units: int = 2

    def limit_for(self, kind: OpKind, params: HardwareParams) -> int:
        if kind is OpKind.ADD:
            return self.adders
        if kind is OpKind.MUL:
            return self.multipliers
        if kind is OpKind.DIV:
            return self.dividers
        if kind is OpKind.CMP:
            return self.comparators
        if kind is OpKind.LOGIC:
            return self.logic_units
        return params.memory_ports  # LOAD / STORE share the ports


@dataclass
class ScheduleResult:
    """Outcome of scheduling one statement region."""

    operations: list[Operation]
    total_latency: int
    steps_used: int
    resource_pressure: dict[str, int]

    @property
    def ilp(self) -> float:
        """Average instruction-level parallelism achieved."""
        if self.steps_used == 0:
            return 0.0
        return len(self.operations) / self.steps_used


class _DagBuilder:
    """Builds the operation DAG of a statement list."""

    def __init__(self) -> None:
        self.operations: list[Operation] = []
        # Last producer of each scalar name / array name.
        self._producer: dict[str, int] = {}

    def _new_op(self, kind: OpKind, deps: list[int]) -> int:
        op = Operation(index=len(self.operations), kind=kind, deps=deps)
        self.operations.append(op)
        return op.index

    def _visit_expr(self, expr: ast.Expr) -> Optional[int]:
        """Returns the op index producing the expression's value."""
        if isinstance(expr, (ast.IntLit, ast.FloatLit)):
            return None
        if isinstance(expr, ast.Var):
            return self._producer.get(expr.name)
        if isinstance(expr, ast.BinOp):
            deps = []
            for side in (expr.left, expr.right):
                produced = self._visit_expr(side)
                if produced is not None:
                    deps.append(produced)
            if expr.op in ("+", "-"):
                kind = OpKind.ADD
            elif expr.op == "*":
                kind = OpKind.MUL
            elif expr.op in ("/", "%"):
                kind = OpKind.DIV
            elif expr.op in ("<", ">", "<=", ">=", "==", "!="):
                kind = OpKind.CMP
            else:
                kind = OpKind.LOGIC
            return self._new_op(kind, deps)
        if isinstance(expr, ast.UnaryOp):
            deps = []
            produced = self._visit_expr(expr.operand)
            if produced is not None:
                deps.append(produced)
            return self._new_op(OpKind.LOGIC, deps)
        if isinstance(expr, ast.Index):
            deps = []
            for index in expr.indices:
                produced = self._visit_expr(index)
                if produced is not None:
                    deps.append(produced)
            array_producer = self._producer.get(expr.base.name)
            if array_producer is not None:
                deps.append(array_producer)
            return self._new_op(OpKind.LOAD, deps)
        if isinstance(expr, ast.Ternary):
            deps = []
            for part in (expr.cond, expr.then, expr.other):
                produced = self._visit_expr(part)
                if produced is not None:
                    deps.append(produced)
            return self._new_op(OpKind.LOGIC, deps)
        if isinstance(expr, ast.CallExpr):
            raise SchedulingError("cannot schedule function calls inline")
        raise SchedulingError(f"unschedulable expression {type(expr).__name__}")

    def visit_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Assign):
            deps = []
            value_producer = self._visit_expr(stmt.value)
            if value_producer is not None:
                deps.append(value_producer)
            if isinstance(stmt.target, ast.Index):
                for index in stmt.target.indices:
                    produced = self._visit_expr(index)
                    if produced is not None:
                        deps.append(produced)
                if stmt.op != "=":
                    deps.append(self._new_op(OpKind.LOAD, list(deps)))
                    deps.append(self._new_op(OpKind.ADD, [deps[-1]]))
                store = self._new_op(OpKind.STORE, deps)
                self._producer[stmt.target.base.name] = store
            else:
                if stmt.op != "=":
                    previous = self._producer.get(stmt.target.name)
                    add_deps = list(deps)
                    if previous is not None:
                        add_deps.append(previous)
                    deps = [self._new_op(OpKind.ADD, add_deps)]
                self._producer[stmt.target.name] = (
                    deps[-1] if deps else self._new_op(OpKind.LOGIC, [])
                )
        elif isinstance(stmt, ast.Decl):
            if stmt.init is not None:
                produced = self._visit_expr(stmt.init)
                if produced is not None:
                    self._producer[stmt.name] = produced
        elif isinstance(stmt, ast.ExprStmt):
            self._visit_expr(stmt.expr)
        else:
            raise SchedulingError(
                f"list scheduler handles straight-line code only, got "
                f"{type(stmt).__name__}"
            )


def schedule_statements(
    stmts: list[ast.Stmt],
    params: Optional[HardwareParams] = None,
    budget: Optional[ResourceBudget] = None,
) -> ScheduleResult:
    """Resource-constrained list scheduling of straight-line statements."""
    params = params or HardwareParams()
    budget = budget or ResourceBudget()
    builder = _DagBuilder()
    for stmt in stmts:
        builder.visit_stmt(stmt)
    operations = builder.operations
    if not operations:
        return ScheduleResult([], 0, 0, {})
    finish: dict[int, int] = {}
    pending = set(range(len(operations)))
    step = 0
    pressure: dict[str, int] = {}
    guard = 0
    while pending:
        guard += 1
        if guard > 100000:
            raise SchedulingError("scheduler failed to converge")
        used: dict[OpKind, int] = {}
        scheduled_now = []
        for index in sorted(pending):
            op = operations[index]
            if any(dep not in finish or finish[dep] > step for dep in op.deps):
                continue
            limit = budget.limit_for(op.kind, params)
            memory_kind = op.kind in (OpKind.LOAD, OpKind.STORE)
            key = OpKind.LOAD if memory_kind else op.kind
            if used.get(key, 0) >= limit:
                continue
            used[key] = used.get(key, 0) + 1
            op.start = step
            finish[index] = step + op.latency(params)
            scheduled_now.append(index)
        for index in scheduled_now:
            pending.discard(index)
        for kind, count in used.items():
            name = kind.value
            pressure[name] = max(pressure.get(name, 0), count)
        step += 1
    total = max(finish.values())
    return ScheduleResult(
        operations=operations,
        total_latency=total,
        steps_used=step,
        resource_pressure=pressure,
    )


def schedule_innermost_loops(
    func: ast.FunctionDef,
    params: Optional[HardwareParams] = None,
    budget: Optional[ResourceBudget] = None,
) -> dict[str, ScheduleResult]:
    """Schedule every innermost loop body of *func* that is straight-line.

    Returns a mapping from induction-variable name to schedule; bodies
    with control flow are skipped (they are not a single basic block).
    """
    results: dict[str, ScheduleResult] = {}
    for loop in ast.loops_in(func.body):
        has_inner_loop = any(
            isinstance(node, (ast.For, ast.While)) for node in ast.walk(loop.body)
        )
        if has_inner_loop:
            continue
        straight_line = all(
            isinstance(stmt, (ast.Assign, ast.Decl, ast.ExprStmt))
            for stmt in loop.body.stmts
        )
        if not straight_line:
            continue
        var = "<loop>"
        if isinstance(loop.init, ast.Decl):
            var = loop.init.name
        elif isinstance(loop.init, ast.Assign) and isinstance(loop.init.target, ast.Var):
            var = loop.init.target.name
        try:
            results[var] = schedule_statements(loop.body.stmts, params, budget)
        except SchedulingError:
            continue
    return results
