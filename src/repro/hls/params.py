"""Hardware configuration parameters (the ``Params`` of the paper's
input quadruple).

Mirrors the Bambu HLS flags the paper varies (``--mem-delay-read`` /
``--mem-delay-write``) plus the spatial-mapping knobs exercised through
pragmas.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class HardwareParams:
    """Memory and mapping configuration of the target accelerator."""

    mem_read_delay: int = 10
    mem_write_delay: int = 10
    pe_count: int = 4
    memory_ports: int = 2
    clock_period_ns: float = 10.0
    extra: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.mem_read_delay < 1 or self.mem_write_delay < 1:
            raise ValueError("memory delays must be >= 1 cycle")
        if self.pe_count < 1:
            raise ValueError("pe_count must be >= 1")
        if self.memory_ports < 1:
            raise ValueError("memory_ports must be >= 1")

    def describe(self) -> str:
        """Textual form fed to the cost models (Bambu flag style)."""
        return (
            f"-mem-delay-read={self.mem_read_delay} "
            f"-mem-delay-write={self.mem_write_delay} "
            f"-pe-count={self.pe_count} "
            f"-memory-ports={self.memory_ports} "
            f"-clock-period={self.clock_period_ns:g}"
        )

    @classmethod
    def sweep_memory_delays(cls, delays: tuple[int, ...] = (2, 5, 10)) -> list["HardwareParams"]:
        """The memory-delay sweep used by the dataset synthesizer."""
        return [cls(mem_read_delay=d, mem_write_delay=d) for d in delays]


DEFAULT_PARAMS = HardwareParams()
