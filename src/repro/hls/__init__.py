"""HLS frontend (Bambu substitute): allocation and RTL features."""

from .allocation import AllocationResult, ResourceCounts, allocate_program
from .params import DEFAULT_PARAMS, HardwareParams
from .rtl import MUX21_AREA, RtlFeatures, extract_rtl_features
from .scheduling import (
    OpKind,
    Operation,
    ResourceBudget,
    ScheduleResult,
    schedule_innermost_loops,
    schedule_statements,
)

__all__ = [
    "HardwareParams",
    "DEFAULT_PARAMS",
    "ResourceCounts",
    "AllocationResult",
    "allocate_program",
    "RtlFeatures",
    "extract_rtl_features",
    "MUX21_AREA",
    "OpKind",
    "Operation",
    "ResourceBudget",
    "ScheduleResult",
    "schedule_statements",
    "schedule_innermost_loops",
]
