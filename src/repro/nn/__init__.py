"""Minimal numpy autograd + transformer stack (PyTorch substitute)."""

from .attention import NEG_INF, MultiHeadSelfAttention, build_attention_mask
from .layers import (
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    LoRALinear,
    Module,
    ReLU,
    Sequential,
    Tanh,
    mlp,
)
from .optim import Adam, AdamW, Optimizer, SGD
from .schedulers import ConstantLR, CosineDecay, Scheduler, WarmupCosine
from .serialization import load_model, save_model
from .tensor import Tensor, concat, no_grad, stack
from .transformer import TransformerBlock, TransformerConfig, TransformerEncoder

__all__ = [
    "Tensor",
    "concat",
    "no_grad",
    "stack",
    "Module",
    "Linear",
    "LoRALinear",
    "Embedding",
    "LayerNorm",
    "Sequential",
    "ReLU",
    "GELU",
    "Tanh",
    "mlp",
    "MultiHeadSelfAttention",
    "build_attention_mask",
    "NEG_INF",
    "TransformerConfig",
    "TransformerBlock",
    "TransformerEncoder",
    "SGD",
    "Adam",
    "AdamW",
    "Optimizer",
    "Scheduler",
    "ConstantLR",
    "CosineDecay",
    "WarmupCosine",
    "save_model",
    "load_model",
]
