"""Transformer encoder used by the cost models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ModelConfigError
from .attention import MultiHeadSelfAttention, NEG_INF
from .layers import Embedding, GELU, LayerNorm, Linear, Module, Sequential
from .tensor import Tensor


@dataclass(frozen=True)
class TransformerConfig:
    """Size configuration of the encoder.

    The named tiers stand in for the paper's base-model scales
    (Qwen2.5-0.5B / LLaMA-3.2-1B / LLaMA-3.1-8B).
    """

    vocab_size: int
    dim: int = 48
    heads: int = 4
    layers: int = 2
    max_seq_len: int = 512
    ffn_multiplier: int = 2

    def __post_init__(self) -> None:
        if self.dim % self.heads != 0:
            raise ModelConfigError("dim must be divisible by heads")
        if self.layers < 1:
            raise ModelConfigError("need at least one layer")

    @classmethod
    def tier(cls, name: str, vocab_size: int, max_seq_len: int = 512) -> "TransformerConfig":
        """Named scale tiers mirroring the paper's 0.5B/1B/8B sweep."""
        tiers = {
            "0.5B": cls(vocab_size, dim=32, heads=4, layers=1, max_seq_len=max_seq_len),
            "1B": cls(vocab_size, dim=48, heads=4, layers=2, max_seq_len=max_seq_len),
            "8B": cls(vocab_size, dim=96, heads=8, layers=3, max_seq_len=max_seq_len),
        }
        if name not in tiers:
            raise ModelConfigError(f"unknown tier {name!r}; choose from {sorted(tiers)}")
        return tiers[name]


class TransformerBlock(Module):
    """Pre-norm transformer block."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator) -> None:
        self.norm1 = LayerNorm(config.dim)
        self.attn = MultiHeadSelfAttention(config.dim, config.heads, rng=rng)
        self.norm2 = LayerNorm(config.dim)
        hidden = config.dim * config.ffn_multiplier
        self.ffn = Sequential(
            Linear(config.dim, hidden, rng=rng),
            GELU(),
            Linear(hidden, config.dim, rng=rng),
        )

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        x = x + self.attn(self.norm1(x), mask=mask)
        x = x + self.ffn(self.norm2(x))
        return x


class TransformerEncoder(Module):
    """Token + positional embeddings followed by transformer blocks.

    ``encode`` returns per-token hidden states; ``pool`` mean-pools them
    into a sequence embedding for prediction heads.
    """

    def __init__(self, config: TransformerConfig, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.dim, rng=rng)
        self.position_embedding = Embedding(config.max_seq_len, config.dim, rng=rng)
        self.blocks = [TransformerBlock(config, rng) for _ in range(config.layers)]
        self.final_norm = LayerNorm(config.dim)

    def encode(self, token_ids: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 1:
            raise ModelConfigError("encode expects a 1-D token id sequence")
        if len(token_ids) > self.config.max_seq_len:
            token_ids = token_ids[: self.config.max_seq_len]
            if mask is not None:
                limit = self.config.max_seq_len
                mask = mask[:limit, :limit]
        positions = np.arange(len(token_ids))
        x = self.token_embedding(token_ids) + self.position_embedding(positions)
        for block in self.blocks:
            x = block(x, mask=mask)
        return self.final_norm(x)

    def encode_batch(
        self,
        token_ids: np.ndarray,
        padding_mask: Optional[np.ndarray] = None,
        masks: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Encode a padded ``(batch, seq)`` id matrix in one pass.

        ``padding_mask`` is ``(batch, seq)`` with nonzero marking real
        tokens (``None`` = no padding).  ``masks`` is an optional
        additive attention mask broadcastable to ``(batch, seq, seq)``
        (e.g. per-example separation masks placed top-left and
        zero-padded).  Padded key positions are excluded from every
        token's attention, so real positions get the same hidden states
        they would in an unpadded single-sequence ``encode``; padded
        query rows produce garbage that ``pool_batch`` ignores.
        """
        ids = np.asarray(token_ids, dtype=np.int64)
        if ids.ndim != 2:
            raise ModelConfigError("encode_batch expects a (batch, seq) id matrix")
        limit = self.config.max_seq_len
        if ids.shape[1] > limit:
            ids = ids[:, :limit]
            if padding_mask is not None:
                padding_mask = np.asarray(padding_mask)[:, :limit]
            if masks is not None:
                masks = np.asarray(masks)[..., :limit, :limit]
        batch, seq = ids.shape
        attn_mask: Optional[np.ndarray] = None
        if padding_mask is not None:
            real = np.asarray(padding_mask, dtype=np.float64) != 0
            # Block attention *to* padded keys for every query row.
            attn_mask = np.where(real[:, None, None, :], 0.0, float(NEG_INF))
        if masks is not None:
            per_example = np.broadcast_to(
                np.asarray(masks, dtype=np.float64), (batch, seq, seq)
            )[:, None, :, :]
            attn_mask = per_example if attn_mask is None else attn_mask + per_example
        positions = np.arange(seq)
        x = self.token_embedding(ids) + self.position_embedding(positions)
        for block in self.blocks:
            x = block(x, mask=attn_mask)
        return self.final_norm(x)

    def pool(self, hidden: Tensor) -> Tensor:
        return hidden.mean(axis=0)

    def pool_batch(
        self, hidden: Tensor, padding_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        """Padding-aware mean over the sequence axis → ``(batch, dim)``."""
        if padding_mask is None:
            return hidden.mean(axis=1)
        weights = (np.asarray(padding_mask, dtype=np.float64) != 0).astype(np.float64)
        counts = np.maximum(weights.sum(axis=1, keepdims=True), 1.0)
        masked = hidden * Tensor(weights[:, :, None])
        return masked.sum(axis=1) / Tensor(counts)

    def forward(self, token_ids: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
        return self.pool(self.encode(token_ids, mask=mask))
