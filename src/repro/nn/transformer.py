"""Transformer encoder used by the cost models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ModelConfigError
from .attention import MultiHeadSelfAttention
from .layers import Embedding, GELU, LayerNorm, Linear, Module, Sequential
from .tensor import Tensor


@dataclass(frozen=True)
class TransformerConfig:
    """Size configuration of the encoder.

    The named tiers stand in for the paper's base-model scales
    (Qwen2.5-0.5B / LLaMA-3.2-1B / LLaMA-3.1-8B).
    """

    vocab_size: int
    dim: int = 48
    heads: int = 4
    layers: int = 2
    max_seq_len: int = 512
    ffn_multiplier: int = 2

    def __post_init__(self) -> None:
        if self.dim % self.heads != 0:
            raise ModelConfigError("dim must be divisible by heads")
        if self.layers < 1:
            raise ModelConfigError("need at least one layer")

    @classmethod
    def tier(cls, name: str, vocab_size: int, max_seq_len: int = 512) -> "TransformerConfig":
        """Named scale tiers mirroring the paper's 0.5B/1B/8B sweep."""
        tiers = {
            "0.5B": cls(vocab_size, dim=32, heads=4, layers=1, max_seq_len=max_seq_len),
            "1B": cls(vocab_size, dim=48, heads=4, layers=2, max_seq_len=max_seq_len),
            "8B": cls(vocab_size, dim=96, heads=8, layers=3, max_seq_len=max_seq_len),
        }
        if name not in tiers:
            raise ModelConfigError(f"unknown tier {name!r}; choose from {sorted(tiers)}")
        return tiers[name]


class TransformerBlock(Module):
    """Pre-norm transformer block."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator) -> None:
        self.norm1 = LayerNorm(config.dim)
        self.attn = MultiHeadSelfAttention(config.dim, config.heads, rng=rng)
        self.norm2 = LayerNorm(config.dim)
        hidden = config.dim * config.ffn_multiplier
        self.ffn = Sequential(
            Linear(config.dim, hidden, rng=rng),
            GELU(),
            Linear(hidden, config.dim, rng=rng),
        )

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        x = x + self.attn(self.norm1(x), mask=mask)
        x = x + self.ffn(self.norm2(x))
        return x


class TransformerEncoder(Module):
    """Token + positional embeddings followed by transformer blocks.

    ``encode`` returns per-token hidden states; ``pool`` mean-pools them
    into a sequence embedding for prediction heads.
    """

    def __init__(self, config: TransformerConfig, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.dim, rng=rng)
        self.position_embedding = Embedding(config.max_seq_len, config.dim, rng=rng)
        self.blocks = [TransformerBlock(config, rng) for _ in range(config.layers)]
        self.final_norm = LayerNorm(config.dim)

    def encode(self, token_ids: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 1:
            raise ModelConfigError("encode expects a 1-D token id sequence")
        if len(token_ids) > self.config.max_seq_len:
            token_ids = token_ids[: self.config.max_seq_len]
            if mask is not None:
                limit = self.config.max_seq_len
                mask = mask[:limit, :limit]
        positions = np.arange(len(token_ids))
        x = self.token_embedding(token_ids) + self.position_embedding(positions)
        for block in self.blocks:
            x = block(x, mask=mask)
        return self.final_norm(x)

    def pool(self, hidden: Tensor) -> Tensor:
        return hidden.mean(axis=0)

    def forward(self, token_ids: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
        return self.pool(self.encode(token_ids, mask=mask))
