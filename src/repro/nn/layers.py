"""Neural network layers over :class:`repro.nn.tensor.Tensor`."""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..errors import ModelConfigError
from .tensor import Tensor


class Module:
    """Base class: parameter discovery via attribute reflection."""

    def parameters(self) -> Iterator[Tensor]:
        seen: set[int] = set()
        for value in self.__dict__.values():
            yield from _parameters_of(value, seen)

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        seen: set[int] = set()
        for name, value in self.__dict__.items():
            yield from _named_parameters_of(value, f"{prefix}{name}", seen)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def parameter_count(self) -> int:
        return sum(int(np.prod(p.shape)) for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise ModelConfigError(f"missing parameters in state dict: {sorted(missing)}")
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ModelConfigError(
                    f"shape mismatch for {name}: {value.shape} vs {param.data.shape}"
                )
            param.data = value.astype(np.float64).copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


def _parameters_of(value, seen: set[int]) -> Iterator[Tensor]:
    if isinstance(value, Tensor) and value.requires_grad:
        if id(value) not in seen:
            seen.add(id(value))
            yield value
    elif isinstance(value, Module):
        for inner in value.__dict__.values():
            yield from _parameters_of(inner, seen)
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _parameters_of(item, seen)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _parameters_of(item, seen)


def _named_parameters_of(value, prefix: str, seen: set[int]) -> Iterator[tuple[str, Tensor]]:
    if isinstance(value, Tensor) and value.requires_grad:
        if id(value) not in seen:
            seen.add(id(value))
            yield prefix, value
    elif isinstance(value, Module):
        for name, inner in value.__dict__.items():
            yield from _named_parameters_of(inner, f"{prefix}.{name}", seen)
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            yield from _named_parameters_of(item, f"{prefix}.{index}", seen)
    elif isinstance(value, dict):
        for key, item in value.items():
            yield from _named_parameters_of(item, f"{prefix}.{key}", seen)


class Linear(Module):
    """Affine projection ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        scale = 1.0 / np.sqrt(in_features)
        self.weight = Tensor(
            rng.uniform(-scale, scale, size=(in_features, out_features)),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class LoRALinear(Module):
    """Linear layer with a low-rank trainable adapter on a frozen base.

    Mirrors the paper's use of LoRA instead of full fine-tuning to
    mitigate catastrophic forgetting: ``y = x (W + A B · α/r) + b`` with
    ``W`` frozen and only ``A``, ``B`` (and bias) trainable.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rank: int = 4,
        alpha: float = 8.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if rank < 1:
            raise ModelConfigError("LoRA rank must be >= 1")
        rng = rng or np.random.default_rng(0)
        scale = 1.0 / np.sqrt(in_features)
        self.weight = Tensor(
            rng.uniform(-scale, scale, size=(in_features, out_features)),
            requires_grad=False,
        )
        self.lora_a = Tensor(
            rng.standard_normal((in_features, rank)) * 0.02, requires_grad=True
        )
        self.lora_b = Tensor(np.zeros((rank, out_features)), requires_grad=True)
        self.bias = Tensor(np.zeros(out_features), requires_grad=True)
        self.scaling = alpha / rank

    def forward(self, x: Tensor) -> Tensor:
        base = x @ Tensor(self.weight.data)
        adapter = (x @ self.lora_a) @ self.lora_b
        return base + adapter * self.scaling + self.bias

    def merge_adapter(self) -> None:
        """Fold the adapter into the frozen weight (deployment mode)."""
        self.weight.data = (
            self.weight.data + self.lora_a.data @ self.lora_b.data * self.scaling
        )
        self.lora_a.data = np.zeros_like(self.lora_a.data)
        self.lora_b.data = np.zeros_like(self.lora_b.data)


class Embedding(Module):
    """Token embedding table."""

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.weight = Tensor(
            rng.standard_normal((vocab_size, dim)) * 0.02, requires_grad=True
        )
        self.vocab_size = vocab_size

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.vocab_size):
            raise ModelConfigError(
                f"token id out of range [0, {self.vocab_size}): "
                f"[{indices.min()}, {indices.max()}]"
            )
        return self.weight.gather_rows(indices)


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        self.gamma = Tensor(np.ones(dim), requires_grad=True)
        self.beta = Tensor(np.zeros(dim), requires_grad=True)
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        return x.standardize(axis=-1, eps=self.eps) * self.gamma + self.beta


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


def mlp(
    sizes: list[int],
    rng: Optional[np.random.Generator] = None,
    activation: type[Module] = ReLU,
) -> Sequential:
    """Build an MLP with the given layer sizes."""
    if len(sizes) < 2:
        raise ModelConfigError("mlp needs at least input and output sizes")
    rng = rng or np.random.default_rng(0)
    layers: list[Module] = []
    for index, (n_in, n_out) in enumerate(zip(sizes[:-1], sizes[1:])):
        layers.append(Linear(n_in, n_out, rng=rng))
        if index < len(sizes) - 2:
            layers.append(activation())
    return Sequential(*layers)
