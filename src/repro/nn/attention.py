"""Multi-head self-attention with external additive masks.

The mask hook is what the paper's dynamic control-flow separation
(Section 5.2) and prediction acceleration (Section 5.3) plug into: a
``(seq, seq)`` matrix of zeros and ``-inf`` built from operator classes
and segment metadata.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ModelConfigError
from .layers import Linear, Module
from .tensor import Tensor

NEG_INF = -1e9


class MultiHeadSelfAttention(Module):
    """Standard scaled-dot-product self-attention (single sequence)."""

    def __init__(
        self,
        dim: int,
        heads: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if dim % heads != 0:
            raise ModelConfigError(f"dim {dim} not divisible by heads {heads}")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        """Apply attention to ``x`` of shape ``(seq, dim)``.

        ``mask`` is an additive ``(seq, seq)`` array (0 keeps, large
        negative removes an interaction).
        """
        seq, dim = x.shape
        queries = self.q_proj(x)
        keys = self.k_proj(x)
        values = self.v_proj(x)
        outputs = []
        scale = 1.0 / np.sqrt(self.head_dim)
        for head in range(self.heads):
            lo = head * self.head_dim
            hi = lo + self.head_dim
            q = queries[:, lo:hi]
            k = keys[:, lo:hi]
            v = values[:, lo:hi]
            scores = (q @ k.transpose()) * scale
            if mask is not None:
                scores = scores + Tensor(mask)
            attn = scores.softmax(axis=-1)
            outputs.append(attn @ v)
        from .tensor import concat

        merged = concat(outputs, axis=1)
        return self.out_proj(merged)


def build_attention_mask(
    seq_len: int,
    blocked_pairs: list[tuple[slice, slice]],
    symmetric: bool = True,
) -> np.ndarray:
    """Build an additive mask that blocks the given (rows, cols) slices.

    Used by the control-flow separation: pairs of segments whose
    interaction should be severed get ``NEG_INF``.
    """
    mask = np.zeros((seq_len, seq_len))
    for rows, cols in blocked_pairs:
        mask[rows, cols] = NEG_INF
        if symmetric:
            mask[cols, rows] = NEG_INF
    return mask
