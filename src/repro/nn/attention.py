"""Multi-head self-attention with external additive masks.

The mask hook is what the paper's dynamic control-flow separation
(Section 5.2) and prediction acceleration (Section 5.3) plug into: a
``(seq, seq)`` matrix of zeros and ``-inf`` built from operator classes
and segment metadata.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ModelConfigError
from .layers import Linear, Module
from .tensor import Tensor

NEG_INF = -1e9


class MultiHeadSelfAttention(Module):
    """Scaled-dot-product self-attention, vectorized over heads and batch."""

    def __init__(
        self,
        dim: int,
        heads: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if dim % heads != 0:
            raise ModelConfigError(f"dim {dim} not divisible by heads {heads}")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        """Apply attention to ``x`` of shape ``(seq, dim)`` or
        ``(batch, seq, dim)``.

        ``mask`` is an additive array (0 keeps, large negative removes an
        interaction), broadcastable to the ``(batch, heads, seq, seq)``
        score tensor: ``(seq, seq)``, per-example ``(batch, seq, seq)``,
        or a fully explicit 4-D mask.
        """
        single = x.ndim == 2
        if single:
            x = x.reshape(1, *x.shape)
        batch, seq, dim = x.shape
        queries = self.q_proj(x)
        keys = self.k_proj(x)
        values = self.v_proj(x)

        def split_heads(t: Tensor) -> Tensor:
            return t.reshape(batch, seq, self.heads, self.head_dim).transpose(0, 2, 1, 3)

        # Scale folded into q (a (seq, head_dim) pass, not (seq, seq));
        # the additive mask is fused into the softmax.
        q = split_heads(queries) * (1.0 / np.sqrt(self.head_dim))
        k = split_heads(keys)
        v = split_heads(values)
        scores = q @ k.transpose(0, 1, 3, 2)
        add: Optional[np.ndarray] = None
        if mask is not None:
            add = np.asarray(mask, dtype=np.float64)
            if add.ndim == 2:
                add = add[None, None, :, :]
            elif add.ndim == 3:
                add = add[:, None, :, :]
        # In-place is safe: the score tensor is a fresh local whose
        # producer (matmul) backpropagates through q/k, not the scores.
        attn = scores.softmax(axis=-1, additive=add, inplace=True)
        context = attn @ v
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, dim)
        out = self.out_proj(merged)
        return out.reshape(seq, dim) if single else out


def build_attention_mask(
    seq_len: int,
    blocked_pairs: list[tuple[slice, slice]],
    symmetric: bool = True,
) -> np.ndarray:
    """Build an additive mask that blocks the given (rows, cols) slices.

    Used by the control-flow separation: pairs of segments whose
    interaction should be severed get ``NEG_INF``.
    """
    mask = np.zeros((seq_len, seq_len))
    for rows, cols in blocked_pairs:
        mask[rows, cols] = NEG_INF
        if symmetric:
            mask[cols, rows] = NEG_INF
    return mask
