"""Model checkpointing to .npz archives."""

from __future__ import annotations

import os

import numpy as np

from .layers import Module


def save_model(module: Module, path: str) -> None:
    """Save a module's parameters to *path* (.npz)."""
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_model(module: Module, path: str) -> None:
    """Load parameters saved by :func:`save_model` into *module*."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
