"""Learning-rate schedulers for the optimizers."""

from __future__ import annotations

import math

from .optim import Optimizer


class Scheduler:
    """Base class: call :meth:`step` once per training step.

    The intended protocol is ``start()`` once before the first update,
    then ``step()`` *after* each ``optimizer.step()``, so update *k*
    (1-indexed) applies ``lr_at(k - 1)`` — with warmup, the first update
    runs at the initial warmup rate instead of skipping it.
    """

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self._step = 0

    def start(self) -> float:
        """Apply the step-0 LR without advancing the schedule."""
        lr = self.lr_at(self._step)
        self.optimizer.lr = lr
        return lr

    def step(self) -> float:
        self._step += 1
        lr = self.lr_at(self._step)
        self.optimizer.lr = lr
        return lr

    def lr_at(self, step: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


class ConstantLR(Scheduler):
    """No-op scheduler (keeps the optimizer's base rate)."""

    def lr_at(self, step: int) -> float:
        return self.base_lr


class CosineDecay(Scheduler):
    """Cosine decay from base_lr to ``floor`` over ``total_steps``."""

    def __init__(
        self, optimizer: Optimizer, total_steps: int, floor: float = 0.0
    ) -> None:
        super().__init__(optimizer)
        if total_steps < 1:
            raise ValueError("total_steps must be >= 1")
        self.total_steps = total_steps
        self.floor = floor

    def lr_at(self, step: int) -> float:
        progress = min(1.0, step / self.total_steps)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.floor + (self.base_lr - self.floor) * cosine


class WarmupCosine(CosineDecay):
    """Linear warmup for ``warmup_steps`` followed by cosine decay."""

    def __init__(
        self,
        optimizer: Optimizer,
        total_steps: int,
        warmup_steps: int = 0,
        floor: float = 0.0,
    ) -> None:
        super().__init__(optimizer, total_steps, floor)
        if warmup_steps >= total_steps:
            raise ValueError("warmup_steps must be < total_steps")
        self.warmup_steps = warmup_steps

    def lr_at(self, step: int) -> float:
        if self.warmup_steps and step <= self.warmup_steps:
            # Step 0 (what start() applies before the first update) gets
            # the warmup's initial rate, not 0 — a zero-LR update would
            # silently discard the first mini-batch's gradient.
            return self.base_lr * max(step, 1) / self.warmup_steps
        remaining = self.total_steps - self.warmup_steps
        progress = min(1.0, (step - self.warmup_steps) / remaining)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.floor + (self.base_lr - self.floor) * cosine
