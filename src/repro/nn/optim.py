"""Optimizers: SGD, Adam, AdamW (the paper trains with AdamW)."""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimizer over a fixed list of parameters."""

    def __init__(self, parameters: Iterable[Tensor], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Global-norm gradient clipping; returns the pre-clip norm."""
        total = 0.0
        for param in self.parameters:
            if param.grad is not None:
                total += float((param.grad**2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for param in self.parameters:
                if param.grad is not None:
                    param.grad *= scale
        return norm


class SGD(Optimizer):
    """Vanilla SGD with optional momentum."""

    def __init__(
        self, parameters: Iterable[Tensor], lr: float = 1e-2, momentum: float = 0.0
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity: Optional[list[np.ndarray]] = None

    def step(self) -> None:
        if self._velocity is None:
            self._velocity = [np.zeros_like(p.data) for p in self.parameters]
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.lr * param.grad
            param.data += velocity


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        decoupled: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.decoupled = decoupled
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay and not self.decoupled:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay and self.decoupled:
                param.data -= self.lr * self.weight_decay * param.data
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(
            parameters,
            lr=lr,
            betas=betas,
            eps=eps,
            weight_decay=weight_decay,
            decoupled=True,
        )
