"""A small reverse-mode autodiff engine over numpy arrays.

This stands in for PyTorch/HuggingFace in the paper's training stack.
Only the operations the cost models need are implemented, each with an
exact vector-Jacobian product verified against finite differences in
the test suite.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, list]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (inference mode).

    Inside the context, results of tensor ops carry no parents or
    backward closures, so intermediates are freed as soon as they go out
    of scope — the batched prediction paths run whole-corpus encodes
    without retaining per-layer activations.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum *grad* down to *shape* (reverse of numpy broadcasting)."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array plus gradient bookkeeping."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self._parents = _parents
        self._backward = _backward

    # -- construction ----------------------------------------------------

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(
        *shape: int,
        rng: Optional[np.random.Generator] = None,
        scale: float = 1.0,
        requires_grad: bool = False,
    ) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(rng.standard_normal(shape) * scale, requires_grad=requires_grad)

    # -- basics ------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def item(self) -> float:
        return float(self.data)

    def _make(
        self,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        return Tensor(
            data,
            requires_grad=requires,
            _parents=parents if requires else (),
            _backward=backward if requires else None,
        )

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: ArrayLike | "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad, other_t.shape))

        return self._make(out_data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike | "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other_t)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) + (-self)

    def __mul__(self, other: ArrayLike | "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad * self.data, other_t.shape))

        return self._make(out_data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike | "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(
                    _unbroadcast(-grad * self.data / (other_t.data**2), other_t.shape)
                )

        return self._make(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim >= 2:
                    self_grad = grad @ np.swapaxes(other.data, -1, -2)
                else:
                    self_grad = np.outer(grad, other.data) if grad.ndim else grad * other.data
                self._accumulate(_unbroadcast(self_grad, self.shape))
            if other.requires_grad:
                if self.data.ndim >= 2:
                    other_grad = np.swapaxes(self.data, -1, -2) @ grad
                else:
                    other_grad = np.outer(self.data, grad)
                other._accumulate(_unbroadcast(other_grad, other.shape))

        return self._make(out_data, (self, other), backward)

    # -- elementwise nonlinearities -------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -60.0, 60.0))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        safe = np.maximum(self.data, 1e-12)
        out_data = np.log(safe)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / safe)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def gelu(self) -> "Tensor":
        """tanh-approximated GELU (buffer-reusing forward)."""
        x = self.data
        tanh_inner = np.multiply(x, x)
        tanh_inner *= 0.044715
        tanh_inner *= x
        tanh_inner += x
        tanh_inner *= np.sqrt(2.0 / np.pi)
        np.tanh(tanh_inner, out=tanh_inner)
        out_data = tanh_inner + 1.0
        out_data *= x
        out_data *= 0.5

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                sech2 = 1.0 - tanh_inner**2
                d_inner = np.sqrt(2.0 / np.pi) * (1.0 + 3 * 0.044715 * x**2)
                local = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
                self._accumulate(grad * local)

        return self._make(out_data, (self,), backward)

    # -- reductions / reshapes --------------------------------------------------

    def sum(self, axis: Optional[int | tuple[int, ...]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(self, axis: Optional[int | tuple[int, ...]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.shape))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes_tuple)
        inverse = np.argsort(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Row lookup (embedding): result[i...] = self[indices[i...]]."""
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, indices, grad)
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # -- fused composites ----------------------------------------------------

    def softmax(
        self,
        axis: int = -1,
        additive: Optional[np.ndarray] = None,
        inplace: bool = False,
    ) -> "Tensor":
        """Numerically-stable softmax as one fused op.

        ``additive`` is an optional broadcastable constant (an attention
        mask) added to the logits before normalization; it does not
        receive gradients.  Max-subtraction bounds the exponent at zero,
        so no clipping pass is needed, and the forward reuses one buffer
        instead of materializing the sub/exp/div chain.

        ``inplace`` overwrites ``self.data`` with the result, avoiding
        the last full-size allocation.  Only safe when no other consumer
        reads this tensor's values (its producer's backward must not
        depend on them either) — attention score tensors qualify.
        """
        if inplace:
            shifted = self.data
            if additive is not None:
                np.add(shifted, additive, out=shifted)
            np.subtract(shifted, shifted.max(axis=axis, keepdims=True), out=shifted)
        else:
            scores = self.data if additive is None else self.data + additive
            shifted = scores - scores.max(axis=axis, keepdims=True)
        np.exp(shifted, out=shifted)
        denom = shifted.sum(axis=axis, keepdims=True)
        out_data = np.divide(shifted, denom, out=shifted)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                inner = (grad * out_data).sum(axis=axis, keepdims=True)
                self._accumulate((grad - inner) * out_data)

        return self._make(out_data, (self,), backward)

    def standardize(self, axis: int = -1, eps: float = 1e-5) -> "Tensor":
        """Fused ``(x - mean) / sqrt(var + eps)`` over *axis*.

        The normalization core of layernorm as a single graph node: one
        temporary instead of the mean/sub/square/mean/div chain.
        """
        mean = self.data.mean(axis=axis, keepdims=True)
        centered = self.data - mean
        var = np.mean(centered * centered, axis=axis, keepdims=True)
        inv = 1.0 / np.sqrt(var + eps)
        out_data = np.multiply(centered, inv, out=centered)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                grad_mean = grad.mean(axis=axis, keepdims=True)
                proj = (grad * out_data).mean(axis=axis, keepdims=True)
                self._accumulate((grad - grad_mean - out_data * proj) * inv)

        return self._make(out_data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        """Fused log-softmax: ``x - max - log(sum(exp(x - max)))``."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        logsumexp = np.log(exp.sum(axis=axis, keepdims=True))
        out_data = np.subtract(shifted, logsumexp, out=shifted)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                total = grad.sum(axis=axis, keepdims=True)
                self._accumulate(grad - np.exp(out_data) * total)

        return self._make(out_data, (self,), backward)

    # -- backprop ----------------------------------------------------------------

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along *axis* with gradient support."""
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    return Tensor(
        data,
        requires_grad=requires,
        _parents=tuple(tensors) if requires else (),
        _backward=backward if requires else None,
    )


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new *axis* with gradient support."""
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        for index, tensor in enumerate(tensors):
            if tensor.requires_grad:
                tensor._accumulate(np.take(grad, index, axis=axis))

    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    return Tensor(
        data,
        requires_grad=requires,
        _parents=tuple(tensors) if requires else (),
        _backward=backward if requires else None,
    )
