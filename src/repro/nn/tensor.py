"""A small reverse-mode autodiff engine over numpy arrays.

This stands in for PyTorch/HuggingFace in the paper's training stack.
Only the operations the cost models need are implemented, each with an
exact vector-Jacobian product verified against finite differences in
the test suite.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, list]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum *grad* down to *shape* (reverse of numpy broadcasting)."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array plus gradient bookkeeping."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self._parents = _parents
        self._backward = _backward

    # -- construction ----------------------------------------------------

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(
        *shape: int,
        rng: Optional[np.random.Generator] = None,
        scale: float = 1.0,
        requires_grad: bool = False,
    ) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(rng.standard_normal(shape) * scale, requires_grad=requires_grad)

    # -- basics ------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def item(self) -> float:
        return float(self.data)

    def _make(
        self,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        return Tensor(
            data,
            requires_grad=requires,
            _parents=parents if requires else (),
            _backward=backward if requires else None,
        )

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: ArrayLike | "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad, other_t.shape))

        return self._make(out_data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike | "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other_t)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) + (-self)

    def __mul__(self, other: ArrayLike | "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad * self.data, other_t.shape))

        return self._make(out_data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike | "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(
                    _unbroadcast(-grad * self.data / (other_t.data**2), other_t.shape)
                )

        return self._make(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim >= 2:
                    self_grad = grad @ np.swapaxes(other.data, -1, -2)
                else:
                    self_grad = np.outer(grad, other.data) if grad.ndim else grad * other.data
                self._accumulate(_unbroadcast(self_grad, self.shape))
            if other.requires_grad:
                if self.data.ndim >= 2:
                    other_grad = np.swapaxes(self.data, -1, -2) @ grad
                else:
                    other_grad = np.outer(self.data, grad)
                other._accumulate(_unbroadcast(other_grad, other.shape))

        return self._make(out_data, (self, other), backward)

    # -- elementwise nonlinearities -------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -60.0, 60.0))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        safe = np.maximum(self.data, 1e-12)
        out_data = np.log(safe)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / safe)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def gelu(self) -> "Tensor":
        """tanh-approximated GELU."""
        x = self.data
        inner = np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)
        tanh_inner = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + tanh_inner)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                sech2 = 1.0 - tanh_inner**2
                d_inner = np.sqrt(2.0 / np.pi) * (1.0 + 3 * 0.044715 * x**2)
                local = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
                self._accumulate(grad * local)

        return self._make(out_data, (self,), backward)

    # -- reductions / reshapes --------------------------------------------------

    def sum(self, axis: Optional[int | tuple[int, ...]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(self, axis: Optional[int | tuple[int, ...]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.shape))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes_tuple)
        inverse = np.argsort(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Row lookup (embedding): result[i...] = self[indices[i...]]."""
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, indices, grad)
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # -- composite helpers ---------------------------------------------------

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        exp = shifted.exp()
        return exp / exp.sum(axis=axis, keepdims=True)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        logsumexp = shifted.exp().sum(axis=axis, keepdims=True).log()
        return shifted - logsumexp

    # -- backprop ----------------------------------------------------------------

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along *axis* with gradient support."""
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    requires = any(t.requires_grad for t in tensors)
    return Tensor(
        data,
        requires_grad=requires,
        _parents=tuple(tensors) if requires else (),
        _backward=backward if requires else None,
    )


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new *axis* with gradient support."""
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        for index, tensor in enumerate(tensors):
            if tensor.requires_grad:
                tensor._accumulate(np.take(grad, index, axis=axis))

    requires = any(t.requires_grad for t in tensors)
    return Tensor(
        data,
        requires_grad=requires,
        _parents=tuple(tensors) if requires else (),
        _backward=backward if requires else None,
    )
