"""Program IRs: loop trees and dataflow/program graphs."""

from .graph import (
    NODE_TYPE_INDEX,
    DataflowGraph,
    OperatorCall,
    build_dataflow_graph,
    build_program_graph,
)
from .looptree import LoopBound, LoopNode, LoopTree, StatementLeaf, lower_function

__all__ = [
    "LoopBound",
    "LoopNode",
    "LoopTree",
    "StatementLeaf",
    "lower_function",
    "DataflowGraph",
    "OperatorCall",
    "build_dataflow_graph",
    "build_program_graph",
    "NODE_TYPE_INDEX",
]
