"""Dataflow and program graphs.

Two graph views are provided:

* :class:`DataflowGraph` — operator-level: one node per operator call in
  the top-level graph function, edges where one call's output array feeds
  another call.  This is the ``G`` of the paper's input quadruple and the
  unit the control-flow separation masks operate over.
* :func:`build_program_graph` — statement/expression-level graph used by
  the GNNHLS baseline (a ProGraML-flavoured representation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import networkx as nx

from ..errors import LoweringError
from ..lang import ast
from ..lang.analysis import OperatorClass, analyze_function


@dataclass
class OperatorCall:
    """One operator invocation inside the graph function."""

    index: int
    name: str
    args: list[str]
    reads: list[str] = field(default_factory=list)
    writes: list[str] = field(default_factory=list)
    operator_class: OperatorClass = OperatorClass.CLASS_I


@dataclass
class DataflowGraph:
    """Operator-level dataflow graph of a program."""

    graph_function: str
    calls: list[OperatorCall]
    nx_graph: nx.DiGraph

    @property
    def operator_count(self) -> int:
        return len(self.calls)

    def class_ii_indices(self) -> list[int]:
        return [
            call.index
            for call in self.calls
            if call.operator_class is OperatorClass.CLASS_II
        ]

    def class_i_indices(self) -> list[int]:
        return [
            call.index
            for call in self.calls
            if call.operator_class is OperatorClass.CLASS_I
        ]


def _infer_read_write(
    func: Optional[ast.FunctionDef], args: list[ast.Expr]
) -> tuple[list[str], list[str]]:
    """Split the array arguments of a call into reads and writes.

    When the callee is known, a parameter is a *write* if its array is
    ever stored to inside the callee; otherwise we fall back to the HLS
    convention that the last array argument is the output.
    """
    arg_names = [a.name if isinstance(a, ast.Var) else None for a in args]
    reads: list[str] = []
    writes: list[str] = []
    if func is not None and len(func.params) == len(args):
        written_params: set[str] = set()
        for node in ast.walk(func.body):
            if isinstance(node, ast.Assign) and isinstance(node.target, ast.Index):
                written_params.add(node.target.base.name)
        for param, arg_name in zip(func.params, arg_names):
            if arg_name is None or not param.type.is_array:
                continue
            if param.name in written_params:
                writes.append(arg_name)
            else:
                reads.append(arg_name)
        return reads, writes
    array_args = [name for name in arg_names if name is not None]
    if array_args:
        reads = array_args[:-1]
        writes = array_args[-1:]
    return reads, writes


def build_dataflow_graph(
    program: ast.Program, graph_function: Optional[str] = None
) -> DataflowGraph:
    """Extract the operator-level dataflow graph.

    *graph_function* defaults to ``dataflow`` or ``graph`` when present,
    otherwise the last function in the program (HLS top-module style).
    """
    if graph_function is None:
        names = program.function_names
        for candidate in ("dataflow", "graph", "main", "top"):
            if candidate in names:
                graph_function = candidate
                break
        else:
            if not names:
                raise LoweringError("program has no functions")
            graph_function = names[-1]
    top = program.function(graph_function)
    defined = {func.name: func for func in program.functions}
    reports = {
        name: analyze_function(func)
        for name, func in defined.items()
        if name != graph_function
    }
    calls: list[OperatorCall] = []
    for call_expr in ast.calls_in(top.body):
        callee = defined.get(call_expr.name)
        reads, writes = _infer_read_write(callee, call_expr.args)
        operator_class = OperatorClass.CLASS_I
        if call_expr.name in reports:
            operator_class = reports[call_expr.name].operator_class
        calls.append(
            OperatorCall(
                index=len(calls),
                name=call_expr.name,
                args=[
                    arg.name if isinstance(arg, ast.Var) else "<expr>"
                    for arg in call_expr.args
                ],
                reads=reads,
                writes=writes,
                operator_class=operator_class,
            )
        )
    graph = nx.DiGraph()
    for call in calls:
        graph.add_node(call.index, name=call.name, op_class=call.operator_class.value)
    last_writer: dict[str, int] = {}
    for call in calls:
        for array in call.reads:
            if array in last_writer:
                graph.add_edge(last_writer[array], call.index, array=array)
        for array in call.writes:
            last_writer[array] = call.index
    return DataflowGraph(graph_function=graph_function, calls=calls, nx_graph=graph)


# -- statement-level program graph (GNNHLS representation) -------------

_NODE_TYPES = (
    "function",
    "loop",
    "branch",
    "assign",
    "decl",
    "binop_add",
    "binop_mul",
    "binop_div",
    "binop_cmp",
    "binop_logic",
    "unary",
    "load",
    "store",
    "const",
    "var",
    "call",
    "return",
    "ternary",
)

NODE_TYPE_INDEX = {name: i for i, name in enumerate(_NODE_TYPES)}


def _binop_type(op: str) -> str:
    if op in ("+", "-"):
        return "binop_add"
    if op == "*":
        return "binop_mul"
    if op in ("/", "%"):
        return "binop_div"
    if op in ("<", ">", "<=", ">=", "==", "!="):
        return "binop_cmp"
    return "binop_logic"


def build_program_graph(program: ast.Program) -> nx.DiGraph:
    """Build a typed statement/expression graph for GNN baselines.

    Nodes carry ``type`` (one of :data:`NODE_TYPE_INDEX`) and ``value``
    (log-scaled literal magnitude for constants); edges carry ``kind``
    (``ast`` for syntax edges, ``seq`` for statement order).
    """
    graph = nx.DiGraph()
    counter = 0

    def new_node(node_type: str, value: float = 0.0) -> int:
        nonlocal counter
        graph.add_node(counter, type=node_type, value=value)
        counter += 1
        return counter - 1

    def visit_expr(expr: ast.Expr) -> int:
        import math

        if isinstance(expr, ast.IntLit):
            return new_node("const", math.log1p(abs(float(expr.value))))
        if isinstance(expr, ast.FloatLit):
            return new_node("const", math.log1p(abs(expr.value)))
        if isinstance(expr, ast.Var):
            return new_node("var")
        if isinstance(expr, ast.BinOp):
            node = new_node(_binop_type(expr.op))
            graph.add_edge(node, visit_expr(expr.left), kind="ast")
            graph.add_edge(node, visit_expr(expr.right), kind="ast")
            return node
        if isinstance(expr, ast.UnaryOp):
            node = new_node("unary")
            graph.add_edge(node, visit_expr(expr.operand), kind="ast")
            return node
        if isinstance(expr, ast.Index):
            node = new_node("load")
            for index in expr.indices:
                graph.add_edge(node, visit_expr(index), kind="ast")
            return node
        if isinstance(expr, ast.CallExpr):
            node = new_node("call")
            for arg in expr.args:
                graph.add_edge(node, visit_expr(arg), kind="ast")
            return node
        if isinstance(expr, ast.Ternary):
            node = new_node("ternary")
            graph.add_edge(node, visit_expr(expr.cond), kind="ast")
            graph.add_edge(node, visit_expr(expr.then), kind="ast")
            graph.add_edge(node, visit_expr(expr.other), kind="ast")
            return node
        raise LoweringError(f"unknown expression {type(expr).__name__}")

    def visit_stmt(stmt: ast.Stmt) -> Optional[int]:
        if isinstance(stmt, ast.Block):
            previous = None
            for inner in stmt.stmts:
                node = visit_stmt(inner)
                if previous is not None and node is not None:
                    graph.add_edge(previous, node, kind="seq")
                if node is not None:
                    previous = node
            return previous
        if isinstance(stmt, (ast.For, ast.While)):
            node = new_node("loop")
            cond = stmt.cond if stmt.cond is not None else None
            if cond is not None:
                graph.add_edge(node, visit_expr(cond), kind="ast")
            body_node = visit_stmt(stmt.body)
            if body_node is not None:
                graph.add_edge(node, body_node, kind="ast")
            return node
        if isinstance(stmt, ast.If):
            node = new_node("branch")
            graph.add_edge(node, visit_expr(stmt.cond), kind="ast")
            then_node = visit_stmt(stmt.then)
            if then_node is not None:
                graph.add_edge(node, then_node, kind="ast")
            if stmt.other is not None:
                other_node = visit_stmt(stmt.other)
                if other_node is not None:
                    graph.add_edge(node, other_node, kind="ast")
            return node
        if isinstance(stmt, ast.Assign):
            kind = "store" if isinstance(stmt.target, ast.Index) else "assign"
            node = new_node(kind)
            graph.add_edge(node, visit_expr(stmt.value), kind="ast")
            if isinstance(stmt.target, ast.Index):
                for index in stmt.target.indices:
                    graph.add_edge(node, visit_expr(index), kind="ast")
            return node
        if isinstance(stmt, ast.Decl):
            node = new_node("decl")
            if stmt.init is not None:
                graph.add_edge(node, visit_expr(stmt.init), kind="ast")
            return node
        if isinstance(stmt, ast.Return):
            node = new_node("return")
            if stmt.value is not None:
                graph.add_edge(node, visit_expr(stmt.value), kind="ast")
            return node
        if isinstance(stmt, ast.ExprStmt):
            return visit_expr(stmt.expr)
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return None
        raise LoweringError(f"unknown statement {type(stmt).__name__}")

    previous_fn = None
    for func in program.functions:
        fn_node = new_node("function")
        body_node = visit_stmt(func.body)
        if body_node is not None:
            graph.add_edge(fn_node, body_node, kind="ast")
        if previous_fn is not None:
            graph.add_edge(previous_fn, fn_node, kind="seq")
        previous_fn = fn_node
    return graph
