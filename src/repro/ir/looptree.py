"""Loop-tree IR.

A loop tree abstracts an operator as nested loops over statements, the
representation Tileflow-style analytical models and the dataflow
generator both work on (paper Sections 2 and 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..errors import LoweringError
from ..lang import ast


@dataclass
class LoopBound:
    """A loop bound: either a compile-time constant or a symbol."""

    constant: Optional[int] = None
    symbol: Optional[str] = None

    @property
    def is_static(self) -> bool:
        return self.constant is not None

    def resolve(self, bindings: dict[str, int]) -> int:
        """Concrete value given symbol *bindings*."""
        if self.constant is not None:
            return self.constant
        if self.symbol is None:
            raise LoweringError("unresolvable loop bound")
        if self.symbol not in bindings:
            raise LoweringError(f"unbound loop-bound symbol {self.symbol!r}")
        return bindings[self.symbol]

    def __str__(self) -> str:
        return str(self.constant) if self.is_static else str(self.symbol)


@dataclass
class StatementLeaf:
    """A leaf of the loop tree: one straight-line statement with
    pre-counted operation mix."""

    adds: int = 0
    muls: int = 0
    divs: int = 0
    cmps: int = 0
    loads: int = 0
    stores: int = 0
    has_branch: bool = False

    @property
    def total_ops(self) -> int:
        return self.adds + self.muls + self.divs + self.cmps


@dataclass
class LoopNode:
    """One loop level: induction variable, bounds, step and mapping."""

    var: str
    start: int
    bound: LoopBound
    step: int = 1
    unroll: int = 1  # 1 = none, 0 = full
    parallel: bool = False
    children: list[Union["LoopNode", StatementLeaf]] = field(default_factory=list)

    def trip_count(self, bindings: Optional[dict[str, int]] = None) -> int:
        resolved = self.bound.resolve(bindings or {})
        step = max(1, abs(self.step))
        return max(0, -(-(resolved - self.start) // step))

    def loops(self) -> list["LoopNode"]:
        """This loop and all nested loops, pre-order."""
        result: list[LoopNode] = [self]
        for child in self.children:
            if isinstance(child, LoopNode):
                result.extend(child.loops())
        return result

    @property
    def depth(self) -> int:
        child_depths = [c.depth for c in self.children if isinstance(c, LoopNode)]
        return 1 + (max(child_depths) if child_depths else 0)


@dataclass
class LoopTree:
    """Loop tree of a single operator function."""

    function: str
    roots: list[Union[LoopNode, StatementLeaf]] = field(default_factory=list)

    def all_loops(self) -> list[LoopNode]:
        result: list[LoopNode] = []
        for root in self.roots:
            if isinstance(root, LoopNode):
                result.extend(root.loops())
        return result

    @property
    def max_depth(self) -> int:
        depths = [r.depth for r in self.roots if isinstance(r, LoopNode)]
        return max(depths, default=0)

    @property
    def is_perfect_nest(self) -> bool:
        """True when the tree is a single perfectly nested loop chain with
        statement leaves only at the innermost level — the only shape the
        Timeloop substitute accepts."""
        if len(self.roots) != 1 or not isinstance(self.roots[0], LoopNode):
            return False
        node = self.roots[0]
        while True:
            loop_children = [c for c in node.children if isinstance(c, LoopNode)]
            leaf_children = [c for c in node.children if isinstance(c, StatementLeaf)]
            if len(loop_children) == 0:
                return all(not leaf.has_branch for leaf in leaf_children)
            if len(loop_children) == 1 and not leaf_children:
                node = loop_children[0]
                continue
            return False


def _expr_op_mix(expr: ast.Expr) -> StatementLeaf:
    leaf = StatementLeaf()
    for node in ast.walk(expr):
        if isinstance(node, ast.BinOp):
            if node.op in ("+", "-"):
                leaf.adds += 1
            elif node.op == "*":
                leaf.muls += 1
            elif node.op in ("/", "%"):
                leaf.divs += 1
            elif node.op in ("<", ">", "<=", ">=", "==", "!="):
                leaf.cmps += 1
        elif isinstance(node, ast.Index):
            leaf.loads += 1
        elif isinstance(node, ast.Ternary):
            leaf.has_branch = True
    return leaf


def _merge(into: StatementLeaf, other: StatementLeaf) -> None:
    into.adds += other.adds
    into.muls += other.muls
    into.divs += other.divs
    into.cmps += other.cmps
    into.loads += other.loads
    into.stores += other.stores
    into.has_branch = into.has_branch or other.has_branch


def _lower_for(loop: ast.For) -> LoopNode:
    if loop.cond is None or not isinstance(loop.cond, ast.BinOp):
        raise LoweringError("for loop without canonical condition")
    if not isinstance(loop.cond.left, ast.Var):
        raise LoweringError("non-canonical loop condition")
    var = loop.cond.left.name
    bound_expr = loop.cond.right
    if isinstance(bound_expr, ast.IntLit):
        bound = LoopBound(constant=bound_expr.value)
    elif isinstance(bound_expr, ast.Var):
        bound = LoopBound(symbol=bound_expr.name)
    else:
        # Composite bound: keep it symbolic under a synthetic name.
        bound = LoopBound(symbol=f"<expr:{var}>")
    start = 0
    if isinstance(loop.init, ast.Decl) and isinstance(loop.init.init, ast.IntLit):
        start = loop.init.init.value
    elif isinstance(loop.init, ast.Assign) and isinstance(loop.init.value, ast.IntLit):
        start = loop.init.value.value
    step = 1
    if isinstance(loop.step, ast.Assign) and isinstance(loop.step.value, ast.IntLit):
        step = max(1, abs(loop.step.value.value))
    node = LoopNode(
        var=var,
        start=start,
        bound=bound,
        step=step,
        unroll=loop.unroll_factor,
        parallel=loop.is_parallel,
    )
    node.children = _lower_stmts(loop.body.stmts)
    return node


def _lower_stmts(stmts: list[ast.Stmt]) -> list[Union[LoopNode, StatementLeaf]]:
    children: list[Union[LoopNode, StatementLeaf]] = []
    pending = StatementLeaf()

    def flush() -> None:
        nonlocal pending
        if pending.total_ops or pending.loads or pending.stores or pending.has_branch:
            children.append(pending)
            pending = StatementLeaf()

    for stmt in stmts:
        if isinstance(stmt, ast.For):
            flush()
            children.append(_lower_for(stmt))
        elif isinstance(stmt, ast.While):
            flush()
            # While loops have no static trip count: lower as a symbolic
            # loop over a synthetic bound so analytical consumers see it.
            node = LoopNode(var="<while>", start=0, bound=LoopBound(symbol="<while>"))
            node.children = _lower_stmts(stmt.body.stmts)
            children.append(node)
        elif isinstance(stmt, ast.If):
            branch = StatementLeaf(has_branch=True)
            _merge(branch, _expr_op_mix(stmt.cond))
            children.append(branch)
            children.extend(_lower_stmts(stmt.then.stmts))
            if stmt.other is not None:
                children.extend(_lower_stmts(stmt.other.stmts))
        elif isinstance(stmt, ast.Block):
            flush()
            children.extend(_lower_stmts(stmt.stmts))
        elif isinstance(stmt, ast.Assign):
            _merge(pending, _expr_op_mix(stmt.value))
            if isinstance(stmt.target, ast.Index):
                pending.stores += 1
                for index in stmt.target.indices:
                    _merge(pending, _expr_op_mix(index))
            if stmt.op != "=":
                pending.adds += 1
        elif isinstance(stmt, ast.Decl) and stmt.init is not None:
            _merge(pending, _expr_op_mix(stmt.init))
        elif isinstance(stmt, (ast.ExprStmt, ast.Return)):
            expr = stmt.expr if isinstance(stmt, ast.ExprStmt) else stmt.value
            if expr is not None:
                _merge(pending, _expr_op_mix(expr))
    flush()
    return children


def lower_function(func: ast.FunctionDef) -> LoopTree:
    """Lower a function body to its loop tree."""
    return LoopTree(function=func.name, roots=_lower_stmts(func.body.stmts))
