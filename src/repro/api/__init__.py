"""The public, typed prediction API — the single surface every
frontend routes through.

* :class:`Session` — the local facade: warm models, tiered caches,
  prediction / profiling / exploration.
* :class:`Predictor` — the protocol shared by :class:`Session` and the
  remote :class:`~repro.serve.client.ServeClient`.
* :mod:`~repro.api.types` — frozen request/result dataclasses.
* :mod:`~repro.api.codec` — the versioned JSON wire format.

Quickstart::

    from repro.api import ExploreJob, PredictJob, Session

    session = Session(models="model.npz")
    prediction = session.predict_job(PredictJob(source=source, data={"n": 8}))
    ranking = session.explore(ExploreJob(source=source, verify_top=3))
"""

from .codec import (
    SCHEMA_VERSION,
    CodecError,
    dumps,
    from_payload,
    loads,
    predict_jobs_from_jsonl,
    read_program,
    to_payload,
    validate_source,
)
from .session import Predictor, Session
from .types import (
    DesignChoice,
    ExploreJob,
    ExploreReport,
    MetricPrediction,
    PredictJob,
    Prediction,
    ProfileJob,
    ProfileReport,
    prediction_from_cost,
)

__all__ = [
    "SCHEMA_VERSION",
    "CodecError",
    "DesignChoice",
    "ExploreJob",
    "ExploreReport",
    "MetricPrediction",
    "PredictJob",
    "Prediction",
    "Predictor",
    "ProfileJob",
    "ProfileReport",
    "Session",
    "dumps",
    "from_payload",
    "loads",
    "prediction_from_cost",
    "predict_jobs_from_jsonl",
    "read_program",
    "to_payload",
    "validate_source",
]
