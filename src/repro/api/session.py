"""The :class:`Session` facade — one typed entry point for prediction,
profiling and exploration.

A session owns the serving substrate (a
:class:`~repro.serve.engine.ModelRegistry` of warm models, the shared
:class:`~repro.profiler.StaticProfileCache`, a
:class:`~repro.serve.engine.PredictionEngine` with its tiered caches)
and exposes it through the job/result dataclasses of
:mod:`repro.api.types`.  Every frontend is an adapter over it:

* the CLI builds jobs from flags and prints the results;
* the HTTP server decodes jobs from request bodies and encodes results
  back (the session *is* the handler logic);
* the evaluation harness and the design-space explorer route their
  model queries through the session's warm engine.

:class:`Predictor` is the structural protocol shared by
:class:`Session` (local, in-process) and
:class:`~repro.serve.client.ServeClient` (remote, over HTTP): code
written against it — like ``predict --remote`` — swaps backends with a
constructor change instead of a separate code path.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from ..hls import HardwareParams
from ..profiler import Profiler
from ..serve.engine import ModelRegistry, PredictionEngine
from ..telemetry import TRACER
from .types import (
    DesignChoice,
    ExploreJob,
    ExploreReport,
    PredictJob,
    Prediction,
    ProfileJob,
    ProfileReport,
    prediction_from_cost,
)


@runtime_checkable
class Predictor(Protocol):
    """Anything that can answer :class:`PredictJob` requests."""

    def predict_job(self, job: PredictJob) -> Prediction:
        """Answer one job."""

    def predict_jobs(self, jobs: Sequence[PredictJob]) -> list[Prediction]:
        """Answer several jobs, preserving order."""


class Session:
    """A warm, cache-backed facade over the whole prediction stack.

    Checkpoints load lazily on first use; hand an existing
    :class:`PredictionEngine` in via ``engine=`` to share warm state
    (the HTTP server does exactly that).

    Example::

        session = Session(models="model.npz")
        prediction = session.predict_job(PredictJob(source=source, data={"n": 8}))
        report = session.profile(ProfileJob(source=source))
        ranking = session.explore(ExploreJob(source=source, verify_top=3))
    """

    def __init__(
        self,
        models: Optional[str | Mapping[str, str]] = None,
        *,
        tier: str = "0.5B",
        seed: int = 0,
        max_seq_len: int = 320,
        engine: Optional[PredictionEngine] = None,
        default_model: Optional[str] = None,
    ) -> None:
        self.engine = engine if engine is not None else PredictionEngine()
        self._default_model = default_model
        if models:
            if isinstance(models, str):
                models = {"default": models}
            for name, path in models.items():
                self.engine.registry.register(
                    name, path=path, tier=tier, seed=seed, max_seq_len=max_seq_len
                )
                if self._default_model is None:
                    self._default_model = name
        if self._default_model is None:
            names = self.engine.registry.names()
            self._default_model = names[0] if names else "default"

    @classmethod
    def from_model(
        cls, model: Any, name: str = "default", **engine_kwargs: Any
    ) -> "Session":
        """A session around one preloaded in-memory :class:`CostModel`."""
        engine = PredictionEngine.from_model(model, name=name, **engine_kwargs)
        return cls(engine=engine, default_model=name)

    # -- introspection ---------------------------------------------------

    @property
    def registry(self) -> ModelRegistry:
        return self.engine.registry

    @property
    def default_model(self) -> str:
        return self._default_model

    def models(self) -> list[str]:
        return self.engine.registry.names()

    def load_models(self) -> list[str]:
        """Eagerly load + warm every registered checkpoint, failing fast
        on the first unreadable one.  Returns the names loaded."""
        names = self.engine.registry.names()
        for name in names:
            self.engine.registry.get(name)
        return names

    def stats(self) -> dict:
        from ..obs.resource import process_snapshot

        stats = dict(self.engine.stats_dict())
        stats["resource"] = process_snapshot()
        return stats

    # -- prediction ------------------------------------------------------

    def predict_job(self, job: PredictJob) -> Prediction:
        return self.predict_jobs([job])[0]

    def predict_jobs(self, jobs: Sequence[PredictJob]) -> list[Prediction]:
        """Answer every job through one batched engine pass."""
        with TRACER.span("session.predict_jobs", {"jobs": len(jobs)}):
            requests = [
                self.engine.build_request(
                    job.source,
                    data=dict(job.data) if job.data else None,
                    params=job.params,
                    model=job.model or self._default_model,
                    beam_width=job.beam_width,
                )
                for job in jobs
            ]
            costs = self.engine.predict_requests(requests)
        return [
            prediction_from_cost(cost, model=request.model, label=job.label)
            for job, request, cost in zip(jobs, requests, costs)
        ]

    def predict(
        self,
        source: str,
        data: Optional[Mapping[str, Any]] = None,
        params: Optional[HardwareParams] = None,
        model: Optional[str] = None,
        beam_width: Optional[int] = None,
    ) -> Prediction:
        """Convenience keyword form of :meth:`predict_job`."""
        return self.predict_job(
            PredictJob(
                source=source,
                data=data,
                params=params,
                model=model,
                beam_width=beam_width,
            )
        )

    def predict_bundles(
        self,
        bundles: Sequence[Any],
        segment_lists: Optional[Sequence[Sequence[str]]] = None,
        model: Optional[str] = None,
        beam_width: Optional[int] = None,
    ) -> list[Prediction]:
        """Bundle-level entry point for callers (evaluation harness)
        that already hold :class:`~repro.tokenizer.ModelInput` bundles."""
        name = model or self._default_model
        costs = self.engine.predict_bundles(
            bundles, segment_lists, model=name, beam_width=beam_width
        )
        return [prediction_from_cost(cost, model=name) for cost in costs]

    def adopt(self, name: str, model: Any) -> None:
        """Register an in-memory model under *name* (see
        :meth:`PredictionEngine.adopt` for the cache contract)."""
        self.engine.adopt(name, model)

    # -- ground truth ----------------------------------------------------

    def profile(self, job: ProfileJob) -> ProfileReport:
        """Ground-truth costs through the session's shared static cache."""
        kwargs: dict[str, Any] = {}
        if job.max_steps is not None:
            kwargs["max_steps"] = job.max_steps
        profiler = Profiler(
            job.params or HardwareParams(),
            backend=job.backend,
            static_cache=self.engine.static_cache,
            **kwargs,
        )
        with TRACER.span("session.profile", {"label": job.label} if job.label else None):
            report = profiler.profile(
                job.source,
                data=dict(job.data) if job.data else None,
                rng=np.random.default_rng(job.seed),
            )
        with self.engine.lock:
            self.engine.stats.profile_requests += 1
        return ProfileReport(
            costs=report.costs.as_dict(),
            rtl_think=report.rtl.think_text(),
            label=job.label,
        )

    # -- exploration -----------------------------------------------------

    def explorer(self, model: Optional[str] = None, **kwargs: Any):
        """A :class:`~repro.core.DesignSpaceExplorer` sharing this
        session's warm model and caches."""
        return self.engine.explorer_for(model or self._default_model, **kwargs)

    def explore(self, job: ExploreJob) -> ExploreReport:
        """Rank mapping candidates, optionally verifying the finalists."""
        name = job.model or self._default_model
        explorer = self.engine.explorer_for(name)
        data = dict(job.data) if job.data else None
        # Model inference must not race other engine users (the serve
        # micro-batcher worker); verification is profiler-side and runs
        # outside the inference lock.
        with TRACER.span("session.explore", {"model": name}):
            with self.engine.lock:
                points = explorer.explore(
                    job.source,
                    data=data,
                    unroll_factors=tuple(job.unroll_factors),
                    memory_delays=tuple(job.memory_delays),
                    max_candidates=job.max_candidates,
                )
            if job.verify_top:
                explorer.verify_top(points, top_k=job.verify_top, data=data)
        candidates = tuple(
            DesignChoice(
                design=point.describe(),
                predicted=dict(point.predicted),
                score=point.score,
                actual=dict(point.actual) if point.actual is not None else None,
            )
            for point in points
        )
        return ExploreReport(
            candidates=candidates,
            model=name,
            cache_stats=explorer.predictor.stats_dict(),
        )
