"""Typed request/result dataclasses of the public prediction API.

Every frontend — CLI, HTTP server, :class:`~repro.serve.client.ServeClient`,
evaluation harness — speaks these types.  Jobs describe *what* to
compute at the source level (program text, runtime data, hardware
parameters); results carry the computed values plus the provenance a
caller needs to line answers up with requests (``label``, ``model``).

All types are frozen: a job can be built once and submitted to any
:class:`~repro.api.session.Predictor` (local or remote) without the
backend mutating it, and results are safe to share across threads.
The wire representation lives in :mod:`repro.api.codec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from ..hls import HardwareParams


@dataclass(frozen=True)
class PredictJob:
    """One cost-prediction request.

    ``model`` of ``None`` means the predictor's default model; ``label``
    is echoed into the :class:`Prediction` so batched callers can match
    answers to requests.
    """

    source: str
    data: Optional[Mapping[str, Any]] = None
    params: Optional[HardwareParams] = None
    model: Optional[str] = None
    beam_width: Optional[int] = None
    label: str = ""


@dataclass(frozen=True)
class ProfileJob:
    """One ground-truth profiling request (the EDA substrate).

    ``max_steps`` of ``None`` uses the profiler's own default budget;
    ``seed`` feeds the deterministic runtime-input generator.
    """

    source: str
    data: Optional[Mapping[str, Any]] = None
    params: Optional[HardwareParams] = None
    seed: int = 0
    max_steps: Optional[int] = None
    backend: str = "compiled"
    label: str = ""


@dataclass(frozen=True)
class ExploreJob:
    """One design-space exploration request: rank mapping candidates
    (unroll × memory delay) with the cost model, optionally verifying
    the ``verify_top`` finalists against the profiler."""

    source: str
    data: Optional[Mapping[str, Any]] = None
    unroll_factors: tuple[int, ...] = (1, 2, 4)
    memory_delays: tuple[int, ...] = (10,)
    max_candidates: int = 16
    verify_top: int = 0
    model: Optional[str] = None
    label: str = ""


@dataclass(frozen=True)
class MetricPrediction:
    """One metric's predicted value with confidence information."""

    value: int
    confidence: float
    beam_values: tuple[int, ...] = ()


@dataclass(frozen=True)
class Prediction:
    """Per-metric predictions for one :class:`PredictJob`."""

    metrics: Mapping[str, MetricPrediction] = field(default_factory=dict)
    model: str = "default"
    label: str = ""

    def value(self, metric: str) -> int:
        return self.metrics[metric].value

    def confidence(self, metric: str) -> float:
        return self.metrics[metric].confidence

    def as_dict(self) -> dict[str, int]:
        return {metric: pred.value for metric, pred in self.metrics.items()}

    def cli_dict(self, ndigits: int = 3) -> dict:
        """The CLI/JSONL output shape shared by local and remote paths."""
        return {
            metric: {
                "value": pred.value,
                "confidence": round(pred.confidence, ndigits),
            }
            for metric, pred in self.metrics.items()
        }


@dataclass(frozen=True)
class ProfileReport:
    """Ground-truth costs for one :class:`ProfileJob`.

    ``rtl_think`` carries the static substrate's RTL feature text (the
    ``profile --verbose`` output); empty when the producer skipped it.
    """

    costs: Mapping[str, int] = field(default_factory=dict)
    rtl_think: str = ""
    label: str = ""

    def as_dict(self) -> dict[str, int]:
        return dict(self.costs)


@dataclass(frozen=True)
class DesignChoice:
    """One ranked design-space candidate."""

    design: str
    predicted: Mapping[str, int] = field(default_factory=dict)
    score: float = 0.0
    actual: Optional[Mapping[str, int]] = None


@dataclass(frozen=True)
class ExploreReport:
    """Ranked candidates (best first) for one :class:`ExploreJob`."""

    candidates: tuple[DesignChoice, ...] = ()
    model: str = "default"
    cache_stats: Mapping[str, Any] = field(default_factory=dict)


def prediction_from_cost(cost: Any, model: str = "default", label: str = "") -> Prediction:
    """Lift a :class:`repro.core.CostPrediction` into the API type."""
    metrics = {
        metric: MetricPrediction(
            value=int(pred.value),
            confidence=float(pred.confidence),
            beam_values=tuple(int(v) for v in pred.beam_values),
        )
        for metric, pred in cost.per_metric.items()
    }
    return Prediction(metrics=metrics, model=model, label=label)
