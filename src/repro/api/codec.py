"""Versioned JSON codec for the API dataclasses.

One wire format shared by the CLI (``predict --jsonl``), the HTTP
server and :class:`~repro.serve.client.ServeClient`: every payload is a
JSON object carrying ``"schema"`` (the codec version) and ``"kind"``
(the dataclass it encodes).  Decoding a payload with a missing or
different schema version fails loudly with :class:`CodecError` instead
of mis-parsing — wire mismatches between client and server versions
surface as one-line errors, never as silently wrong numbers.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Optional, Type

from ..errors import ReproError
from ..hls import HardwareParams
from .types import (
    DesignChoice,
    ExploreJob,
    ExploreReport,
    MetricPrediction,
    PredictJob,
    Prediction,
    ProfileJob,
    ProfileReport,
)

SCHEMA_VERSION = 1

PARAM_FIELDS = (
    "mem_read_delay",
    "mem_write_delay",
    "pe_count",
    "memory_ports",
    "clock_period_ns",
)


class CodecError(ReproError):
    """Raised when a payload cannot be encoded or decoded."""


# -- hardware params -------------------------------------------------------


def params_to_payload(params: Optional[HardwareParams]) -> Optional[dict]:
    if params is None:
        return None
    return {
        "mem_read_delay": params.mem_read_delay,
        "mem_write_delay": params.mem_write_delay,
        "pe_count": params.pe_count,
        "memory_ports": params.memory_ports,
        "clock_period_ns": params.clock_period_ns,
    }


def params_from_payload(payload: Optional[dict]) -> Optional[HardwareParams]:
    """Hardware params from a JSON object.  ``mem_delay`` is accepted as
    shorthand that sets both read and write delay."""
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise CodecError(f"'params' must be an object, got {type(payload).__name__}")
    payload = dict(payload)
    kwargs: dict[str, Any] = {}
    mem_delay = payload.pop("mem_delay", None)
    if mem_delay is not None:
        kwargs["mem_read_delay"] = int(mem_delay)
        kwargs["mem_write_delay"] = int(mem_delay)
    for name in PARAM_FIELDS:
        if name in payload:
            value = payload.pop(name)
            kwargs[name] = float(value) if name == "clock_period_ns" else int(value)
    if payload:
        raise CodecError(f"unknown params fields: {sorted(payload)}")
    try:
        return HardwareParams(**kwargs)
    except (TypeError, ValueError) as exc:
        raise CodecError(f"invalid params: {exc}") from None


# -- per-type encoders/decoders --------------------------------------------


def _require(payload: dict, name: str, types: tuple, kind: str):
    value = payload.get(name)
    if not isinstance(value, types) or isinstance(value, bool):
        expected = "/".join(t.__name__ for t in types)
        raise CodecError(
            f"{kind} payload field {name!r} must be {expected}, "
            f"got {type(value).__name__}"
        )
    return value


def _optional_data(payload: dict, kind: str) -> Optional[dict]:
    data = payload.get("data")
    if data is None:
        return None
    if not isinstance(data, dict):
        raise CodecError(f"{kind} payload field 'data' must be an object")
    return data


def _encode_predict_job(job: PredictJob) -> dict:
    return {
        "program": job.source,
        "data": dict(job.data) if job.data else None,
        "params": params_to_payload(job.params),
        "model": job.model,
        "beam_width": job.beam_width,
        "label": job.label,
    }


def _decode_predict_job(payload: dict) -> PredictJob:
    return PredictJob(
        source=_require(payload, "program", (str,), "predict_job"),
        data=_optional_data(payload, "predict_job"),
        params=params_from_payload(payload.get("params")),
        model=payload.get("model"),
        beam_width=payload.get("beam_width"),
        label=str(payload.get("label") or ""),
    )


def _encode_profile_job(job: ProfileJob) -> dict:
    return {
        "program": job.source,
        "data": dict(job.data) if job.data else None,
        "params": params_to_payload(job.params),
        "seed": job.seed,
        "max_steps": job.max_steps,
        "backend": job.backend,
        "label": job.label,
    }


def _decode_profile_job(payload: dict) -> ProfileJob:
    max_steps = payload.get("max_steps")
    if max_steps is not None:
        if isinstance(max_steps, bool) or not isinstance(max_steps, int):
            raise CodecError(
                "profile_job payload field 'max_steps' must be an integer, "
                f"got {max_steps!r}"
            )
    return ProfileJob(
        source=_require(payload, "program", (str,), "profile_job"),
        data=_optional_data(payload, "profile_job"),
        params=params_from_payload(payload.get("params")),
        seed=int(payload.get("seed") or 0),
        max_steps=max_steps,
        backend=str(payload.get("backend") or "compiled"),
        label=str(payload.get("label") or ""),
    )


def _encode_explore_job(job: ExploreJob) -> dict:
    return {
        "program": job.source,
        "data": dict(job.data) if job.data else None,
        "unroll_factors": list(job.unroll_factors),
        "memory_delays": list(job.memory_delays),
        "max_candidates": job.max_candidates,
        "verify_top": job.verify_top,
        "model": job.model,
        "label": job.label,
    }


def _decode_explore_job(payload: dict) -> ExploreJob:
    # Explicit None checks: an encoded empty sweep or zero budget must
    # round-trip as-is, not silently decode to the defaults.
    unroll = payload.get("unroll_factors")
    delays = payload.get("memory_delays")
    max_candidates = payload.get("max_candidates")
    verify_top = payload.get("verify_top")
    return ExploreJob(
        source=_require(payload, "program", (str,), "explore_job"),
        data=_optional_data(payload, "explore_job"),
        unroll_factors=(1, 2, 4) if unroll is None else tuple(int(v) for v in unroll),
        memory_delays=(10,) if delays is None else tuple(int(v) for v in delays),
        max_candidates=16 if max_candidates is None else int(max_candidates),
        verify_top=0 if verify_top is None else int(verify_top),
        model=payload.get("model"),
        label=str(payload.get("label") or ""),
    )


def _encode_prediction(prediction: Prediction) -> dict:
    return {
        "model": prediction.model,
        "label": prediction.label,
        "metrics": {
            metric: {
                "value": pred.value,
                "confidence": pred.confidence,
                "beam_values": list(pred.beam_values),
            }
            for metric, pred in prediction.metrics.items()
        },
    }


def _decode_prediction(payload: dict) -> Prediction:
    metrics_payload = _require(payload, "metrics", (dict,), "prediction")
    metrics = {}
    for metric, entry in metrics_payload.items():
        if not isinstance(entry, dict) or "value" not in entry:
            raise CodecError(f"prediction metric {metric!r} entry is malformed")
        metrics[metric] = MetricPrediction(
            value=int(entry["value"]),
            confidence=float(entry.get("confidence", 0.0)),
            beam_values=tuple(int(v) for v in entry.get("beam_values") or ()),
        )
    return Prediction(
        metrics=metrics,
        model=str(payload.get("model") or "default"),
        label=str(payload.get("label") or ""),
    )


def _encode_profile_report(report: ProfileReport) -> dict:
    return {
        "costs": dict(report.costs),
        "rtl_think": report.rtl_think,
        "label": report.label,
    }


def _decode_profile_report(payload: dict) -> ProfileReport:
    costs = _require(payload, "costs", (dict,), "profile_report")
    return ProfileReport(
        costs={str(k): int(v) for k, v in costs.items()},
        rtl_think=str(payload.get("rtl_think") or ""),
        label=str(payload.get("label") or ""),
    )


def _encode_explore_report(report: ExploreReport) -> dict:
    return {
        "model": report.model,
        "cache_stats": dict(report.cache_stats),
        "candidates": [
            {
                "design": choice.design,
                "predicted": dict(choice.predicted),
                "score": choice.score,
                "actual": dict(choice.actual) if choice.actual is not None else None,
            }
            for choice in report.candidates
        ],
    }


def _decode_explore_report(payload: dict) -> ExploreReport:
    rows = _require(payload, "candidates", (list,), "explore_report")
    candidates = []
    for row in rows:
        if not isinstance(row, dict) or "design" not in row:
            raise CodecError("explore_report candidate entry is malformed")
        actual = row.get("actual")
        candidates.append(
            DesignChoice(
                design=str(row["design"]),
                predicted={str(k): int(v) for k, v in (row.get("predicted") or {}).items()},
                score=float(row.get("score") or 0.0),
                actual={str(k): int(v) for k, v in actual.items()}
                if isinstance(actual, dict)
                else None,
            )
        )
    return ExploreReport(
        candidates=tuple(candidates),
        model=str(payload.get("model") or "default"),
        cache_stats=dict(payload.get("cache_stats") or {}),
    )


_CODECS: dict[str, tuple[Type, Any, Any]] = {
    "predict_job": (PredictJob, _encode_predict_job, _decode_predict_job),
    "profile_job": (ProfileJob, _encode_profile_job, _decode_profile_job),
    "explore_job": (ExploreJob, _encode_explore_job, _decode_explore_job),
    "prediction": (Prediction, _encode_prediction, _decode_prediction),
    "profile_report": (ProfileReport, _encode_profile_report, _decode_profile_report),
    "explore_report": (ExploreReport, _encode_explore_report, _decode_explore_report),
}
_KIND_OF: dict[Type, str] = {cls: kind for kind, (cls, _, _) in _CODECS.items()}


# -- public surface --------------------------------------------------------


def to_payload(obj: Any) -> dict:
    """Encode an API dataclass into a versioned JSON-ready dict."""
    kind = _KIND_OF.get(type(obj))
    if kind is None:
        raise CodecError(f"cannot encode {type(obj).__name__}; not an API type")
    _, encode, _ = _CODECS[kind]
    payload = {"schema": SCHEMA_VERSION, "kind": kind}
    payload.update(encode(obj))
    return payload


def from_payload(payload: Any, expect: Optional[str] = None) -> Any:
    """Decode a versioned payload back into its API dataclass.

    ``expect`` (a kind name like ``"prediction"``) makes a wrong-kind
    payload fail with a clear message instead of returning a surprise
    type to the caller.
    """
    if not isinstance(payload, dict):
        raise CodecError(
            f"payload must be a JSON object, got {type(payload).__name__}"
        )
    schema = payload.get("schema")
    if schema is None:
        raise CodecError(
            "payload has no 'schema' field; refusing to guess the wire format"
        )
    if schema != SCHEMA_VERSION:
        raise CodecError(
            f"unsupported schema version {schema!r}; this build speaks "
            f"version {SCHEMA_VERSION}"
        )
    kind = payload.get("kind")
    if kind not in _CODECS:
        raise CodecError(f"unknown payload kind {kind!r}")
    if expect is not None and kind != expect:
        raise CodecError(f"expected a {expect!r} payload, got {kind!r}")
    _, _, decode = _CODECS[kind]
    return decode(payload)


def dumps(obj: Any) -> str:
    return json.dumps(to_payload(obj))


def loads(text: str) -> Any:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CodecError(f"invalid JSON: {exc}") from None
    return from_payload(payload)


# -- job files -------------------------------------------------------------


def read_program(path: str, validate: bool = True) -> str:
    """Program source from *path* (``-`` reads stdin).

    With ``validate`` (the default) the source is admission-checked by
    :class:`repro.analysis.ProgramValidator` before anything downstream
    touches it: definite errors (parse failures, undefined reads,
    unknown operators, bad arities, provable out-of-bounds subscripts)
    raise a one-line :class:`CodecError` whose ``reasons`` attribute
    lists every finding.  Warnings never block ingestion.
    """
    if path == "-":
        source = sys.stdin.read()
    else:
        try:
            with open(path) as handle:
                source = handle.read()
        except OSError as exc:
            reason = exc.strerror or exc
            raise CodecError(f"cannot read program {path!r}: {reason}") from None
    if validate:
        validate_source(source, origin=path)
    return source


def validate_source(source: str, origin: str = "<source>") -> None:
    """Admission-check program text; raise :class:`CodecError` (with a
    structured ``reasons`` list) on any validation error."""
    from ..analysis.cache import GLOBAL_ANALYSIS_CACHE

    report = GLOBAL_ANALYSIS_CACHE.validate(source)
    if report.ok:
        return
    reasons = report.reasons()
    suffix = f" (+{len(reasons) - 1} more)" if len(reasons) > 1 else ""
    error = CodecError(f"invalid program {origin!r}: {reasons[0]}{suffix}")
    error.reasons = reasons
    raise error


def predict_jobs_from_jsonl(
    path: str,
    params: Optional[HardwareParams] = None,
    model: Optional[str] = None,
) -> list[PredictJob]:
    """Parse a ``predict --jsonl`` job file.

    Each line is a JSON object with ``"program"`` (a path) or
    ``"source"`` (inline text), plus an optional ``"data"`` object.
    *params*/*model* apply to every job.
    """
    try:
        with open(path) as handle:
            lines = handle.readlines()
    except OSError as exc:
        reason = exc.strerror or exc
        raise CodecError(f"cannot read --jsonl {path!r}: {reason}") from None
    jobs: list[PredictJob] = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise CodecError(f"{path}:{number}: invalid JSON: {exc}") from None
        if not isinstance(record, dict) or not (
            isinstance(record.get("program"), str)
            or isinstance(record.get("source"), str)
        ):
            raise CodecError(
                f"{path}:{number}: each line needs a 'program' path "
                "or inline 'source'"
            )
        data = record.get("data") or {}
        if not isinstance(data, dict):
            raise CodecError(f"{path}:{number}: 'data' must be an object")
        if isinstance(record.get("program"), str):
            label = record["program"]
            source = read_program(record["program"])
        else:
            label = f"{path}:{number}"
            source = record["source"]
        jobs.append(
            PredictJob(
                source=source,
                data=data or None,
                params=params,
                model=model,
                label=label,
            )
        )
    if not jobs:
        raise CodecError(f"no records in --jsonl {path!r}")
    return jobs
