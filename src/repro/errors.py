"""Exception hierarchy shared across the repro packages.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class LexError(ReproError):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(ReproError):
    """Raised when the parser cannot derive a valid AST."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class AnalysisError(ReproError):
    """Raised when static analysis is asked about unknown entities."""


class RewriteError(ReproError):
    """Raised when a program rewrite cannot fire: the legality analysis
    refused it (the verdict's reasons are cited in the message), its
    structural preconditions do not hold, or the rewritten program
    failed re-validation."""


class ValidationError(ReproError):
    """Raised when program validation rejects an ingested program.

    ``reasons`` holds one line per validation error so ingestion
    boundaries (codec, serve, campaign) can surface structured detail.
    """

    def __init__(self, message: str, reasons: list[str] | None = None) -> None:
        reasons = list(reasons or [])
        if reasons:
            message = f"{message}: {reasons[0]}" + (
                f" (+{len(reasons) - 1} more)" if len(reasons) > 1 else ""
            )
        super().__init__(message)
        self.reasons = reasons


class LoweringError(ReproError):
    """Raised when an AST cannot be lowered to the requested IR."""


class SchedulingError(ReproError):
    """Raised when the HLS scheduler cannot schedule an operation."""


class SimulationError(ReproError):
    """Raised when the cycle simulator fails to execute a program."""


class SimulationLimitExceeded(SimulationError):
    """Raised when a simulation exceeds its configured step budget."""


class UnsupportedWorkloadError(ReproError):
    """Raised by rule-based models (e.g. the Timeloop substitute) when a
    workload falls outside their expressible domain."""


class TokenizationError(ReproError):
    """Raised when text cannot be tokenized under the active vocabulary."""


class ModelConfigError(ReproError):
    """Raised for inconsistent neural model configurations."""


class CalibrationError(ReproError):
    """Raised when the dynamic calibration loop is misconfigured."""


class DatasetError(ReproError):
    """Raised when dataset synthesis or formatting fails."""


class ServeError(ReproError):
    """Raised by the prediction service (engine, server or client)."""


class ObsError(ReproError):
    """Raised by the observability layer (bench suite registry, history
    ledger, regression sentinel, resource profiler)."""


class CampaignError(ReproError):
    """Raised by the campaign subsystem (spec, journal, runner, report)."""


class CampaignInterrupted(CampaignError):
    """Raised when a campaign run stops before completing every cell
    (evaluation cap reached); the journal holds the finished prefix and
    ``campaign resume`` continues from it."""
