"""Progressive program encoding (paper Section 4.1).

Two-phase tokenization:

* **Symbol isolation** — protective spaces are inserted around numeric
  literals so signs and digits encode independently
  (``"-128"`` → ``"- 128"``).
* **Encoding** — each digit becomes its own token, so an ``n``-digit
  number costs exactly ``n`` tokens and unseen magnitudes decompose
  into familiar pieces.

The ``whole`` mode reproduces the conventional encoding baselines use
(one hashed bucket token per literal), which is what the paper's
``NoEnc`` ablation measures.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Literal, Optional

import numpy as np

from ..errors import TokenizationError
from .vocab import (
    BOS,
    EOS,
    SEG_DATA,
    SEG_GRAPH,
    SEG_OP,
    SEG_PARAMS,
    SEP,
    THINK_CLOSE,
    THINK_OPEN,
    VOCAB,
    Vocabulary,
)

NumericMode = Literal["digit", "whole"]

_NUMBER_RE = re.compile(r"\d+\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?|\.\d+")
_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*")
_PUNCT_RE = re.compile(
    r"==|!=|<=|>=|&&|\|\||\+\+|--|\+=|-=|\*=|/=|%=|<<|>>|[-+*/%<>=!&|^()\[\]{},;?:#.]"
)
_TOKEN_RE = re.compile(
    rf"(?P<num>{_NUMBER_RE.pattern})|(?P<word>{_WORD_RE.pattern})|(?P<punct>{_PUNCT_RE.pattern})"
)


def isolate_numbers(text: str) -> str:
    """Symbol-isolation phase: space-protect every numeric literal."""

    def protect(match: re.Match) -> str:
        return " " + " ".join(match.group(0)) + " "

    return _NUMBER_RE.sub(protect, text)


@dataclass
class ModelInput:
    """The paper's input quadruple rendered as text segments."""

    graph_text: str
    op_texts: list[str] = field(default_factory=list)
    params_text: str = ""
    data_text: str = ""
    think_text: str = ""

    @property
    def full_text(self) -> str:
        parts = [self.graph_text, *self.op_texts, self.params_text, self.data_text]
        return "\n".join(p for p in parts if p)


@dataclass
class TokenizedInput:
    """Token ids plus segment metadata for masking and caching."""

    ids: np.ndarray
    segment_names: list[str]
    segment_slices: dict[str, slice]

    def __len__(self) -> int:
        return len(self.ids)

    def slice_of(self, name: str) -> slice:
        if name not in self.segment_slices:
            raise TokenizationError(f"no segment named {name!r}")
        return self.segment_slices[name]


class ProgressiveTokenizer:
    """Tokenizer with switchable numeric handling."""

    def __init__(
        self,
        numeric_mode: NumericMode = "digit",
        vocab: Vocabulary = VOCAB,
        max_length: int = 512,
    ) -> None:
        if numeric_mode not in ("digit", "whole"):
            raise TokenizationError(f"unknown numeric mode {numeric_mode!r}")
        self.numeric_mode = numeric_mode
        self.vocab = vocab
        self.max_length = max_length

    # -- plain text ------------------------------------------------------

    def tokens_of(self, text: str) -> list[str]:
        """Token strings for *text* (before id mapping)."""
        tokens: list[str] = []
        for match in _TOKEN_RE.finditer(text):
            if match.lastgroup == "num":
                tokens.extend(self._number_tokens(match.group(0)))
            elif match.lastgroup == "word":
                word = match.group(0)
                tokens.append(word if word in self.vocab else self.vocab.ident_token(word))
            else:
                tokens.append(match.group(0))
        return tokens

    def _number_tokens(self, literal: str) -> list[str]:
        if self.numeric_mode == "whole":
            return [self.vocab.number_token(literal)]
        tokens: list[str] = []
        for char in literal:
            if char.isdigit():
                tokens.append(char)
            elif char == ".":
                tokens.append(".num")
            elif char in "eE":
                tokens.append("e-num")
            elif char == "-":
                tokens.append("-num")
            elif char == "+":
                continue
            else:  # pragma: no cover - regex prevents this
                raise TokenizationError(f"bad numeric char {char!r}")
        return tokens

    def encode_text(self, text: str) -> list[int]:
        return [self.vocab.id_of(token) for token in self.tokens_of(text)]

    def decode(self, ids: list[int] | np.ndarray) -> str:
        """Best-effort inverse (used in tests): token strings joined."""
        return " ".join(self.vocab.token_of(int(i)) for i in ids)

    # -- structured input --------------------------------------------------

    def encode_bundle(self, bundle: ModelInput) -> TokenizedInput:
        """Encode a structured input with segment tracking.

        Segments are named ``graph``, ``op0`` … ``opN``, ``params`` and
        ``data`` — the units the separation mask and the attention cache
        address.
        """
        ids: list[int] = [self.vocab.id_of(BOS)]
        names: list[str] = ["graph"]
        slices: dict[str, slice] = {}

        def add_segment(name: str, marker: str, text: str) -> None:
            if not text:
                return
            start = len(ids)
            ids.append(self.vocab.id_of(marker))
            ids.extend(self.encode_text(text))
            ids.append(self.vocab.id_of(SEP))
            slices[name] = slice(start, len(ids))
            names.extend([name] * (len(ids) - start))

        # Params and data lead so truncation of long operator bodies
        # never removes the hardware configuration or runtime inputs.
        add_segment("params", SEG_PARAMS, bundle.params_text)
        add_segment("data", SEG_DATA, bundle.data_text)
        add_segment("graph", SEG_GRAPH, bundle.graph_text)
        if bundle.think_text:
            start = len(ids)
            ids.append(self.vocab.id_of(THINK_OPEN))
            ids.extend(self.encode_text(bundle.think_text))
            ids.append(self.vocab.id_of(THINK_CLOSE))
            slices["think"] = slice(start, len(ids))
            names.extend(["think"] * (len(ids) - start))
        for index, op_text in enumerate(bundle.op_texts):
            add_segment(f"op{index}", SEG_OP, op_text)
        ids.append(self.vocab.id_of(EOS))
        names.append("eos")
        if len(ids) > self.max_length:
            ids = ids[: self.max_length]
            names = names[: self.max_length]
            slices = {
                name: slice(s.start, min(s.stop, self.max_length))
                for name, s in slices.items()
                if s.start < self.max_length
            }
        return TokenizedInput(
            ids=np.asarray(ids, dtype=np.int64),
            segment_names=names,
            segment_slices=slices,
        )
