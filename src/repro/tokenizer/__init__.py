"""Progressive program encoding (input side of numeric modeling)."""

from .progressive import (
    ModelInput,
    NumericMode,
    ProgressiveTokenizer,
    TokenizedInput,
    isolate_numbers,
)
from .vocab import VOCAB, Vocabulary

__all__ = [
    "ProgressiveTokenizer",
    "ModelInput",
    "TokenizedInput",
    "NumericMode",
    "isolate_numbers",
    "Vocabulary",
    "VOCAB",
]
