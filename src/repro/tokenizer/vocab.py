"""Vocabulary for dataflow program text.

The vocabulary is closed and deterministic: keywords, punctuation,
digits, hashed identifier buckets and hashed whole-number buckets.  The
digit tokens implement the paper's progressive numeric encoding; the
whole-number buckets implement the conventional ("default") encoding
baselines are stuck with.
"""

from __future__ import annotations

import hashlib

from ..lang.tokens import KEYWORDS, PUNCTUATORS

PAD = "<pad>"
UNK = "<unk>"
BOS = "<bos>"
EOS = "<eos>"
SEP = "<sep>"
SEG_GRAPH = "<G>"
SEG_OP = "<OP>"
SEG_PARAMS = "<PARAMS>"
SEG_DATA = "<DATA>"
THINK_OPEN = "<think>"
THINK_CLOSE = "</think>"

SPECIAL_TOKENS = (
    PAD,
    UNK,
    BOS,
    EOS,
    SEP,
    SEG_GRAPH,
    SEG_OP,
    SEG_PARAMS,
    SEG_DATA,
    THINK_OPEN,
    THINK_CLOSE,
)

DIGIT_TOKENS = tuple(str(d) for d in range(10))
SIGN_TOKENS = ("-num", ".num", "e-num")

_EXTRA_WORDS = (
    "pragma",
    "unroll",
    "parallel",
    "omp",
    "clang",
    "loop",
    "full",
    "mem",
    "delay",
    "read",
    "write",
    "pe",
    "count",
    "memory",
    "ports",
    "clock",
    "period",
    "array",
    "Number",
    "of",
    "modules",
    "instantiated",
    "performance",
    "conflicts",
    "Estimated",
    "resources",
    "area",
    "MUX21",
    "allocated",
    "multiplexers",
)

IDENT_BUCKETS = 64
NUMBER_BUCKETS = 64


def _stable_hash(text: str) -> int:
    digest = hashlib.md5(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little")


class Vocabulary:
    """Bidirectional token <-> id mapping."""

    def __init__(self) -> None:
        tokens: list[str] = list(SPECIAL_TOKENS)
        tokens.extend(DIGIT_TOKENS)
        tokens.extend(SIGN_TOKENS)
        tokens.extend(sorted(KEYWORDS))
        tokens.extend(_EXTRA_WORDS)
        tokens.extend(PUNCTUATORS)
        tokens.append("#")
        tokens.extend(f"id{i}" for i in range(IDENT_BUCKETS))
        tokens.extend(f"num{i}" for i in range(NUMBER_BUCKETS))
        self._token_to_id = {token: i for i, token in enumerate(tokens)}
        self._id_to_token = tokens

    def __len__(self) -> int:
        return len(self._id_to_token)

    def id_of(self, token: str) -> int:
        return self._token_to_id.get(token, self._token_to_id[UNK])

    def token_of(self, token_id: int) -> str:
        if 0 <= token_id < len(self._id_to_token):
            return self._id_to_token[token_id]
        return UNK

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def ident_token(self, name: str) -> str:
        """Bucketed token for an identifier."""
        return f"id{_stable_hash(name) % IDENT_BUCKETS}"

    def number_token(self, literal: str) -> str:
        """Bucketed token for a whole-number literal (default encoding).

        This is deliberately lossy: distinct magnitudes can collide and
        unseen literals land in arbitrary buckets — the semantic
        distortion the paper attributes to conventional tokenizers.
        """
        return f"num{_stable_hash(literal) % NUMBER_BUCKETS}"


VOCAB = Vocabulary()
