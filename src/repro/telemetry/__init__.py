"""``repro.telemetry`` — unified metrics, tracing and timeline export.

The observability layer for the whole stack:

* :mod:`~repro.telemetry.clock` — the one sanctioned wall-clock
  (REPRO006: timing anywhere else in ``src/repro`` must route through
  it);
* :mod:`~repro.telemetry.metrics` — the process-wide
  :class:`MetricsRegistry` of namespaced Counter/Gauge/Histogram
  instruments plus collector adapters over the legacy stats islands;
* :mod:`~repro.telemetry.trace` — span tracing with trace-id
  propagation (client → HTTP header → server → engine → batcher) and a
  bounded ring buffer of completed traces;
* :mod:`~repro.telemetry.export` — JSONL and Chrome-trace (Perfetto)
  sidecar files for campaign runs.

Module-level singletons ``METRICS`` and ``TRACER`` are what the
instrumented hot paths use; ``REPRO_TELEMETRY=off`` (or
:func:`set_enabled`) turns every recording site into a near-free
branch while :func:`clock.now` stays live for user-facing durations.
"""

from __future__ import annotations

from . import clock
from .clock import timed_call
from .export import (
    TimelineRecorder,
    chrome_trace,
    spans_to_jsonl,
    timeline_from_journal,
    write_chrome_trace,
    write_journal_timeline,
)
from .metrics import (
    DURATION_MS_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .state import STATE
from .trace import Span, SpanContext, Tracer

__all__ = [
    "METRICS",
    "TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "TimelineRecorder",
    "Tracer",
    "DURATION_MS_BUCKETS",
    "SIZE_BUCKETS",
    "chrome_trace",
    "clock",
    "enabled",
    "set_enabled",
    "snapshot",
    "spans_to_jsonl",
    "timed_call",
    "timeline_from_journal",
    "write_chrome_trace",
    "write_journal_timeline",
]

METRICS = MetricsRegistry()
TRACER = Tracer()


def enabled() -> bool:
    """Whether telemetry recording is on for this process."""
    return STATE.enabled


def set_enabled(value: bool) -> bool:
    """Flip recording on/off at runtime; returns the previous state."""
    previous = STATE.enabled
    STATE.enabled = bool(value)
    return previous


def snapshot() -> dict:
    """The process-wide unified metrics snapshot (``/metrics`` body)."""
    return METRICS.snapshot()
