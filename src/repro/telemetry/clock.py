"""The telemetry clock — the one place ``src/repro`` reads wall time.

Every latency, duration and span timestamp in the library flows through
these functions (enforced by lint rule ``REPRO006``), so the timing
policy lives in exactly one module:

* values derived from the clock never enter deterministic artifacts
  (journals, codecs) — they stay in telemetry sidecars and stats;
* the clock itself stays **live even when telemetry is disabled**:
  callers that surface durations to users (trainer wall-seconds,
  baseline latency columns) keep working with ``REPRO_TELEMETRY=off``;
  only span/metric *recording* is switched off.

``now()`` is monotonic and suitable for intervals; ``now_ms()`` is the
same clock in milliseconds (the unit the histogram buckets use).
"""

from __future__ import annotations

import time


def now() -> float:
    """Monotonic seconds; subtract two calls for a duration."""
    return time.perf_counter()


def now_ms() -> float:
    """Monotonic milliseconds (the histogram-bucket unit)."""
    return time.perf_counter() * 1000.0


def timed_call(fn, *args, **kwargs):
    """``(result, elapsed_seconds)`` of one call — the shared timing
    wrapper (baselines' ``timed_predict``, ad-hoc latency probes)."""
    start = now()
    result = fn(*args, **kwargs)
    return result, now() - start
