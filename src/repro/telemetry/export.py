"""Span export: JSONL sidecars and Chrome-trace (Perfetto) timelines.

Two serializations of the same spans:

* **JSONL** — one ``Span.as_dict()`` object per line; grep-able,
  stream-appendable, the machine-readable sidecar.
* **Chrome trace events** — a ``{"traceEvents": [...]}`` JSON document
  loadable in Perfetto / ``chrome://tracing``; spans become complete
  (``"ph": "X"``) events on one lane per producing thread.

Both are **sidecar** files: they sit next to a campaign's journal but
never inside it.  The journal stays a timestamp-free deterministic
function of the spec (REPRO004), so a run with ``--timeline`` is
byte-identical to one without.

:func:`timeline_from_journal` is the time-free complement: it rebuilds
a *logical* timeline (one tick per journaled evaluation, one lane per
cell) from an existing journal, so ``campaign report --timeline`` can
render any historical run without having traced it.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

from .trace import Span


def spans_to_jsonl(spans: Sequence[Span], path: str) -> int:
    """Write one span per line; returns the number written."""
    with open(path, "w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span.as_dict(), sort_keys=True) + "\n")
    return len(spans)


def chrome_trace(spans: Sequence[Span]) -> dict:
    """Spans → a Chrome trace-event document (Perfetto-loadable).

    Timestamps are microseconds relative to the earliest span start;
    each producing thread gets its own lane, named via ``thread_name``
    metadata events.  Span attrs ride along in ``args`` together with
    the trace/span ids, so a lane's events can be regrouped by trace
    inside the viewer.
    """
    finished = [span for span in spans if span.end is not None]
    if not finished:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    base = min(span.start for span in finished)
    threads = {
        name: index
        for index, name in enumerate(
            sorted({span.thread or "main" for span in finished}), start=1
        )
    }
    events = [
        {
            "ph": "M",
            "name": "thread_name",
            "pid": 1,
            "tid": tid,
            "args": {"name": name},
        }
        for name, tid in threads.items()
    ]
    for span in finished:
        args = {"trace_id": span.trace_id, "span_id": span.span_id}
        if span.parent_id:
            args["parent_id"] = span.parent_id
        if span.status != "ok":
            args["status"] = span.status
            if span.error:
                args["error"] = span.error
        args.update(span.attrs)
        event = {
            "ph": "X",
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "pid": 1,
            "tid": threads[span.thread or "main"],
            "ts": round((span.start - base) * 1e6, 3),
            "dur": round((span.end - span.start) * 1e6, 3),
            "args": args,
        }
        if span.status != "ok":
            # Reserved Chrome-trace color name: renders the slice red in
            # Perfetto / chrome://tracing, so failures jump out of a
            # timeline without opening each slice's args.
            event["cname"] = "terrible"
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Sequence[Span], path: str) -> int:
    """Write the Chrome trace document; returns the event count."""
    document = chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(document["traceEvents"])


def timeline_from_journal(records: Sequence[dict]) -> dict:
    """A logical (index-based) Chrome timeline from journal records.

    Journals carry no timestamps by design, so each evaluation becomes
    one unit-length event at its journal position, laned by cell id —
    the order and per-cell distribution of work, without wall time.
    """
    cells: dict[str, int] = {}
    events: list[dict] = []
    tick = 0
    for record in records:
        if record.get("kind") != "eval":
            continue
        cell = str(record.get("cell", "?"))
        if cell not in cells:
            cells[cell] = len(cells) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 1,
                    "tid": cells[cell],
                    "args": {"name": cell},
                }
            )
        args: dict = {"cell": cell, "design": record.get("design", "")}
        actual = record.get("actual")
        if isinstance(actual, dict):
            args.update(actual)
        events.append(
            {
                "ph": "X",
                "name": "campaign.evaluate",
                "cat": "campaign",
                "pid": 1,
                "tid": cells[cell],
                "ts": tick * 1000.0,
                "dur": 1000.0,
                "args": args,
            }
        )
        tick += 1
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_journal_timeline(records: Sequence[dict], path: str) -> int:
    document = timeline_from_journal(records)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(document["traceEvents"])


class TimelineRecorder:
    """Collects the spans completed during one scope for export.

    ::

        recorder = TimelineRecorder(tracer)
        with recorder:
            ...  # run the campaign
        recorder.write(path)            # Chrome trace sidecar
        recorder.write_jsonl(path2)     # JSONL sidecar
    """

    def __init__(self, tracer) -> None:
        self._tracer = tracer
        self._start_seq: Optional[int] = None
        self.spans: list[Span] = []

    def __enter__(self) -> "TimelineRecorder":
        self._start_seq = self._tracer.seq
        return self

    def __exit__(self, *exc_info) -> None:
        self.spans = self._tracer.spans_since(self._start_seq or 0)

    def write(self, path: str) -> int:
        return write_chrome_trace(self.spans, path)

    def write_jsonl(self, path: str) -> int:
        return spans_to_jsonl(self.spans, path)
