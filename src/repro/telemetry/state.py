"""Shared telemetry on/off switch.

One mutable flag object imported by every telemetry module (metrics
instruments, the tracer) so a single check — ``STATE.enabled`` — gates
all recording.  The flag is initialized from ``REPRO_TELEMETRY``
(``off``/``0``/``false``/``no`` disable it; anything else, including
unset, leaves it on) and can be flipped at runtime via
:func:`repro.telemetry.set_enabled` (tests, the overhead bench).
"""

from __future__ import annotations

import os

_OFF_VALUES = {"off", "0", "false", "no", "disabled"}


class _State:
    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = (
            os.environ.get("REPRO_TELEMETRY", "on").strip().lower()
            not in _OFF_VALUES
        )


STATE = _State()
