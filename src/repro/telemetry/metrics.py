"""Process-wide metrics registry: typed, namespaced instruments.

Three instrument kinds, all thread-safe and cheap enough for hot paths:

* :class:`Counter` — monotonically increasing count
  (``serve.requests``, ``analysis.cache.hits``);
* :class:`Gauge` — last-written value (``serve.models.loaded``);
* :class:`Histogram` — fixed-bucket distribution with sum/count/min/max
  (``serve.batch.queue_wait_ms``, ``model.encode.batch_size``).

Instruments are created on first use (``registry.counter(name)``) and
live for the process; names are dot-namespaced by subsystem.  Besides
instruments, the registry absorbs the pre-existing ad-hoc stats islands
(``PredictionEngine.stats_dict()``, ``BatchStats.as_dict()``, cache
counters) through **collectors** — callables polled at snapshot time —
so ``/metrics`` is one coherent view without rewriting every counter
the codebase already keeps.

Disabled mode (``REPRO_TELEMETRY=off``, or :func:`repro.telemetry.
set_enabled`): instrument writes return after one attribute check, so
instrumented hot paths pay nanoseconds, not lock traffic.
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Optional, Sequence

from .state import STATE

# Default buckets for *_ms histograms: sub-millisecond queue waits up
# through multi-second campaign evaluations.
DURATION_MS_BUCKETS: tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)
# Default buckets for size-like histograms (batch sizes, chunk sizes).
SIZE_BUCKETS: tuple[float, ...] = (1, 2, 3, 4, 6, 8, 12, 16, 32, 64)


class Counter:
    """Monotonic counter.  ``inc()`` is a no-op while telemetry is off."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if not STATE.enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def as_dict(self) -> int:
        return self._value


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float = 0.0

    def set(self, value: float) -> None:
        if not STATE.enabled:
            return
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def as_dict(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    Buckets are upper bounds; an implicit ``+Inf`` bucket catches the
    tail.  ``observe`` is O(log buckets) under one lock.
    """

    __slots__ = ("name", "buckets", "_counts", "_sum", "_count",
                 "_min", "_max", "_lock")

    def __init__(
        self, name: str, buckets: Sequence[float] = DURATION_MS_BUCKETS
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        self.name = name
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf tail
        self._sum = 0.0
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        if not STATE.enabled:
            return
        value = float(value)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def as_dict(self) -> dict:
        with self._lock:
            labels = [f"le_{bound:g}" for bound in self.buckets] + ["le_inf"]
            return {
                "count": self._count,
                "sum": round(self._sum, 6),
                "mean": round(self.mean, 6),
                "min": self._min,
                "max": self._max,
                "buckets": {
                    label: count
                    for label, count in zip(labels, self._counts)
                    if count
                },
            }


class MetricsRegistry:
    """Name → instrument map plus the collector adapters.

    ``counter``/``gauge``/``histogram`` are get-or-create and fail
    loudly on a kind clash (one name cannot be both a counter and a
    gauge).  ``register_collector`` absorbs an existing ``stats_dict``
    island; collectors are replaced by name, so a fresh server
    re-registering its engine does not leak the previous one.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._collectors: dict[str, Callable[[], dict]] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: type, factory):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}"
                    )
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: Sequence[float] = DURATION_MS_BUCKETS
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets)
        )

    def register_collector(self, name: str, fn: Callable[[], dict]) -> None:
        """Adopt a legacy stats island; polled at snapshot time."""
        with self._lock:
            self._collectors[name] = fn

    def unregister_collector(self, name: str) -> None:
        with self._lock:
            self._collectors.pop(name, None)

    def collector(self, name: str) -> Optional[Callable[[], dict]]:
        """The registered collector, if any (lets an owner check it
        still holds a slot before unregistering on shutdown)."""
        with self._lock:
            return self._collectors.get(name)

    def snapshot(self) -> dict:
        """One coherent view: every instrument plus every absorbed
        island, keyed by namespaced name."""
        with self._lock:
            instruments = dict(self._instruments)
            collectors = dict(self._collectors)
        out: dict = {
            "enabled": STATE.enabled,
            "counters": {},
            "gauges": {},
            "histograms": {},
            "collected": {},
        }
        for name in sorted(instruments):
            instrument = instruments[name]
            if isinstance(instrument, Counter):
                out["counters"][name] = instrument.as_dict()
            elif isinstance(instrument, Gauge):
                out["gauges"][name] = instrument.as_dict()
            else:
                out["histograms"][name] = instrument.as_dict()
        for name in sorted(collectors):
            try:
                out["collected"][name] = collectors[name]()
            except Exception as exc:  # a dying island must not kill /metrics
                out["collected"][name] = {"error": f"{type(exc).__name__}: {exc}"}
        return out

    def reset(self) -> None:
        """Zero every instrument and drop the collectors (test/bench
        isolation).  Instruments stay registered — modules cache them
        in globals at import time, so dropping them here would orphan
        those cached references from all future snapshots."""
        with self._lock:
            for instrument in self._instruments.values():
                if isinstance(instrument, Counter):
                    with instrument._lock:
                        instrument._value = 0
                elif isinstance(instrument, Gauge):
                    instrument._value = 0.0
                else:
                    with instrument._lock:
                        instrument._counts = [0] * (len(instrument.buckets) + 1)
                        instrument._sum = 0.0
                        instrument._count = 0
                        instrument._min = None
                        instrument._max = None
            self._collectors.clear()
