"""Span-based request tracing with propagated trace ids.

A **span** is one timed operation (``server.predict``,
``serve.batch.flush``, ``engine.predict``, ``model.encode``); spans
nest through a context variable, so ``with tracer.span(...)`` inside an
active span becomes its child automatically.  A **trace** is the tree
of spans sharing one trace id — for a served prediction it stretches
``ServeClient`` → HTTP header (``X-Repro-Trace-Id``) → server handler
→ session/engine → micro-batcher flush, across threads, because the
batcher carries each queued item's :class:`SpanContext` to the worker.

Completed spans land in a bounded ring buffer (old traces fall off the
end; a long-lived server never grows without bound) and are exposed at
``/traces/<id>`` and through :mod:`repro.telemetry.export`.

Disabled mode: :meth:`Tracer.span` returns one shared no-op handle —
no ids, no clock reads, no allocation.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict, deque
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator, Optional

from . import clock
from .state import STATE


# HTTP header names carrying a SpanContext across the serve boundary.
TRACE_ID_HEADER = "X-Repro-Trace-Id"
SPAN_ID_HEADER = "X-Repro-Span-Id"


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of an active span."""

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One completed (or in-flight) timed operation."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    start: float
    end: Optional[float] = None
    attrs: dict = field(default_factory=dict)
    status: str = "ok"
    error: Optional[str] = None
    thread: str = ""
    seq: int = 0

    @property
    def duration_ms(self) -> Optional[float]:
        if self.end is None:
            return None
        return (self.end - self.start) * 1000.0

    def as_dict(self) -> dict:
        out = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": round(self.start, 6),
            "duration_ms": (
                round(self.duration_ms, 3) if self.end is not None else None
            ),
            "status": self.status,
            "thread": self.thread,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.error:
            out["error"] = self.error
        return out


def _new_id() -> str:
    return os.urandom(8).hex()


_CURRENT: ContextVar[Optional[SpanContext]] = ContextVar(
    "repro_trace_context", default=None
)


class _SpanHandle:
    """Context manager for one live span."""

    __slots__ = ("_tracer", "span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._token = None

    def set_attr(self, key: str, value) -> None:
        self.span.attrs[key] = value

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.span.trace_id, self.span.span_id)

    def __enter__(self) -> "_SpanHandle":
        self._token = _CURRENT.set(self.context)
        self._tracer._open_span(self.span)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        self.span.end = clock.now()
        # exc_type, not exc: `raise SomeError` string-exceptions and
        # exceptions with a falsy value still mark the span as failed.
        if exc_type is not None:
            self.span.status = "error"
            self.span.error = f"{exc_type.__name__}: {exc}"
        self._tracer._record(self.span)
        # never suppress the exception


class _NoopHandle:
    """Shared do-nothing stand-in while telemetry is disabled."""

    __slots__ = ()
    span = None
    context = None

    def set_attr(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NoopHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP = _NoopHandle()


class Tracer:
    """Span factory plus the bounded buffer of completed traces."""

    def __init__(self, max_spans: int = 8192, max_traces: int = 256) -> None:
        self.max_spans = max_spans
        self.max_traces = max_traces
        self._spans: deque[Span] = deque(maxlen=max_spans)
        self._traces: "OrderedDict[str, list[Span]]" = OrderedDict()
        self._open: "OrderedDict[str, Span]" = OrderedDict()
        self._lock = threading.Lock()
        self._seq = 0

    # -- span creation ---------------------------------------------------

    def span(
        self,
        name: str,
        attrs: Optional[dict] = None,
        context: Optional[SpanContext] = None,
    ):
        """A context manager opening one span.

        Parentage: an explicit *context* (e.g. decoded from an HTTP
        header or carried across a queue) wins; otherwise the innermost
        active span on this execution context; otherwise a new root
        trace is started.
        """
        if not STATE.enabled:
            return _NOOP
        parent = context if context is not None else _CURRENT.get()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = _new_id(), None
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=_new_id(),
            parent_id=parent_id,
            start=clock.now(),
            attrs=dict(attrs) if attrs else {},
            thread=threading.current_thread().name,
        )
        return _SpanHandle(self, span)

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        attrs: Optional[dict] = None,
        context: Optional[SpanContext] = None,
        status: str = "ok",
        error: Optional[str] = None,
    ) -> None:
        """Record an already-timed interval as a completed span (the
        micro-batcher's queue-wait, measured enqueue → flush).  Pass
        ``status="error"`` / ``error="Type: msg"`` for intervals whose
        work failed after the fact."""
        if not STATE.enabled:
            return
        parent = context if context is not None else _CURRENT.get()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = _new_id(), None
        self._record(
            Span(
                name=name,
                trace_id=trace_id,
                span_id=_new_id(),
                parent_id=parent_id,
                start=start,
                end=end,
                attrs=dict(attrs) if attrs else {},
                status=status,
                error=error,
                thread=threading.current_thread().name,
            )
        )

    def current_context(self) -> Optional[SpanContext]:
        """The innermost active span's context, if any (captured at
        enqueue time to carry a trace across a thread boundary)."""
        if not STATE.enabled:
            return None
        return _CURRENT.get()

    # -- storage ---------------------------------------------------------

    def _open_span(self, span: Span) -> None:
        """Register an in-flight span (entered, not yet recorded) so the
        resource profiler can attribute samples to it."""
        with self._lock:
            self._open[span.span_id] = span

    def _record(self, span: Span) -> None:
        with self._lock:
            self._open.pop(span.span_id, None)
            self._seq += 1
            span.seq = self._seq
            self._spans.append(span)
            bucket = self._traces.get(span.trace_id)
            if bucket is None:
                while len(self._traces) >= self.max_traces:
                    self._traces.popitem(last=False)
                bucket = []
                self._traces[span.trace_id] = bucket
            bucket.append(span)

    def attribute_open(self, cpu_ms: float, peak_kb: float = 0.0) -> int:
        """Charge one profiler sample to the currently-open spans.

        The CPU delta is split evenly across the *leaf* open spans (open
        spans no other open span claims as parent), so nested spans are
        not double-billed: ``server.predict`` wrapping ``model.encode``
        leaves the bill with ``model.encode``.  ``peak_kb`` (a
        traced-memory high-water mark) is recorded as a running max on
        every open span, because a peak inside a child is also a peak
        inside its parent.  Returns the number of leaf spans charged.

        Mutation happens under the tracer lock, and :meth:`_record`
        removes a span from the open set under the same lock *before*
        it becomes export-visible — a completed span is never touched.
        """
        with self._lock:
            if not self._open:
                return 0
            parents = {
                span.parent_id for span in self._open.values() if span.parent_id
            }
            leaves = [
                span
                for span in self._open.values()
                if span.span_id not in parents
            ]
            if leaves and cpu_ms > 0.0:
                share = cpu_ms / len(leaves)
                for span in leaves:
                    span.attrs["cpu_ms"] = round(
                        span.attrs.get("cpu_ms", 0.0) + share, 3
                    )
                    span.attrs["cpu_samples"] = (
                        span.attrs.get("cpu_samples", 0) + 1
                    )
            if peak_kb > 0.0:
                rounded = round(peak_kb, 1)
                for span in self._open.values():
                    if rounded > span.attrs.get("peak_kb", 0.0):
                        span.attrs["peak_kb"] = rounded
            return len(leaves)

    # -- introspection ---------------------------------------------------

    def open_spans(self) -> list[Span]:
        """The in-flight spans, oldest-entered first (live objects — do
        not mutate; the profiler goes through :meth:`attribute_open`)."""
        with self._lock:
            return list(self._open.values())

    def trace(self, trace_id: str) -> list[Span]:
        """Completed spans of one trace, in completion order."""
        with self._lock:
            return list(self._traces.get(trace_id, ()))

    def trace_ids(self) -> list[str]:
        """Buffered trace ids, oldest first."""
        with self._lock:
            return list(self._traces)

    def spans_since(self, seq: int) -> list[Span]:
        """Completed spans with ``span.seq > seq`` (timeline export
        collects exactly the spans of one run this way)."""
        with self._lock:
            return [span for span in self._spans if span.seq > seq]

    @property
    def seq(self) -> int:
        """Sequence number of the newest completed span."""
        with self._lock:
            return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        with self._lock:
            return iter(list(self._spans))

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._traces.clear()
            self._open.clear()
