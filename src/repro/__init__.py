"""LLMulator reproduction: generalizable cost modeling for dataflow
accelerators with input-adaptive control flow (MICRO 2025).

Public entry points:

* :mod:`repro.lang` -- the mini dataflow language the cost models consume.
* :mod:`repro.profiler` -- the ground-truth oracle (HLS + ASIC flow +
  cycle simulation) producing ``<Power, Area, FF, Cycles>`` labels.
* :mod:`repro.core` -- the LLMulator cost model: progressive numeric
  modeling, DPO-based dynamic calibration, control-flow separation and
  attention-cache acceleration.
* :mod:`repro.baselines` -- TLP, GNNHLS, Tenset-MLP and the Timeloop-like
  analytical model.
* :mod:`repro.datagen` -- the progressive dataset synthesizer.
* :mod:`repro.workloads` -- Polybench kernels, 14 modern applications and
  accelerator mapping case studies.
* :mod:`repro.eval` -- metrics, the train/eval harness and table renderers.
* :mod:`repro.serve` -- the persistent prediction service: warm model
  registry, tiered caching, dynamic micro-batching, HTTP server/client.
* :mod:`repro.api` -- the typed public facade every frontend routes
  through: ``Session``, the ``Predictor`` protocol, frozen job/result
  dataclasses and their versioned JSON codec.
"""

from .errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]
