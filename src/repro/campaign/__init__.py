"""Resumable multi-objective search campaigns (workloads × rewrites ×
hardware × strategies × objectives) over the prediction stack.

The campaign subsystem scales a single ``explore`` invocation into a
repeatable grid sweep: a frozen :class:`CampaignSpec` declares the
grid, a :class:`CampaignRunner` executes it through any
:class:`repro.api.Predictor` (local session or remote service) while
journaling every ground-truth evaluation, and a
:class:`CampaignReport` derives traces, Pareto fronts, hypervolume and
the paper's acceleration metric from the journal alone.
"""

from .journal import CampaignJournal
from .objectives import (
    OBJECTIVES,
    Objective,
    exact_static_costs,
    get_objective,
    objective_names,
)
from .report import CampaignReport, CellReport, ComparisonRow
from .runner import (
    CampaignCell,
    CampaignResult,
    CampaignRunner,
    CellResult,
    build_cells,
    design_key,
    design_label,
    enumerate_cell_candidates,
)
from .spec import (
    CAMPAIGN_SCHEMA_VERSION,
    CampaignSpec,
    RewriteSpec,
    WorkloadSpec,
    load_spec,
    save_spec,
    spec_digest,
    spec_from_payload,
    spec_to_payload,
)
from .strategies import STRATEGY_NAMES, get_strategy, needs_model

__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "CampaignCell",
    "CampaignJournal",
    "CampaignReport",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "CellReport",
    "CellResult",
    "ComparisonRow",
    "OBJECTIVES",
    "Objective",
    "RewriteSpec",
    "STRATEGY_NAMES",
    "WorkloadSpec",
    "build_cells",
    "design_key",
    "design_label",
    "enumerate_cell_candidates",
    "exact_static_costs",
    "get_objective",
    "load_spec",
    "needs_model",
    "objective_names",
    "save_spec",
    "spec_digest",
    "spec_from_payload",
    "spec_to_payload",
]
