"""Uniform strategy registry for campaign cells.

Adapts the heterogeneous signatures of :mod:`repro.core.search` to one
shape the runner can dispatch on: ``(candidates, budget, objective,
rng, evaluate) -> SearchTrace``.  ``model_guided`` is the only strategy
that consumes model predictions (the runner fills ``point.predicted``
before dispatching it); the rest are model-free baselines.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..core.explorer import DesignPoint
from ..core.search import (
    SearchTrace,
    annealing_search,
    evolutionary_search,
    model_guided_search,
    random_search,
)
from ..errors import CampaignError

__all__ = ["STRATEGY_NAMES", "get_strategy", "needs_model"]

Objective = Callable[[dict], float]
Evaluator = Callable[[DesignPoint], None]
StrategyFn = Callable[
    [list[DesignPoint], int, Objective, np.random.Generator, Optional[Evaluator]],
    SearchTrace,
]


def _random(candidates, budget, objective, rng, evaluate) -> SearchTrace:
    return random_search(
        candidates, budget, objective=objective, rng=rng, evaluate=evaluate
    )


def _model_guided(candidates, budget, objective, rng, evaluate) -> SearchTrace:
    return model_guided_search(
        None, candidates, budget, objective=objective, evaluate=evaluate
    )


def _evolutionary(candidates, budget, objective, rng, evaluate) -> SearchTrace:
    return evolutionary_search(
        candidates, budget, objective=objective, rng=rng, evaluate=evaluate
    )


def _annealing(candidates, budget, objective, rng, evaluate) -> SearchTrace:
    return annealing_search(
        candidates, budget, objective=objective, rng=rng, evaluate=evaluate
    )


_STRATEGIES: dict[str, StrategyFn] = {
    "random": _random,
    "model_guided": _model_guided,
    "evolutionary": _evolutionary,
    "annealing": _annealing,
}

STRATEGY_NAMES: tuple[str, ...] = tuple(sorted(_STRATEGIES))

_NEEDS_MODEL = frozenset({"model_guided"})


def get_strategy(name: str) -> StrategyFn:
    strategy = _STRATEGIES.get(name)
    if strategy is None:
        raise CampaignError(
            f"unknown strategy {name!r}; choose from {', '.join(STRATEGY_NAMES)}"
        )
    return strategy


def needs_model(name: str) -> bool:
    """True when the named strategy ranks candidates with a cost model."""
    get_strategy(name)  # validate the name loudly
    return name in _NEEDS_MODEL
