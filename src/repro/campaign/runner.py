"""Campaign execution: the grid loop over cells with journaled resume.

The runner turns a :class:`~repro.campaign.spec.CampaignSpec` into a
deterministic sequence of cells (workload × rewrite × hardware ×
strategy × objective; the rewrite axis collapses away when the spec
declares none), executes each cell's search strategy, and checkpoints every
ground-truth evaluation through a
:class:`~repro.campaign.journal.CampaignJournal`.  Model predictions
flow through any :class:`repro.api.Predictor` — a local
:class:`~repro.api.Session` or a remote
:class:`~repro.serve.client.ServeClient` — so a campaign runs against a
shared prediction service with a constructor swap.  Ground truth is
always computed locally through one :class:`StaticProfileCache` shared
by every cell: the same ``(program, params)`` revisited by another
strategy or objective pays the static EDA flow once.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..api.session import Predictor
from ..api.types import PredictJob
from ..core.explorer import DesignPoint, MappingChoice, apply_mapping
from ..core.search import SearchTrace
from ..errors import CampaignError, CampaignInterrupted, ReproError
from ..hls import HardwareParams
from ..lang import ast, parse, to_source
from ..profiler import Profiler, StaticProfileCache
from ..telemetry import METRICS as TELEMETRY_METRICS
from ..telemetry import TRACER, clock
from .journal import CampaignJournal

_CELLS_RUN = TELEMETRY_METRICS.counter("campaign.cells")
_EVALS_FRESH = TELEMETRY_METRICS.counter("campaign.evaluations.fresh")
_EVALS_REPLAYED = TELEMETRY_METRICS.counter("campaign.evaluations.replayed")
_EVALUATE_MS = TELEMETRY_METRICS.histogram("campaign.evaluate_ms")
from .objectives import exact_static_costs, get_objective
from .spec import CampaignSpec
from .strategies import get_strategy, needs_model

__all__ = [
    "CampaignCell",
    "CampaignResult",
    "CampaignRunner",
    "CellResult",
    "build_cells",
    "design_key",
    "design_label",
    "enumerate_cell_candidates",
]


@dataclass(frozen=True)
class CampaignCell:
    """One grid cell: a workload under fixed hardware, searched by one
    strategy toward one objective."""

    index: int
    workload: str
    source: str
    data: tuple[tuple[str, int], ...]
    hardware_index: int
    params: HardwareParams
    strategy: str
    objective: str
    rewrite: str = ""  # rewrite-axis name; "" = the implicit identity

    @property
    def cell_id(self) -> str:
        # The rw= segment appears only on rewrite-axis cells so journals
        # written before the axis existed keep their cell ids.
        rewrite_part = f"|rw={self.rewrite}" if self.rewrite else ""
        return (
            f"w={self.workload}{rewrite_part}|hw={self.hardware_index}"
            f"|strat={self.strategy}|obj={self.objective}"
        )

    def data_dict(self) -> Optional[dict[str, int]]:
        return dict(self.data) or None


def _rewrite_axis(
    spec: CampaignSpec, workload_name: str, source: str
) -> list[tuple[str, str]]:
    """``(rewrite name, rewritten source)`` points for one workload —
    the sequences are applied here, at cell-build time, so every
    downstream consumer (admission, candidates, profiler, journal) sees
    the rewritten program as *the* program of the cell."""
    from ..rewrite.apply import RewriteSequence

    applicable = spec.applicable_rewrites(workload_name)
    if not applicable:
        return [("", source)]
    axis: list[tuple[str, str]] = []
    for rewrite in applicable:
        if not rewrite.steps:
            axis.append((rewrite.name, source))
            continue
        try:
            rewritten = RewriteSequence(steps=rewrite.steps).apply(source)
        except ReproError as exc:
            raise CampaignError(
                f"rewrite {rewrite.name!r} cannot apply to workload "
                f"{workload_name!r}: {exc}"
            ) from None
        axis.append((rewrite.name, rewritten.source))
    return axis


def build_cells(spec: CampaignSpec) -> list[CampaignCell]:
    """The deterministic cell order every run and resume walks."""
    cells = []
    resolved = [workload.resolve() for workload in spec.workloads]
    index = 0
    for workload, (source, data) in zip(spec.workloads, resolved):
        data_items = tuple(sorted((str(k), v) for k, v in data.items()))
        for rewrite_name, cell_source in _rewrite_axis(spec, workload.name, source):
            grid = itertools.product(
                enumerate(spec.hardware), spec.strategies, spec.objectives
            )
            for (hw_index, params), strategy, objective in grid:
                cells.append(
                    CampaignCell(
                        index=index,
                        workload=workload.name,
                        source=cell_source,
                        data=data_items,
                        hardware_index=hw_index,
                        params=params,
                        strategy=strategy,
                        objective=objective,
                        rewrite=rewrite_name,
                    )
                )
                index += 1
    return cells


def design_key(point: DesignPoint) -> str:
    """Canonical identity of a design inside a cell's journal records:
    ``<params> :: <choices>`` (choices part empty for the baseline)."""
    choices = " ".join(
        f"{choice.function}#L{choice.loop_index}"
        f":u{choice.unroll}:p{int(choice.parallel)}"
        for choice in point.choices
    )
    return f"{point.params.describe()} :: {choices}"


def design_label(key: str) -> str:
    """The human-readable mapping part of a design key."""
    _, _, choices = key.partition(" :: ")
    return choices or "baseline"


def enumerate_cell_candidates(
    program: ast.Program,
    params: HardwareParams,
    unroll_factors: Sequence[int],
    max_candidates: int,
    rewrite: str = "",
) -> list[DesignPoint]:
    """Cartesian product of per-operator unroll choices under the
    cell's full hardware parameters.

    Mirrors :meth:`DesignSpaceExplorer.enumerate_candidates` but keeps
    the cell's :class:`HardwareParams` intact (the explorer rebuilds
    params from its memory-delay sweep, dropping pe_count etc.) —
    campaign hardware variants are first-class grid axes, not a
    candidate dimension.
    """
    operators = [
        func.name
        for func in program.functions
        if func is not program.functions[-1] and ast.loops_in(func.body)
    ]
    if not operators:
        # No operator loops → no mapping decisions: an empty design
        # space, not a single degenerate "baseline" candidate.  The
        # runner records such cells as empty traces instead of spending
        # budget re-evaluating an unmappable program.
        return []
    per_op_options = []
    for name in operators:
        loops = ast.loops_in(program.function(name).body)
        innermost = len(loops) - 1
        per_op_options.append(
            [
                MappingChoice(function=name, loop_index=innermost, unroll=factor)
                for factor in unroll_factors
            ]
        )
    candidates: list[DesignPoint] = []
    for combo in itertools.product(*per_op_options):
        mapped = apply_mapping(program, tuple(combo))
        candidates.append(
            DesignPoint(
                program=mapped,
                params=params,
                choices=tuple(combo),
                rewrite=rewrite,
            )
        )
        if len(candidates) >= max_candidates:
            break
    return candidates


@dataclass
class CellResult:
    """One executed cell: its trace plus bookkeeping counters."""

    cell: CampaignCell
    trace: SearchTrace
    candidates: int
    replayed: int
    evaluated: int

    @property
    def final_best(self) -> Optional[float]:
        return None if self.trace.is_empty else self.trace.final_best


@dataclass
class CampaignResult:
    """Outcome of one :meth:`CampaignRunner.run` invocation."""

    spec: CampaignSpec
    journal_path: str
    cells: list[CellResult] = field(default_factory=list)
    completed: bool = True
    replayed: int = 0
    evaluated: int = 0

    def summary(self) -> dict:
        return {
            "campaign": self.spec.name,
            "cells_total": self.spec.cell_count,
            "cells_run": len(self.cells),
            "completed": self.completed,
            "evaluations_fresh": self.evaluated,
            "evaluations_replayed": self.replayed,
            "journal": self.journal_path,
        }


class _StopCampaign(Exception):
    """Internal: the fresh-evaluation cap was reached."""


class CampaignRunner:
    """Executes a campaign spec cell by cell with journaled resume.

    ``predictor`` answers the model-guided cells' ranking queries and
    may be None for specs whose strategies are all model-free.
    ``max_evaluations`` caps *fresh* (non-replayed) ground-truth
    evaluations — the programmatic stand-in for killing the process
    mid-flight, used by the bench and CI to exercise resume.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        journal_path: str,
        predictor: Optional[Predictor] = None,
        static_cache: Optional[StaticProfileCache] = None,
        max_steps: int = 2_000_000,
        sim_backend: str = "compiled",
        ledger_path: Optional[str] = None,
    ) -> None:
        self.spec = spec
        self.journal_path = journal_path
        self.predictor = predictor
        # Explicit None check: an empty StaticProfileCache is falsy.
        if static_cache is None:
            static_cache = StaticProfileCache()
        self.static_cache = static_cache
        self._max_steps = max_steps
        self._sim_backend = sim_backend
        self.ledger_path = ledger_path
        if spec.needs_model() and predictor is None:
            raise CampaignError(
                "spec contains a model-guided strategy; the runner needs a "
                "predictor (Session or ServeClient)"
            )

    # -- execution -------------------------------------------------------

    def run(
        self,
        resume: bool = False,
        overwrite: bool = False,
        max_evaluations: Optional[int] = None,
    ) -> CampaignResult:
        if resume:
            journal = CampaignJournal.open_resume(self.journal_path, self.spec)
        else:
            journal = CampaignJournal.create(
                self.journal_path, self.spec, overwrite=overwrite
            )
        result = CampaignResult(spec=self.spec, journal_path=self.journal_path)
        with journal:
            try:
                for cell in build_cells(self.spec):
                    result.cells.append(self._run_cell(cell, journal, max_evaluations))
            except _StopCampaign:
                result.completed = False
            result.replayed = journal.replayed
            result.evaluated = journal.appended
        if result.completed and journal.pending_replays():
            raise CampaignError(
                f"journal {self.journal_path!r} holds "
                f"{journal.pending_replays()} evaluations the spec never "
                "requested; it was produced by a different spec or code "
                "version"
            )
        if result.completed and self.ledger_path:
            self._append_ledger(result)
        if not result.completed:
            interrupted = CampaignInterrupted(
                f"campaign stopped after {result.evaluated} fresh evaluations "
                f"({result.replayed} replayed); resume with the same spec and "
                f"journal {self.journal_path!r}",
            )
            interrupted.result = result
            raise interrupted
        return result

    def _append_ledger(self, result: CampaignResult) -> None:
        """Append each cell's best achieved objective to the bench
        history ledger, so campaign quality regresses loudly just like
        the synthetic benches.  Every objective scalar in this codebase
        is a cost — lower is better."""
        from ..obs.bench import git_sha
        from ..obs.history import BenchLedger, LedgerEntry, host_fingerprint

        ledger = BenchLedger(self.ledger_path)
        host = host_fingerprint()
        sha = git_sha()
        run = ledger.next_run("campaign", "campaign")
        entries = [
            LedgerEntry(
                suite="campaign",
                metric=cell_result.cell.cell_id,
                value=float(cell_result.final_best),
                unit="obj",
                direction="lower",
                mode="campaign",
                tier=self.spec.name,
                sha=sha,
                host=host,
                run=run,
            )
            for cell_result in result.cells
            if cell_result.final_best is not None
        ]
        if entries:
            ledger.append(entries)

    def _run_cell(
        self,
        cell: CampaignCell,
        journal: CampaignJournal,
        max_evaluations: Optional[int],
    ) -> CellResult:
        from ..analysis.cache import GLOBAL_ANALYSIS_CACHE

        report = GLOBAL_ANALYSIS_CACHE.validate(cell.source)
        if not report.ok:
            reasons = report.reasons()
            raise CampaignError(
                f"cell {cell.cell_id!r} rejected at admission: {reasons[0]}"
                + (f" (+{len(reasons) - 1} more)" if len(reasons) > 1 else "")
            )
        program = parse(cell.source)
        candidates = enumerate_cell_candidates(
            program,
            cell.params,
            self.spec.unroll_factors,
            self.spec.max_candidates,
            rewrite=cell.rewrite,
        )
        objective = get_objective(cell.objective)
        if not candidates:
            return CellResult(
                cell=cell,
                trace=SearchTrace(strategy=cell.strategy),
                candidates=0,
                replayed=0,
                evaluated=0,
            )
        if needs_model(cell.strategy):
            self._predict(cell, candidates, objective)
        replayed_before = journal.replayed
        appended_before = journal.appended
        data = cell.data_dict()
        profiler = Profiler(
            cell.params,
            max_steps=self._max_steps,
            backend=self._sim_backend,
            static_cache=self.static_cache,
        )

        def evaluate(point: DesignPoint) -> None:
            key = design_key(point)
            cached = journal.pop_replay(cell.cell_id, key)
            if cached is not None:
                point.actual = cached
                _EVALS_REPLAYED.inc()
                return
            if (
                max_evaluations is not None
                and journal.appended >= max_evaluations
            ):
                raise _StopCampaign()
            start = clock.now()
            with TRACER.span(
                "campaign.evaluate", {"cell": cell.cell_id, "design": key}
            ):
                report = profiler.profile(
                    point.program,
                    data=data,
                    rng=np.random.default_rng(self.spec.seed),
                )
            _EVALUATE_MS.observe((clock.now() - start) * 1000.0)
            _EVALS_FRESH.inc()
            point.actual = report.costs.as_dict()
            journal.append(cell.cell_id, key, point.actual)

        strategy = get_strategy(cell.strategy)
        rng = np.random.default_rng([self.spec.seed, cell.index])
        budget = min(self.spec.budget, len(candidates))
        _CELLS_RUN.inc()
        with TRACER.span(
            "campaign.cell",
            {"cell": cell.cell_id, "candidates": len(candidates)},
        ):
            trace = strategy(candidates, budget, objective.scalar, rng, evaluate)
        return CellResult(
            cell=cell,
            trace=trace,
            candidates=len(candidates),
            replayed=journal.replayed - replayed_before,
            evaluated=journal.appended - appended_before,
        )

    def _predict(
        self,
        cell: CampaignCell,
        candidates: list[DesignPoint],
        objective,
    ) -> None:
        """Fill ``point.predicted`` for a model-guided cell through the
        Predictor protocol (one batched pass, local or remote)."""
        assert self.predictor is not None
        data = cell.data_dict()
        jobs = [
            PredictJob(
                source=to_source(point.program),
                data=data,
                params=cell.params,
                label=design_key(point),
            )
            for point in candidates
        ]
        predictions = self.predictor.predict_jobs(jobs)
        for point, prediction in zip(candidates, predictions):
            predicted = prediction.as_dict()
            if self.spec.static_source == "asicflow":
                # Exact EDA statics (shared cache): the learned model is
                # spent only on the dynamic metric.
                predicted.update(
                    exact_static_costs(
                        point.program, point.params, self.static_cache
                    )
                )
            point.predicted = predicted
            point.score = objective.scalar(predicted)
