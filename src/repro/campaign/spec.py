"""Campaign specification: a frozen grid declaration + versioned codec.

A :class:`CampaignSpec` declares the full cross product a campaign
executes — workloads × program rewrites × hardware variants × search
strategies × objectives — plus the shared knobs (evaluation budget per
cell, seed, unroll sweep).  The rewrite axis is optional: an empty
``rewrites`` tuple reproduces the classic grid exactly (and its wire
form, so old spec digests stay valid).  It is frozen so a spec can be digested once and the
digest stamped into the journal header: ``campaign resume`` refuses a
journal written under a different spec instead of silently mixing two
campaigns' evaluations.

The wire format follows :mod:`repro.api.codec`: a JSON object carrying
``"schema"`` (:data:`CAMPAIGN_SCHEMA_VERSION`) and ``"kind"``
(``"campaign_spec"``), decoded loudly via :class:`CampaignError` on any
mismatch.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from ..api.codec import params_from_payload, params_to_payload
from ..errors import CampaignError, ReproError
from ..hls import HardwareParams
from ..rewrite.rules import RewriteStep
from .objectives import get_objective
from .strategies import get_strategy

__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "CampaignSpec",
    "RewriteSpec",
    "WorkloadSpec",
    "spec_digest",
    "spec_from_payload",
    "spec_to_payload",
    "load_spec",
    "save_spec",
]

CAMPAIGN_SCHEMA_VERSION = 1

_SUITES = ("polybench", "linalg", "modern", "accelerators")


@dataclass(frozen=True)
class WorkloadSpec:
    """One campaign workload: a bundled suite member or inline source.

    ``source`` of ``""`` resolves ``name`` against the bundled suites
    (:mod:`repro.workloads`); ``data`` overrides (or, for inline
    sources, provides) the runtime inputs.
    """

    name: str
    source: str = ""
    data: Optional[Mapping[str, Any]] = None

    def resolve(self) -> tuple[str, dict[str, Any]]:
        """The program source and runtime inputs this spec names."""
        if self.source:
            return self.source, dict(self.data or {})
        workload = _suite_workload(self.name)
        data = workload.merged_data(dict(self.data) if self.data else None)
        return workload.source, data


def _suite_workload(name: str):
    from ..workloads import (
        accelerator_suite,
        linalg_suite,
        modern_suite,
        polybench_suite,
    )

    suites = (polybench_suite, linalg_suite, modern_suite, accelerator_suite)
    for suite in suites:
        for workload in suite():
            if workload.name == name:
                return workload
    raise CampaignError(
        f"workload {name!r} is not in the bundled suites {_SUITES} "
        "and carries no inline source"
    )


@dataclass(frozen=True)
class RewriteSpec:
    """One program-rewrite variant on the campaign's rewrite axis.

    ``steps`` empty means "run the workload unrewritten" (the baseline
    point every rewrite campaign should include so wins are measured
    against something).  ``workload`` of ``""`` applies the variant to
    every workload; a workload name restricts it to that one — rewrite
    steps address loops positionally, so a sequence tuned for gemm is
    usually meaningless (or illegal) on another kernel.
    """

    name: str
    steps: tuple[RewriteStep, ...] = ()
    workload: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("rewrite spec needs a non-empty name")
        if any(ch in self.name for ch in "|= \t\n"):
            raise CampaignError(
                f"rewrite name {self.name!r} may not contain '|', '=' or "
                "whitespace (it keys journal cell ids)"
            )
        object.__setattr__(self, "steps", tuple(self.steps))


@dataclass(frozen=True)
class CampaignSpec:
    """The full campaign grid.  Cells are the cross product
    ``workloads × rewrites × hardware × strategies × objectives``, each
    searched for ``budget`` ground-truth evaluations.  An empty
    ``rewrites`` axis means the classic grid (no rewrite dimension)."""

    name: str
    workloads: tuple[WorkloadSpec, ...]
    hardware: tuple[HardwareParams, ...] = (HardwareParams(),)
    strategies: tuple[str, ...] = ("random", "model_guided")
    objectives: tuple[str, ...] = ("area_delay",)
    rewrites: tuple[RewriteSpec, ...] = ()
    budget: int = 8
    seed: int = 0
    unroll_factors: tuple[int, ...] = (1, 2, 4)
    max_candidates: int = 32
    # Where the *static* metrics of ranking predictions come from:
    # "model" reads the cost model's power/area/ff heads, "asicflow"
    # overwrites them with exact EDA values (cheap, no simulation) so
    # the learned model is spent only on cycles.
    static_source: str = "model"

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("campaign spec needs a non-empty name")
        for label, values in (
            ("workloads", self.workloads),
            ("hardware", self.hardware),
            ("strategies", self.strategies),
            ("objectives", self.objectives),
            ("unroll_factors", self.unroll_factors),
        ):
            if not values:
                raise CampaignError(f"campaign spec needs at least one of {label}")
        if self.budget < 1:
            raise CampaignError("campaign budget must be >= 1")
        if self.max_candidates < 1:
            raise CampaignError("max_candidates must be >= 1")
        if self.static_source not in ("model", "asicflow"):
            raise CampaignError(
                f"static_source must be 'model' or 'asicflow', "
                f"got {self.static_source!r}"
            )
        for strategy in self.strategies:
            get_strategy(strategy)
        for objective in self.objectives:
            get_objective(objective)
        if len(set(self.strategies)) != len(self.strategies):
            raise CampaignError("duplicate strategies in campaign spec")
        if len(set(self.objectives)) != len(self.objectives):
            raise CampaignError("duplicate objectives in campaign spec")
        # Workload names key journal cell ids: two workloads sharing a
        # name would merge their journal records into one cell and
        # silently corrupt every derived report.  The same kernel under
        # different data is fine — give each variant its own name.
        names = [workload.name for workload in self.workloads]
        if len(set(names)) != len(names):
            raise CampaignError(
                "duplicate workload names in campaign spec; name each "
                "variant distinctly (e.g. 'gemm-n8', 'gemm-n16')"
            )
        rewrite_names = [rewrite.name for rewrite in self.rewrites]
        if len(set(rewrite_names)) != len(rewrite_names):
            raise CampaignError("duplicate rewrite names in campaign spec")
        known_workloads = set(names)
        for rewrite in self.rewrites:
            if rewrite.workload and rewrite.workload not in known_workloads:
                raise CampaignError(
                    f"rewrite {rewrite.name!r} targets unknown workload "
                    f"{rewrite.workload!r}"
                )
        if self.rewrites:
            for workload_name in names:
                if not self.applicable_rewrites(workload_name):
                    raise CampaignError(
                        f"workload {workload_name!r} has no applicable "
                        "rewrite; add a baseline entry (empty steps, "
                        "workload filter '') so every workload keeps at "
                        "least one cell"
                    )

    def applicable_rewrites(self, workload_name: str) -> tuple[RewriteSpec, ...]:
        """The rewrite-axis entries that apply to one workload (all of
        them when the axis is empty — callers treat that as the single
        implicit identity point)."""
        return tuple(
            rewrite
            for rewrite in self.rewrites
            if not rewrite.workload or rewrite.workload == workload_name
        )

    @property
    def cell_count(self) -> int:
        workload_cells = sum(
            len(self.applicable_rewrites(workload.name)) or 1
            for workload in self.workloads
        )
        return (
            workload_cells
            * len(self.hardware)
            * len(self.strategies)
            * len(self.objectives)
        )

    def needs_model(self) -> bool:
        from .strategies import needs_model

        return any(needs_model(strategy) for strategy in self.strategies)


# -- codec ------------------------------------------------------------------


def _workload_to_payload(workload: WorkloadSpec) -> dict:
    return {
        "name": workload.name,
        "source": workload.source,
        "data": dict(workload.data) if workload.data else None,
    }


_WORKLOAD_FIELDS = frozenset({"name", "source", "data"})


def _workload_from_payload(payload: Any) -> WorkloadSpec:
    if not isinstance(payload, dict) or not isinstance(payload.get("name"), str):
        raise CampaignError("each workload entry needs a string 'name'")
    unknown = sorted(set(payload) - _WORKLOAD_FIELDS)
    if unknown:
        raise CampaignError(
            f"workload {payload['name']!r} has unknown fields {unknown}; "
            f"expected {sorted(_WORKLOAD_FIELDS)}"
        )
    data = payload.get("data")
    if data is not None and not isinstance(data, dict):
        raise CampaignError(f"workload {payload['name']!r} 'data' must be an object")
    return WorkloadSpec(
        name=payload["name"],
        source=str(payload.get("source") or ""),
        data=data,
    )


_REWRITE_FIELDS = frozenset({"name", "steps", "workload"})


def _rewrite_to_payload(rewrite: RewriteSpec) -> dict:
    return {
        "name": rewrite.name,
        "steps": [step.to_payload() for step in rewrite.steps],
        "workload": rewrite.workload,
    }


def _rewrite_from_payload(payload: Any) -> RewriteSpec:
    if not isinstance(payload, dict) or not isinstance(payload.get("name"), str):
        raise CampaignError("each rewrite entry needs a string 'name'")
    unknown = sorted(set(payload) - _REWRITE_FIELDS)
    if unknown:
        raise CampaignError(
            f"rewrite {payload['name']!r} has unknown fields {unknown}; "
            f"expected {sorted(_REWRITE_FIELDS)}"
        )
    steps_payload = payload.get("steps") or []
    if not isinstance(steps_payload, list):
        raise CampaignError(
            f"rewrite {payload['name']!r} 'steps' must be a list of "
            "step strings (kind:function:loops[:factor])"
        )
    try:
        steps = tuple(RewriteStep.from_payload(s) for s in steps_payload)
    except ReproError as exc:
        raise CampaignError(
            f"rewrite {payload['name']!r} has an invalid step: {exc}"
        ) from None
    return RewriteSpec(
        name=payload["name"],
        steps=steps,
        workload=str(payload.get("workload") or ""),
    )


def spec_to_payload(spec: CampaignSpec) -> dict:
    payload = {
        "schema": CAMPAIGN_SCHEMA_VERSION,
        "kind": "campaign_spec",
        "name": spec.name,
        "workloads": [_workload_to_payload(w) for w in spec.workloads],
        "hardware": [params_to_payload(params) for params in spec.hardware],
        "strategies": list(spec.strategies),
        "objectives": list(spec.objectives),
        "budget": spec.budget,
        "seed": spec.seed,
        "unroll_factors": list(spec.unroll_factors),
        "max_candidates": spec.max_candidates,
        "static_source": spec.static_source,
    }
    # Emitted only when the axis is used: pre-rewrite specs keep their
    # wire form bit-for-bit, so existing journal digests stay valid.
    if spec.rewrites:
        payload["rewrites"] = [_rewrite_to_payload(r) for r in spec.rewrites]
    return payload


def spec_from_payload(payload: Any) -> CampaignSpec:
    if not isinstance(payload, dict):
        raise CampaignError(
            f"campaign spec payload must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    schema = payload.get("schema")
    if schema is None:
        raise CampaignError(
            "campaign spec has no 'schema' field; refusing to guess the format"
        )
    if schema != CAMPAIGN_SCHEMA_VERSION:
        raise CampaignError(
            f"unsupported campaign schema version {schema!r}; this build "
            f"speaks version {CAMPAIGN_SCHEMA_VERSION}"
        )
    kind = payload.get("kind")
    if kind != "campaign_spec":
        raise CampaignError(f"expected a 'campaign_spec' payload, got {kind!r}")
    known = {
        "schema", "kind", "name", "workloads", "hardware", "strategies",
        "objectives", "rewrites", "budget", "seed", "unroll_factors",
        "max_candidates", "static_source",
    }
    unknown = sorted(set(payload) - known)
    if unknown:
        # A misspelled field ("strategy", "unroll_factor") silently
        # decoding to defaults would burn the whole ground-truth budget
        # on the wrong grid; mirror repro.api.codec's loud rejection.
        raise CampaignError(
            f"campaign spec has unknown fields {unknown}; "
            f"expected a subset of {sorted(known)}"
        )
    workloads = payload.get("workloads")
    if not isinstance(workloads, list):
        raise CampaignError("campaign spec field 'workloads' must be a list")
    rewrites_payload = payload.get("rewrites")
    if rewrites_payload is None:
        rewrites: tuple[RewriteSpec, ...] = ()
    elif isinstance(rewrites_payload, list):
        rewrites = tuple(_rewrite_from_payload(r) for r in rewrites_payload)
    else:
        raise CampaignError("campaign spec field 'rewrites' must be a list")
    hardware_payload = payload.get("hardware")
    if hardware_payload is None:
        hardware: tuple[HardwareParams, ...] = (HardwareParams(),)
    elif isinstance(hardware_payload, list):
        try:
            decoded = [params_from_payload(entry) for entry in hardware_payload]
        except ReproError as exc:
            raise CampaignError(f"invalid hardware entry: {exc}") from None
        if any(entry is None for entry in decoded):
            raise CampaignError("hardware entries must be params objects, not null")
        hardware = tuple(decoded)  # type: ignore[arg-type]
    else:
        raise CampaignError("campaign spec field 'hardware' must be a list")

    def str_tuple(name: str, default: tuple[str, ...]) -> tuple[str, ...]:
        value = payload.get(name)
        if value is None:
            return default
        if not isinstance(value, list) or not all(
            isinstance(item, str) for item in value
        ):
            raise CampaignError(f"campaign spec field {name!r} must be a string list")
        return tuple(value)

    # Explicit None checks throughout: an encoded budget of 0 (or empty
    # static_source) must reach __post_init__'s loud validation, not be
    # silently replaced with a default.
    unroll = payload.get("unroll_factors")
    budget = payload.get("budget")
    seed = payload.get("seed")
    max_candidates = payload.get("max_candidates")
    static_source = payload.get("static_source")
    name = payload.get("name")
    try:
        return CampaignSpec(
            name="" if name is None else str(name),
            workloads=tuple(_workload_from_payload(w) for w in workloads),
            hardware=hardware,
            strategies=str_tuple("strategies", ("random", "model_guided")),
            objectives=str_tuple("objectives", ("area_delay",)),
            rewrites=rewrites,
            budget=8 if budget is None else int(budget),
            seed=0 if seed is None else int(seed),
            unroll_factors=(1, 2, 4)
            if unroll is None
            else tuple(int(v) for v in unroll),
            max_candidates=32 if max_candidates is None else int(max_candidates),
            static_source="model" if static_source is None else str(static_source),
        )
    except (TypeError, ValueError) as exc:
        raise CampaignError(f"invalid campaign spec: {exc}") from None


def spec_digest(spec: CampaignSpec) -> str:
    """Stable digest of the spec's wire form (journal header stamp)."""
    canonical = json.dumps(spec_to_payload(spec), sort_keys=True)
    return hashlib.md5(canonical.encode("utf-8")).hexdigest()


def save_spec(spec: CampaignSpec, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(spec_to_payload(spec), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_spec(path: str) -> CampaignSpec:
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as exc:
        reason = exc.strerror or exc
        raise CampaignError(f"cannot read campaign spec {path!r}: {reason}") from None
    except json.JSONDecodeError as exc:
        raise CampaignError(f"{path}: invalid JSON: {exc}") from None
    return spec_from_payload(payload)
