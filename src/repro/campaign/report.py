"""Campaign reporting: traces, Pareto fronts, hypervolume, acceleration.

A report is built **from the journal alone** (plus the spec): every
journal record carries the full ground-truth cost vector, and records
appear in evaluation order per cell, so the best-so-far trace, the
per-cell Pareto front, the hypervolume and the paper's acceleration
metric (ground-truth evaluations a strategy needs to reach the random
baseline's best) are all recomputable without a model or a profiler —
``campaign report`` is free.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from ..core.pareto import hypervolume_2d, pareto_front
from ..core.search import SearchTrace
from ..errors import CampaignError
from .journal import CampaignJournal
from .objectives import get_objective
from .runner import CampaignCell, build_cells, design_label
from .spec import CampaignSpec, spec_digest

__all__ = ["CampaignReport", "CellReport", "ComparisonRow"]


@dataclass
class CellReport:
    """One cell's journaled outcome."""

    cell: CampaignCell
    trace: SearchTrace
    costs: list[dict[str, int]] = field(default_factory=list)
    designs: list[str] = field(default_factory=list)
    front: list[tuple[float, float]] = field(default_factory=list)
    hypervolume: float = 0.0
    best_design: str = ""

    @property
    def evaluations(self) -> int:
        return len(self.trace.best_objective)

    @property
    def final_best(self) -> Optional[float]:
        return None if self.trace.is_empty else self.trace.final_best

    def as_dict(self) -> dict:
        return {
            "cell": self.cell.cell_id,
            "workload": self.cell.workload,
            "rewrite": self.cell.rewrite,
            "hardware": self.cell.params.describe(),
            "strategy": self.cell.strategy,
            "objective": self.cell.objective,
            "evaluations": self.evaluations,
            "final_best": self.final_best,
            "best_design": self.best_design,
            "pareto_front": [list(point) for point in self.front],
            "hypervolume": self.hypervolume,
        }


@dataclass
class ComparisonRow:
    """Strategy comparison within one (workload, hardware, objective)
    group — the paper's Table-5-style acceleration view."""

    workload: str
    hardware_index: int
    objective: str
    target: Optional[float]  # the random baseline's final best
    rewrite: str = ""
    evaluations: dict[str, Optional[int]] = field(default_factory=dict)
    final_best: dict[str, Optional[float]] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "rewrite": self.rewrite,
            "hardware_index": self.hardware_index,
            "objective": self.objective,
            "random_best": self.target,
            "evaluations_to_reach_random_best": dict(self.evaluations),
            "final_best": dict(self.final_best),
        }


class CampaignReport:
    """Derived views over one campaign journal."""

    def __init__(self, spec: CampaignSpec, cells: list[CellReport]) -> None:
        self.spec = spec
        self.cells = cells
        self.comparisons = _compare_strategies(spec, cells)

    @classmethod
    def from_journal(cls, journal_path: str, spec: CampaignSpec) -> "CampaignReport":
        records = CampaignJournal.read_records(journal_path)
        header = records[0]
        digest = spec_digest(spec)
        if header.get("spec_digest") != digest:
            raise CampaignError(
                f"journal {journal_path!r} was written for a different "
                f"campaign spec (digest {header.get('spec_digest')!r} != "
                f"{digest!r})"
            )
        by_cell: dict[str, list[dict]] = {}
        for record in records[1:]:
            if record.get("kind") != "eval":
                continue
            by_cell.setdefault(record["cell"], []).append(record)
        declared = build_cells(spec)
        cells = [
            _cell_report(cell, by_cell.get(cell.cell_id, [])) for cell in declared
        ]
        unknown = sorted(set(by_cell) - {cell.cell_id for cell in declared})
        if unknown:
            raise CampaignError(
                f"journal {journal_path!r} holds cells the spec does not "
                f"declare: {unknown}"
            )
        _fill_hypervolumes(cells)
        return cls(spec, cells)

    # -- rendering -------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "campaign": self.spec.name,
            "budget": self.spec.budget,
            "cells": [cell.as_dict() for cell in self.cells],
            "comparisons": [row.as_dict() for row in self.comparisons],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def table(self) -> str:
        """Human-readable per-cell table + strategy comparison."""
        lines = [
            f"campaign {self.spec.name!r}: "
            f"{len(self.cells)} cells, budget {self.spec.budget}",
            "",
            f"{'cell':44s} {'evals':>5s} {'final best':>14s} "
            f"{'hv':>12s}  best design",
        ]
        for cell in self.cells:
            best = "-" if cell.final_best is None else f"{cell.final_best:.4g}"
            lines.append(
                f"{cell.cell.cell_id:44s} {cell.evaluations:5d} {best:>14s} "
                f"{cell.hypervolume:12.4g}  "
                f"{design_label(cell.best_design) if cell.best_design else '-'}"
            )
        if self.comparisons:
            lines.append("")
            strategies = list(self.spec.strategies)
            header = f"{'workload':14s} {'hw':>3s} {'objective':18s}"
            for name in strategies:
                header += f" {name + ' evals':>20s}"
            lines.append(header + "   (evaluations to reach the random best)")
            for row in self.comparisons:
                label = (
                    f"{row.workload}+{row.rewrite}" if row.rewrite else row.workload
                )
                text = f"{label:14s} {row.hardware_index:3d} {row.objective:18s}"
                for name in strategies:
                    evals = row.evaluations.get(name)
                    text += f" {'-' if evals is None else evals:>20}"
                lines.append(text)
        return "\n".join(lines)


def _cell_report(cell: CampaignCell, records: list[dict]) -> CellReport:
    objective = get_objective(cell.objective)
    trace = SearchTrace(strategy=cell.strategy)
    costs: list[dict[str, int]] = []
    designs: list[str] = []
    best_value: Optional[float] = None
    best_design = ""
    for record in records:
        actual = {str(k): int(v) for k, v in record["actual"].items()}
        value = objective.scalar(actual)
        costs.append(actual)
        designs.append(str(record["design"]))
        if best_value is None or value < best_value:
            best_value, best_design = value, str(record["design"])
        previous = trace.best_objective[-1] if trace.best_objective else value
        trace.best_objective.append(min(previous, value))
    report = CellReport(
        cell=cell, trace=trace, costs=costs, designs=designs, best_design=best_design
    )
    if costs:
        points = [objective.front_point(actual) for actual in costs]
        report.front = sorted(points[i] for i in pareto_front(points))
    return report


def _fill_hypervolumes(cells: list[CellReport]) -> None:
    """Hypervolume per cell against one reference shared by its
    (workload, hardware, objective) group.

    A per-cell reference (each cell's own worst costs) would make the
    numbers incomparable across strategies: a strategy that evaluates
    one terrible design inflates its own reference box and with it its
    volume.  The shared reference is 1.1 x the componentwise worst over
    *every* strategy's evaluations in the group, so a larger
    hypervolume always means a better frontier.
    """
    groups: dict[tuple[str, int, str], list[CellReport]] = {}
    for cell in cells:
        key = (cell.cell.workload, cell.cell.hardware_index, cell.cell.objective)
        groups.setdefault(key, []).append(cell)
    for members in groups.values():
        objective = get_objective(members[0].cell.objective)
        points = [
            objective.front_point(actual)
            for member in members
            for actual in member.costs
        ]
        if not points:
            continue
        reference = (
            1.1 * max(point[0] for point in points),
            1.1 * max(point[1] for point in points),
        )
        for member in members:
            if member.costs:
                member.hypervolume = hypervolume_2d(
                    [objective.front_point(actual) for actual in member.costs],
                    reference,
                )


def _compare_strategies(
    spec: CampaignSpec, cells: list[CellReport]
) -> list[ComparisonRow]:
    groups: dict[tuple[str, str, int, str], dict[str, CellReport]] = {}
    for cell in cells:
        key = (
            cell.cell.workload,
            cell.cell.rewrite,
            cell.cell.hardware_index,
            cell.cell.objective,
        )
        groups.setdefault(key, {})[cell.cell.strategy] = cell
    rows = []
    for (workload, rewrite, hw_index, objective), by_strategy in groups.items():
        baseline = by_strategy.get("random")
        target = baseline.final_best if baseline is not None else None
        row = ComparisonRow(
            workload=workload,
            hardware_index=hw_index,
            objective=objective,
            target=target,
            rewrite=rewrite,
        )
        for strategy, cell in sorted(by_strategy.items()):
            row.final_best[strategy] = cell.final_best
            row.evaluations[strategy] = (
                None
                if target is None or cell.trace.is_empty
                else cell.trace.evaluations_to_reach(target)
            )
        rows.append(row)
    return rows
