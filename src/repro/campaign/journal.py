"""Append-only JSONL checkpoint of a campaign's ground-truth evaluations.

Every expensive evaluation (synthesis + simulation of one design) is
journaled the moment it completes, so a killed campaign loses at most
the evaluation in flight.  ``resume`` replays the journal: because the
runner is deterministic under the spec seed, the resumed run asks for
exactly the evaluations the journal holds, in the same order — replay
answers them for free and the run continues appending where the journal
stops.  An uninterrupted run and a kill/resume run therefore produce
**byte-identical** journals (the parity gate in
``scripts/bench_campaign.py``).

Line format (compact, sorted keys, no timestamps — determinism is the
whole point):

* header — ``{"campaign": name, "kind": "header", "schema": 1,
  "spec_digest": md5-of-spec-payload}``
* eval   — ``{"actual": {...}, "cell": cell-id, "design": design-key,
  "kind": "eval"}``

A truncated trailing line (the record being written when the process
died) is detected on resume and dropped before appending continues.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Optional, TextIO

from ..errors import CampaignError
from .spec import CAMPAIGN_SCHEMA_VERSION, CampaignSpec, spec_digest

__all__ = ["CampaignJournal"]


def _dump_line(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


def _checked_eval(record: dict, path: str, number: int) -> dict:
    """An eval record with its required fields verified — corrupt or
    hand-edited journals must fail with the module's one-line
    CampaignError, never a raw KeyError deep in replay/reporting."""
    if (
        not isinstance(record.get("cell"), str)
        or not isinstance(record.get("design"), str)
        or not isinstance(record.get("actual"), dict)
    ):
        raise CampaignError(
            f"{path}:{number}: malformed eval record (needs string 'cell' "
            "and 'design' plus an 'actual' object)"
        )
    for value in record["actual"].values():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise CampaignError(
                f"{path}:{number}: eval record 'actual' values must be numeric"
            )
    return record


def _load_records(path: str) -> tuple[list[dict], int, bool]:
    """Parse and validate a journal file: the single definition of what
    a well-formed journal is, shared by resume and reporting.

    Returns ``(records, kept_bytes, truncated)`` where *records* is the
    validated header + eval records, *kept_bytes* the byte length of the
    complete lines, and *truncated* whether a partial trailing line (the
    record in flight when the run died — dropped even if it happens to
    parse; the deterministic resume re-appends it verbatim) must be cut
    before appending continues.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        reason = exc.strerror or exc
        raise CampaignError(f"cannot read journal {path!r}: {reason}") from None
    lines = blob.split(b"\n")
    trailing = lines.pop()  # b"" for a complete final line
    records: list[dict] = []
    kept_bytes = 0
    for number, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise CampaignError(f"{path}:{number}: corrupt journal line") from None
        if not isinstance(record, dict) or "kind" not in record:
            raise CampaignError(f"{path}:{number}: malformed journal record")
        if number == 1 and record["kind"] == "header":
            pass  # header contents are checked against the spec by the caller
        elif record["kind"] == "eval":
            record = _checked_eval(record, path, number)
        else:
            raise CampaignError(
                f"{path}:{number}: unexpected journal record kind "
                f"{record['kind']!r}"
            )
        records.append(record)
        kept_bytes += len(line) + 1
    if not records or records[0].get("kind") != "header":
        raise CampaignError(f"{path}: journal has no header line")
    return records, kept_bytes, bool(trailing)


class CampaignJournal:
    """One campaign's evaluation checkpoint file.

    Build with :meth:`create` (fresh run) or :meth:`open_resume`
    (continue an interrupted run); then :meth:`pop_replay` answers
    journaled evaluations and :meth:`append` checkpoints fresh ones.
    """

    def __init__(self, path: str, spec: CampaignSpec) -> None:
        self.path = path
        self.spec = spec
        self.replayed = 0
        self.appended = 0
        self._queues: dict[str, deque[dict]] = {}
        self._handle: Optional[TextIO] = None

    # -- construction ----------------------------------------------------

    @classmethod
    def create(
        cls, path: str, spec: CampaignSpec, overwrite: bool = False
    ) -> "CampaignJournal":
        """Start a fresh journal; refuses to clobber an existing one
        unless *overwrite* (an existing journal usually means the caller
        wanted ``resume``)."""
        if os.path.exists(path) and not overwrite:
            raise CampaignError(
                f"journal {path!r} already exists; resume it or pass overwrite"
            )
        journal = cls(path, spec)
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        journal._handle = open(path, "w")
        journal._handle.write(_dump_line(journal._header()))
        journal._handle.flush()
        return journal

    @classmethod
    def open_resume(cls, path: str, spec: CampaignSpec) -> "CampaignJournal":
        """Load an existing journal for replay + continued appending."""
        records, kept_bytes, truncated = _load_records(path)
        journal = cls(path, spec)
        header = records[0]
        expected = journal._header()
        for key in ("schema", "spec_digest"):
            if header.get(key) != expected[key]:
                raise CampaignError(
                    f"journal {path!r} was written for a different "
                    f"{'schema' if key == 'schema' else 'campaign spec'} "
                    f"({key} {header.get(key)!r} != {expected[key]!r}); "
                    "refusing to mix campaigns"
                )
        for record in records[1:]:
            journal._queues.setdefault(record["cell"], deque()).append(record)
        if truncated:
            with open(path, "rb+") as handle:
                handle.truncate(kept_bytes)
        journal._handle = open(path, "a")
        return journal

    def _header(self) -> dict:
        return {
            "campaign": self.spec.name,
            "kind": "header",
            "schema": CAMPAIGN_SCHEMA_VERSION,
            "spec_digest": spec_digest(self.spec),
        }

    # -- replay / append -------------------------------------------------

    def pop_replay(self, cell_id: str, design: str) -> Optional[dict[str, int]]:
        """The journaled costs for the next evaluation of *cell_id*, or
        None once the cell's journaled prefix is exhausted.

        The runner is deterministic, so the next requested design must
        match the next journaled record; a mismatch means the journal
        was written by different code, spec resolution or model — a loud
        error beats silently grafting the wrong labels onto a design.
        """
        queue = self._queues.get(cell_id)
        if not queue:
            return None
        record = queue.popleft()
        if record["design"] != design:
            raise CampaignError(
                f"journal mismatch in cell {cell_id!r}: journaled evaluation "
                f"of {record['design']!r} but the run requested {design!r}; "
                "the journal was produced by a different spec, model or code "
                "version"
            )
        self.replayed += 1
        return {str(k): int(v) for k, v in record["actual"].items()}

    def pending_replays(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def append(self, cell_id: str, design: str, actual: dict[str, int]) -> None:
        if self._handle is None:
            raise CampaignError("journal is closed")
        record = {
            "actual": {str(k): int(v) for k, v in actual.items()},
            "cell": cell_id,
            "design": design,
            "kind": "eval",
        }
        self._handle.write(_dump_line(record))
        self._handle.flush()
        self.appended += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @staticmethod
    def read_records(path: str) -> list[dict]:
        """All journal records (header first) for reporting; tolerates a
        truncated trailing line the same way resume does."""
        records, _, _ = _load_records(path)
        return records
