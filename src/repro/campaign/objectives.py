"""Campaign objectives: latency composed with ASIC-flow power/area.

The paper's cost vector ``<Power, Area, FF, Cycles>`` spans performance
and implementation cost; a campaign cell optimizes one *scalar*
composition of it (for the search trajectory) while the report keeps
the *multi-objective* view (a 2-D Pareto front + hypervolume over the
objective's ``front`` metrics).

Static metrics are special: power and area are deterministic functions
of ``(program, params)`` that the ASIC flow (:mod:`repro.asicflow`)
computes in microseconds — no simulation needed.  A campaign can
therefore rank candidates with *exact* static metrics from
:func:`exact_static_costs` and spend the learned model only on the
dynamic metric (cycles), mirroring how a real DSE tool mixes cheap EDA
estimates with a learned latency surrogate
(``CampaignSpec.static_source = "asicflow"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from ..errors import CampaignError
from ..hls import HardwareParams
from ..lang import ast, parse
from ..profiler import StaticProfileCache

__all__ = [
    "Objective",
    "OBJECTIVES",
    "get_objective",
    "objective_names",
    "exact_static_costs",
]

CostDict = Mapping[str, int]


@dataclass(frozen=True)
class Objective:
    """One named scalarization plus its multi-objective projection.

    ``scalar`` maps a cost dict to the minimized value; ``front`` names
    the two cost-vector metrics the report's Pareto front and
    hypervolume are computed over.
    """

    name: str
    description: str
    scalar: Callable[[CostDict], float]
    front: tuple[str, str]

    def __call__(self, costs: CostDict) -> float:
        return self.scalar(costs)

    def front_point(self, costs: CostDict) -> tuple[float, float]:
        return (float(costs[self.front[0]]), float(costs[self.front[1]]))


def _cycles(costs: CostDict) -> float:
    return float(costs["cycles"])


def _area_delay(costs: CostDict) -> float:
    return float(costs["cycles"]) * float(costs["area"])


def _energy_delay(costs: CostDict) -> float:
    # power µW × cycles ∝ energy: the EDP-style target that finally
    # feeds asicflow.estimate_power into an exploration objective.
    return float(costs["cycles"]) * float(costs["power"])


def _energy_delay_area(costs: CostDict) -> float:
    return float(costs["cycles"]) * float(costs["power"]) * float(costs["area"])


OBJECTIVES: dict[str, Objective] = {
    objective.name: objective
    for objective in (
        Objective(
            name="latency",
            description="cycles alone (pure performance)",
            scalar=_cycles,
            front=("cycles", "area"),
        ),
        Objective(
            name="area_delay",
            description="cycles x area (the explorer's classic ADP target)",
            scalar=_area_delay,
            front=("cycles", "area"),
        ),
        Objective(
            name="energy_delay",
            description="cycles x power (EDP; power from the ASIC flow)",
            scalar=_energy_delay,
            front=("cycles", "power"),
        ),
        Objective(
            name="energy_delay_area",
            description="cycles x power x area (EDAP, the full trade-off)",
            scalar=_energy_delay_area,
            front=("cycles", "power"),
        ),
    )
}


def objective_names() -> tuple[str, ...]:
    return tuple(sorted(OBJECTIVES))


def get_objective(name: str) -> Objective:
    objective = OBJECTIVES.get(name)
    if objective is None:
        raise CampaignError(
            f"unknown objective {name!r}; choose from {', '.join(objective_names())}"
        )
    return objective


def exact_static_costs(
    program: ast.Program | str,
    params: Optional[HardwareParams] = None,
    static_cache: Optional[StaticProfileCache] = None,
) -> dict[str, int]:
    """Exact ``power``/``area``/``ff`` from the ASIC flow (no simulation).

    Goes through *static_cache* when given, so a campaign sharing one
    cache across cells pays each ``(program, params)`` static pipeline
    once no matter how many strategies and objectives revisit it.
    """
    if isinstance(program, str):
        program = parse(program)
    params = params or HardwareParams()
    if static_cache is None:
        static_cache = StaticProfileCache()
    static = static_cache.get(program, params)
    return {
        "power": static.power.total_uw,
        "area": static.synthesis.area_um2,
        "ff": static.synthesis.flip_flops,
    }
