"""Default runtime-input synthesis for simulations.

The paper feeds runtime inputs via XML; here a deterministic generator
fills in whatever the caller did not provide, so every program can be
profiled without hand-writing inputs.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..lang import ast

DEFAULT_DIM = 16
DEFAULT_SCALAR = 8


def _dim_size(dim: Optional[ast.Expr], bindings: dict[str, int]) -> int:
    if dim is None:
        return DEFAULT_DIM
    if isinstance(dim, ast.IntLit):
        return max(1, dim.value)
    if isinstance(dim, ast.Var):
        return max(1, bindings.get(dim.name, DEFAULT_DIM))
    return DEFAULT_DIM


def default_inputs(
    program: ast.Program,
    function: str,
    rng: Optional[np.random.Generator] = None,
    overrides: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Build a full argument dict for *function*.

    Scalars default to :data:`DEFAULT_SCALAR`; arrays are filled with a
    small deterministic random pattern.  ``overrides`` (the ``data`` of
    the paper's quadruple) wins for any provided name, and scalar
    overrides also resolve symbolic array dimensions.
    """
    rng = rng or np.random.default_rng(0)
    overrides = overrides or {}
    func = program.function(function)
    bindings: dict[str, int] = {}
    for param in func.params:
        if not param.type.is_array:
            value = overrides.get(param.name, DEFAULT_SCALAR)
            bindings[param.name] = int(value)
    args: dict[str, Any] = {}
    for param in func.params:
        if param.name in overrides and not param.type.is_array:
            args[param.name] = overrides[param.name]
            continue
        if param.name in overrides:
            args[param.name] = np.asarray(
                overrides[param.name],
                dtype=np.float64 if param.type.base == "float" else np.int64,
            )
            continue
        if param.type.is_array:
            shape = tuple(_dim_size(d, bindings) for d in param.type.dims)
            if param.type.base == "float":
                args[param.name] = rng.standard_normal(shape)
            else:
                args[param.name] = rng.integers(-8, 9, size=shape, dtype=np.int64)
        else:
            args[param.name] = (
                float(DEFAULT_SCALAR) if param.type.base == "float" else DEFAULT_SCALAR
            )
    return args


def describe_data(data: dict[str, Any]) -> str:
    """Render runtime inputs as the paper's ``[name] = [value]`` text.

    Arrays are summarized by shape plus a content checksum so the text
    stays bounded while still distinguishing different inputs.
    """
    parts: list[str] = []
    for name in sorted(data):
        value = data[name]
        if isinstance(value, np.ndarray):
            checksum = int(np.abs(value).sum()) % 100000
            shape = "x".join(str(s) for s in value.shape)
            parts.append(f"{name} = array[{shape}]#{checksum}")
        elif isinstance(value, float):
            parts.append(f"{name} = {value:g}")
        else:
            parts.append(f"{name} = {value}")
    return ", ".join(parts)
