"""Cycle-cost accounting for the simulator.

Latencies mirror the cell library pipeline depths.  Unrolled and
parallel loops open *lanes*: compute operations scale down by the lane
product, memory operations by ``min(lanes, memory_ports)`` — ports are
a global resource, so port-limited workloads stop speeding up once the
ports saturate (this is what makes the memory-delay sweep of Figure 12
behave like the paper's).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hls import HardwareParams

INT_ADD = 1.0
INT_MUL = 3.0
INT_DIV = 18.0
FP_ADD = 4.0
FP_MUL = 5.0
FP_DIV = 24.0
CMP = 1.0
LOGIC = 1.0
LOOP_OVERHEAD = 1.0
CALL_OVERHEAD = 2.0
BRANCH_COST = 1.0

_MAX_LANES = 4096.0


@dataclass
class CycleCounter:
    """Accumulates fractional cycles under a stack of lane scopes.

    The lane product is maintained incrementally as a stack of prefix
    products (same left-to-right multiplication order as folding the
    raw stack, so the float results are bit-identical) — this keeps
    per-operation accounting O(1) instead of O(loop depth), which
    matters because the simulators charge every executed op.
    """

    params: HardwareParams
    cycles: float = 0.0
    # Prefix products of the pushed lane values: entry i is
    # lanes_0 * ... * lanes_i folded left-to-right starting from 1.0.
    _lane_stack: list[float] = field(default_factory=list)
    ops_executed: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    _compute_lanes: float = 1.0
    _memory_lanes: float = 0.0

    def __post_init__(self) -> None:
        self._memory_lanes = min(1.0, float(self.params.memory_ports))

    def push_lanes(self, lanes: float) -> None:
        product = self._lane_stack[-1] if self._lane_stack else 1.0
        product = product * max(1.0, lanes)
        self._lane_stack.append(product)
        self._compute_lanes = product if product < _MAX_LANES else _MAX_LANES
        self._memory_lanes = min(self._compute_lanes, float(self.params.memory_ports))

    def pop_lanes(self) -> None:
        self._lane_stack.pop()
        product = self._lane_stack[-1] if self._lane_stack else 1.0
        self._compute_lanes = product if product < _MAX_LANES else _MAX_LANES
        self._memory_lanes = min(self._compute_lanes, float(self.params.memory_ports))

    @property
    def compute_lanes(self) -> float:
        return self._compute_lanes

    @property
    def memory_lanes(self) -> float:
        return self._memory_lanes

    def compute(self, latency: float, count: int = 1) -> None:
        self.ops_executed += count
        self.cycles += latency * count / self._compute_lanes

    def load(self, count: int = 1) -> None:
        self.loads += count
        self.cycles += self.params.mem_read_delay * count / self._memory_lanes

    def store(self, count: int = 1) -> None:
        self.stores += count
        self.cycles += self.params.mem_write_delay * count / self._memory_lanes

    def branch(self) -> None:
        self.branches += 1
        self.cycles += BRANCH_COST / self._compute_lanes

    def loop_iteration(self) -> None:
        self.cycles += LOOP_OVERHEAD / self._compute_lanes

    def call(self) -> None:
        self.cycles += CALL_OVERHEAD

    @property
    def total_cycles(self) -> int:
        return max(1, int(round(self.cycles)))
