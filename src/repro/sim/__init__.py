"""Cycle simulator (Verilator substitute).

Two backends with identical semantics: the tree-walking
:class:`Interpreter` and the closure-lowering :class:`CompiledSimulator`
(see :mod:`repro.sim.compiler`); :func:`make_simulator` selects one via
``backend="compiled"|"interp"``.
"""

from .compiler import (
    SIM_BACKENDS,
    CompiledProgram,
    CompiledSimulator,
    clear_compile_cache,
    compile_program,
    make_simulator,
    program_digest,
)
from .cost import CycleCounter
from .inputs import DEFAULT_DIM, DEFAULT_SCALAR, default_inputs, describe_data
from .interpreter import Interpreter, SimulationResult

__all__ = [
    "Interpreter",
    "CompiledSimulator",
    "CompiledProgram",
    "SimulationResult",
    "CycleCounter",
    "SIM_BACKENDS",
    "make_simulator",
    "compile_program",
    "clear_compile_cache",
    "program_digest",
    "default_inputs",
    "describe_data",
    "DEFAULT_DIM",
    "DEFAULT_SCALAR",
]
