"""Cycle simulator (Verilator substitute)."""

from .cost import CycleCounter
from .inputs import DEFAULT_DIM, DEFAULT_SCALAR, default_inputs, describe_data
from .interpreter import Interpreter, SimulationResult

__all__ = [
    "Interpreter",
    "SimulationResult",
    "CycleCounter",
    "default_inputs",
    "describe_data",
    "DEFAULT_DIM",
    "DEFAULT_SCALAR",
]
