"""Cycle-accurate-ish AST interpreter (Verilator substitute).

Executes a program's top function on concrete inputs, accumulating cycle
costs.  Control flow is *real*: branches taken and data-dependent loop
bounds reflect the actual input values, which is what makes cycle labels
input-adaptive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

import numpy as np

from ..errors import SimulationError, SimulationLimitExceeded
from ..hls import HardwareParams
from ..lang import ast
from . import cost as c
from .cost import CycleCounter

Scalar = Union[int, float]

_INT_CLAMP = 2**62


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: Optional[Scalar]) -> None:
        super().__init__()
        self.value = value


@dataclass
class SimulationResult:
    """Outcome of one simulated execution."""

    cycles: int
    ops_executed: int
    loads: int
    stores: int
    branches: int
    return_value: Optional[Scalar] = None
    # Cycles attributed to each called operator (inclusive of nested
    # calls), keyed by function name.
    per_function_cycles: dict[str, int] = field(default_factory=dict)


class Interpreter:
    """Interprets one program under a hardware configuration."""

    def __init__(
        self,
        program: ast.Program,
        params: Optional[HardwareParams] = None,
        max_steps: int = 5_000_000,
    ) -> None:
        self._program = program
        self._functions = {func.name: func for func in program.functions}
        self._params = params or HardwareParams()
        self._max_steps = max_steps
        self._steps = 0
        self._counter: CycleCounter = CycleCounter(self._params)
        self._function_cycles: dict[str, float] = {}

    # -- public API -----------------------------------------------------

    def run(self, function: str, args: dict[str, Any]) -> SimulationResult:
        """Execute *function* with keyword *args* and return the profile.

        Array arguments may be numpy arrays or nested lists; scalars are
        ints or floats.  Arrays are passed by reference (C semantics).
        """
        if function not in self._functions:
            raise SimulationError(f"no function named {function!r}")
        func = self._functions[function]
        self._steps = 0
        self._counter = CycleCounter(self._params)
        self._function_cycles = {}
        env = self._bind_args(func, args)
        return_value: Optional[Scalar] = None
        try:
            self._exec_block(func.body, env)
        except _ReturnSignal as signal:
            return_value = signal.value
        counter = self._counter
        return SimulationResult(
            cycles=counter.total_cycles,
            ops_executed=counter.ops_executed,
            loads=counter.loads,
            stores=counter.stores,
            branches=counter.branches,
            return_value=return_value,
            per_function_cycles={
                name: max(1, int(round(value)))
                for name, value in self._function_cycles.items()
            },
        )

    # -- helpers ---------------------------------------------------------

    def _bind_args(self, func: ast.FunctionDef, args: dict[str, Any]) -> dict[str, Any]:
        env: dict[str, Any] = {}
        for param in func.params:
            if param.name not in args:
                raise SimulationError(
                    f"missing argument {param.name!r} for {func.name!r}"
                )
            value = args[param.name]
            if param.type.is_array:
                array = np.asarray(
                    value,
                    dtype=np.float64 if param.type.base == "float" else np.int64,
                )
                env[param.name] = array
            else:
                env[param.name] = (
                    float(value) if param.type.base == "float" else int(value)
                )
        return env

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self._max_steps:
            raise SimulationLimitExceeded(
                f"simulation exceeded {self._max_steps} steps"
            )

    # -- statements ------------------------------------------------------

    def _exec_block(self, block: ast.Block, env: dict[str, Any]) -> None:
        for stmt in block.stmts:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: ast.Stmt, env: dict[str, Any]) -> None:
        self._tick()
        if isinstance(stmt, ast.Decl):
            self._exec_decl(stmt, env)
        elif isinstance(stmt, ast.Assign):
            self._exec_assign(stmt, env)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, env)
        elif isinstance(stmt, ast.While):
            self._exec_while(stmt, env)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt, env)
        elif isinstance(stmt, ast.Block):
            self._exec_block(stmt, env)
        elif isinstance(stmt, ast.Return):
            value = self._eval(stmt.value, env) if stmt.value is not None else None
            raise _ReturnSignal(value)
        elif isinstance(stmt, ast.Break):
            raise _BreakSignal()
        elif isinstance(stmt, ast.Continue):
            raise _ContinueSignal()
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, env)
        else:
            raise SimulationError(f"cannot execute {type(stmt).__name__}")

    def _exec_decl(self, stmt: ast.Decl, env: dict[str, Any]) -> None:
        if stmt.type.is_array:
            shape = []
            for dim in stmt.type.dims:
                if dim is None:
                    shape.append(16)
                else:
                    size = self._eval(dim, env)
                    shape.append(max(1, int(size)))
            dtype = np.float64 if stmt.type.base == "float" else np.int64
            env[stmt.name] = np.zeros(shape, dtype=dtype)
        else:
            value: Scalar = 0.0 if stmt.type.base == "float" else 0
            if stmt.init is not None:
                value = self._eval(stmt.init, env)
                if stmt.type.base == "int":
                    value = int(value)
                else:
                    value = float(value)
            env[stmt.name] = value

    def _exec_assign(self, stmt: ast.Assign, env: dict[str, Any]) -> None:
        value = self._eval(stmt.value, env)
        target = stmt.target
        if isinstance(target, ast.Var):
            if stmt.op != "=":
                current = env.get(target.name, 0)
                value = self._apply_binop(stmt.op[0], current, value)
            if isinstance(env.get(target.name), int) and not isinstance(value, int):
                value = int(value)
            env[target.name] = value
        else:
            array = env.get(target.base.name)
            if not isinstance(array, np.ndarray):
                raise SimulationError(f"{target.base.name!r} is not an array")
            indices = tuple(
                self._clamp_index(int(self._eval(i, env)), dim)
                for i, dim in zip(target.indices, array.shape)
            )
            if len(indices) != array.ndim:
                raise SimulationError(
                    f"rank mismatch indexing {target.base.name!r}"
                )
            if stmt.op != "=":
                self._counter.load()
                current = array[indices]
                value = self._apply_binop(stmt.op[0], float(current), value)
            self._counter.store()
            if array.dtype == np.int64:
                value = int(min(max(value, -_INT_CLAMP), _INT_CLAMP))
            array[indices] = value

    @staticmethod
    def _clamp_index(index: int, dim: int) -> int:
        """C-style OOB access is UB; hardware-style wrap keeps random
        generated programs executable."""
        if 0 <= index < dim:
            return index
        return index % dim

    def _exec_for(self, stmt: ast.For, env: dict[str, Any]) -> None:
        if stmt.init is not None:
            self._exec_stmt(stmt.init, env)
        lanes = 1.0
        factor = stmt.unroll_factor
        if factor == 0:
            factor = 64  # full unroll: capped duplication
        lanes *= max(1, factor)
        if stmt.is_parallel:
            lanes *= self._params.pe_count
        self._counter.push_lanes(lanes)
        try:
            while True:
                self._tick()
                if stmt.cond is not None:
                    condition = self._eval(stmt.cond, env)
                    if not condition:
                        break
                self._counter.loop_iteration()
                try:
                    self._exec_block(stmt.body, env)
                except _ContinueSignal:
                    pass
                except _BreakSignal:
                    break
                if stmt.step is not None:
                    self._exec_stmt(stmt.step, env)
        finally:
            self._counter.pop_lanes()

    def _exec_while(self, stmt: ast.While, env: dict[str, Any]) -> None:
        while True:
            self._tick()
            if not self._eval(stmt.cond, env):
                break
            self._counter.loop_iteration()
            try:
                self._exec_block(stmt.body, env)
            except _ContinueSignal:
                continue
            except _BreakSignal:
                break

    def _exec_if(self, stmt: ast.If, env: dict[str, Any]) -> None:
        self._counter.branch()
        if self._eval(stmt.cond, env):
            self._exec_block(stmt.then, env)
        elif stmt.other is not None:
            self._exec_block(stmt.other, env)

    # -- expressions ------------------------------------------------------

    def _eval(self, expr: ast.Expr, env: dict[str, Any]) -> Scalar:
        self._tick()
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.Var):
            if expr.name not in env:
                raise SimulationError(f"undefined variable {expr.name!r}")
            value = env[expr.name]
            if isinstance(value, np.ndarray):
                return value  # type: ignore[return-value]
            return value
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left, env)
            right = self._eval(expr.right, env)
            self._charge_binop(expr.op, left, right)
            return self._apply_binop(expr.op, left, right)
        if isinstance(expr, ast.UnaryOp):
            operand = self._eval(expr.operand, env)
            self._counter.compute(c.LOGIC)
            if expr.op == "-":
                return -operand
            if expr.op == "!":
                return 0 if operand else 1
            raise SimulationError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, ast.Index):
            array = env.get(expr.base.name)
            if not isinstance(array, np.ndarray):
                raise SimulationError(f"{expr.base.name!r} is not an array")
            indices = tuple(
                self._clamp_index(int(self._eval(i, env)), dim)
                for i, dim in zip(expr.indices, array.shape)
            )
            if len(indices) != array.ndim:
                raise SimulationError(f"rank mismatch indexing {expr.base.name!r}")
            self._counter.load()
            value = array[indices]
            return float(value) if array.dtype == np.float64 else int(value)
        if isinstance(expr, ast.CallExpr):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.Ternary):
            self._counter.branch()
            if self._eval(expr.cond, env):
                return self._eval(expr.then, env)
            return self._eval(expr.other, env)
        raise SimulationError(f"cannot evaluate {type(expr).__name__}")

    def _eval_call(self, expr: ast.CallExpr, env: dict[str, Any]) -> Scalar:
        func = self._functions.get(expr.name)
        if func is None:
            raise SimulationError(f"call to unknown function {expr.name!r}")
        if len(func.params) != len(expr.args):
            raise SimulationError(
                f"{expr.name!r} expects {len(func.params)} args, got {len(expr.args)}"
            )
        self._counter.call()
        callee_env: dict[str, Any] = {}
        for param, arg in zip(func.params, expr.args):
            value = self._eval(arg, env)
            if param.type.is_array:
                if not isinstance(value, np.ndarray):
                    raise SimulationError(
                        f"argument {param.name!r} of {expr.name!r} must be an array"
                    )
                callee_env[param.name] = value  # by reference
            else:
                callee_env[param.name] = (
                    float(value) if param.type.base == "float" else int(value)
                )
        started = self._counter.cycles
        try:
            self._exec_block(func.body, callee_env)
        except _ReturnSignal as signal:
            return signal.value if signal.value is not None else 0
        finally:
            elapsed = self._counter.cycles - started
            self._function_cycles[expr.name] = (
                self._function_cycles.get(expr.name, 0.0) + elapsed
            )
        return 0

    # -- arithmetic --------------------------------------------------------

    def _charge_binop(self, op: str, left: Scalar, right: Scalar) -> None:
        is_float = isinstance(left, float) or isinstance(right, float)
        if op in ("+", "-"):
            self._counter.compute(c.FP_ADD if is_float else c.INT_ADD)
        elif op == "*":
            self._counter.compute(c.FP_MUL if is_float else c.INT_MUL)
        elif op in ("/", "%"):
            self._counter.compute(c.FP_DIV if is_float else c.INT_DIV)
        elif op in ("<", ">", "<=", ">=", "==", "!="):
            self._counter.compute(c.CMP)
        else:
            self._counter.compute(c.LOGIC)

    @staticmethod
    def _apply_binop(op: str, left: Scalar, right: Scalar) -> Scalar:
        if op == "+":
            result = left + right
        elif op == "-":
            result = left - right
        elif op == "*":
            result = left * right
        elif op == "/":
            if right == 0:
                return 0  # hardware-style guarded divide
            if isinstance(left, int) and isinstance(right, int):
                result = int(left / right)  # C truncation semantics
            else:
                result = left / right
        elif op == "%":
            if right == 0:
                return 0
            if isinstance(left, int) and isinstance(right, int):
                result = left - int(left / right) * right
            else:
                result = float(np.fmod(left, right))
        elif op == "<":
            return 1 if left < right else 0
        elif op == ">":
            return 1 if left > right else 0
        elif op == "<=":
            return 1 if left <= right else 0
        elif op == ">=":
            return 1 if left >= right else 0
        elif op == "==":
            return 1 if left == right else 0
        elif op == "!=":
            return 1 if left != right else 0
        elif op == "&&":
            return 1 if (left and right) else 0
        elif op == "||":
            return 1 if (left or right) else 0
        elif op == "&":
            return int(left) & int(right)
        elif op == "|":
            return int(left) | int(right)
        elif op == "^":
            return int(left) ^ int(right)
        elif op == "<<":
            result = int(left) << min(62, max(0, int(right)))
        elif op == ">>":
            result = int(left) >> min(62, max(0, int(right)))
        else:
            raise SimulationError(f"unknown operator {op!r}")
        if isinstance(result, int):
            if result > _INT_CLAMP:
                return _INT_CLAMP
            if result < -_INT_CLAMP:
                return -_INT_CLAMP
        elif isinstance(result, float):
            if not np.isfinite(result):
                return 0.0
            if abs(result) > 1e30:
                return 1e30 if result > 0 else -1e30
        return result
