"""Compiled simulation backend: AST lowered once into Python code.

The tree-walking :class:`~repro.sim.interpreter.Interpreter` re-dispatches
on node types, routes every variable access through an environment dict,
calls a :class:`CycleCounter` method per operation, and drives
``break``/``continue``/``return`` through Python exceptions.  This module
lowers each function *once* into a generated Python function — node
dispatch resolved at compile time, variables held in Python locals,
cycle accounting inlined as straight-line float arithmetic, control flow
handled structurally — and caches the lowering by program digest, so
repeated simulations of the same program (input sweeps, DSE candidate
re-evaluation, calibration environments) pay the lowering cost once.

Parity contract: for any program/inputs/params, :class:`CompiledSimulator`
produces a :class:`SimulationResult` whose every field is identical to the
interpreter's, raises the same :class:`SimulationError` subclasses under
the same conditions, and enforces ``max_steps`` at exactly the same step
granularity (one step per executed statement and per evaluated
expression).  Cycle accounting performs the same float operations in the
same order, so results match bit for bit.  The parity suite in
``tests/test_sim_compiler.py`` holds this contract across the bundled
workload suites.
"""

from __future__ import annotations

import hashlib
import math
from collections import OrderedDict
from typing import Any, Optional

import numpy as np

from ..errors import SimulationError, SimulationLimitExceeded
from ..hls import HardwareParams
from ..lang import ast, to_source
from . import cost as c
from .cost import _MAX_LANES
from .interpreter import SimulationResult, _INT_CLAMP


def program_digest(program: ast.Program | str) -> str:
    """Content digest of a program, stable across object identity."""
    text = program if isinstance(program, str) else to_source(program)
    return hashlib.sha1(text.encode("utf-8")).hexdigest()


_COMPARISONS = {"<", ">", "<=", ">=", "==", "!="}
_LOGICALS = {"&&": "and", "||": "or"}
_BITWISE = {"&": "&", "|": "|", "^": "^"}

# Counter state threaded through every generated function, in signature
# and return-tuple order: steps, cycles, ops, loads, stores, branches.
_COUNTERS = "s, cyc, ops, lds, sts, brs"


class _FunctionWriter:
    """Emits the body of one generated function."""

    def __init__(self, gen: "_CodeGen", func: ast.FunctionDef) -> None:
        self.gen = gen
        self.func = func
        self.lines: list[str] = []
        self.indent = 1
        self._temp = 0
        # Names definitely bound at the current emission point; reads of
        # any other name need the interpreter's runtime-error fallback.
        self.bound: set[str] = {param.name for param in func.params}
        # Current lane-scope locals (prefix product, compute, memory).
        self.lanes = ("1.0", "1.0", "_m_init")
        self._lane_depth = 0

    # -- low-level emission --------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def temp(self) -> str:
        self._temp += 1
        return f"t{self._temp}"

    def tick(self) -> None:
        self.emit("s += 1")
        self.emit('if s > MS: raise SimulationLimitExceeded("simulation exceeded %d steps" % MS)')

    def var(self, name: str) -> str:
        return "V" + name

    # -- cycle accounting (inlined CycleCounter semantics) -------------

    def charge_compute(self, latency: float) -> None:
        self.emit("ops += 1")
        self.emit(f"cyc += {latency!r} / {self.lanes[1]}")

    def charge_compute_typed(self, left: str, right: str, fp: float, i: float) -> None:
        self.emit("ops += 1")
        self.emit(
            f"cyc += ({fp!r} if isinstance({left}, float) or isinstance({right}, float)"
            f" else {i!r}) / {self.lanes[1]}"
        )

    def charge_load(self) -> None:
        self.emit("lds += 1")
        self.emit(f"cyc += R / {self.lanes[2]}")

    def charge_store(self) -> None:
        self.emit("sts += 1")
        self.emit(f"cyc += W / {self.lanes[2]}")

    def charge_branch(self) -> None:
        self.emit("brs += 1")
        self.emit(f"cyc += {c.BRANCH_COST!r} / {self.lanes[1]}")

    def charge_loop_iteration(self) -> None:
        self.emit(f"cyc += {c.LOOP_OVERHEAD!r} / {self.lanes[1]}")

    def clamp_num(self, value: str) -> None:
        """Inline the interpreter's post-arithmetic clamping."""
        self.emit(f"if isinstance({value}, int):")
        self.emit(f"    if {value} > {_INT_CLAMP}: {value} = {_INT_CLAMP}")
        self.emit(f"    elif {value} < {-_INT_CLAMP}: {value} = {-_INT_CLAMP}")
        self.emit(f"elif isinstance({value}, float):")
        self.emit(f"    if not math.isfinite({value}): {value} = 0.0")
        self.emit(f"    elif abs({value}) > 1e30: {value} = 1e30 if {value} > 0 else -1e30")

    # -- expressions ----------------------------------------------------

    def expr(self, expr: ast.Expr) -> str:
        """Emit evaluation of *expr*; returns the temp holding its value."""
        self.tick()
        if isinstance(expr, (ast.IntLit, ast.FloatLit)):
            value = self.temp()
            self.emit(f"{value} = {expr.value!r}")
            return value
        if isinstance(expr, ast.Var):
            value = self.temp()
            if expr.name in self.bound:
                self.emit(f"{value} = {self.var(expr.name)}")
            else:
                self.emit("try:")
                self.emit(f"    {value} = {self.var(expr.name)}")
                self.emit("except UnboundLocalError:")
                self.emit(
                    f'    raise SimulationError("undefined variable {expr.name!r}") from None'
                )
            return value
        if isinstance(expr, ast.BinOp):
            return self._binop(expr)
        if isinstance(expr, ast.UnaryOp):
            operand = self.expr(expr.operand)
            self.charge_compute(c.LOGIC)
            value = self.temp()
            if expr.op == "-":
                self.emit(f"{value} = -{operand}")
            elif expr.op == "!":
                self.emit(f"{value} = 0 if {operand} else 1")
            else:
                self.emit(f'raise SimulationError("unknown unary operator {expr.op!r}")')
                self.emit(f"{value} = 0")
            return value
        if isinstance(expr, ast.Index):
            array, selector = self._array_access(expr.base.name, expr.indices)
            self.charge_load()
            value = self.temp()
            self.emit(f"{value} = {array}[{selector}]")
            self.emit(
                f"{value} = float({value}) if {array}.dtype == np.float64 else int({value})"
            )
            return value
        if isinstance(expr, ast.CallExpr):
            return self._call(expr)
        if isinstance(expr, ast.Ternary):
            self.charge_branch()
            cond = self.expr(expr.cond)
            value = self.temp()
            saved = set(self.bound)
            self.emit(f"if {cond}:")
            self.indent += 1
            then_value = self.expr(expr.then)
            self.emit(f"{value} = {then_value}")
            self.indent -= 1
            self.bound = set(saved)
            self.emit("else:")
            self.indent += 1
            other_value = self.expr(expr.other)
            self.emit(f"{value} = {other_value}")
            self.indent -= 1
            self.bound = saved
            return value
        raise SimulationError(f"cannot evaluate {type(expr).__name__}")

    def _binop(self, expr: ast.BinOp) -> str:
        op = expr.op
        left = self.expr(expr.left)
        right = self.expr(expr.right)
        value = self.temp()
        if op in ("+", "-"):
            self.charge_compute_typed(left, right, c.FP_ADD, c.INT_ADD)
            self.emit(f"{value} = {left} {op} {right}")
            self.clamp_num(value)
        elif op == "*":
            self.charge_compute_typed(left, right, c.FP_MUL, c.INT_MUL)
            self.emit(f"{value} = {left} * {right}")
            self.clamp_num(value)
        elif op in ("/", "%"):
            self.charge_compute_typed(left, right, c.FP_DIV, c.INT_DIV)
            self.emit(f"if {right} == 0:")
            self.emit(f"    {value} = 0")
            self.emit("else:")
            self.indent += 1
            self.emit(f"if isinstance({left}, int) and isinstance({right}, int):")
            if op == "/":
                self.emit(f"    {value} = int({left} / {right})")
            else:
                self.emit(f"    {value} = {left} - int({left} / {right}) * {right}")
            self.emit("else:")
            if op == "/":
                self.emit(f"    {value} = {left} / {right}")
            else:
                self.emit(f"    {value} = float(np.fmod({left}, {right}))")
            self.clamp_num(value)
            self.indent -= 1
        elif op in _COMPARISONS:
            self.charge_compute(c.CMP)
            self.emit(f"{value} = 1 if {left} {op} {right} else 0")
        elif op in _LOGICALS:
            self.charge_compute(c.LOGIC)
            self.emit(f"{value} = 1 if ({left} {_LOGICALS[op]} {right}) else 0")
        elif op in _BITWISE:
            self.charge_compute(c.LOGIC)
            self.emit(f"{value} = int({left}) {op} int({right})")
        elif op in ("<<", ">>"):
            self.charge_compute(c.LOGIC)
            self.emit(f"{value} = int({left}) {op} min(62, max(0, int({right})))")
            self.emit(f"if {value} > {_INT_CLAMP}: {value} = {_INT_CLAMP}")
            self.emit(f"elif {value} < {-_INT_CLAMP}: {value} = {-_INT_CLAMP}")
        else:
            self.charge_compute(c.LOGIC)
            self.emit(f'raise SimulationError("unknown operator {op!r}")')
            self.emit(f"{value} = 0")
        return value

    def _array_access(self, name: str, index_exprs: list[ast.Expr]) -> tuple[str, str]:
        """Fetch array *name* and evaluate/clamp its indices; returns
        (array temp, selector temp holding the index tuple).

        The interpreter builds indices with ``zip(index_exprs, shape)``,
        which truncates at the shorter side: extra index expressions are
        silently *not evaluated* (no steps ticked), and a rank mismatch
        is only raised when there are fewer indices than dimensions.
        The fast path below covers the matching-rank case; the slow path
        replicates the truncation semantics exactly.
        """
        array = self.temp()
        if name in self.bound:
            self.emit(f"{array} = {self.var(name)}")
        else:
            self.emit("try:")
            self.emit(f"    {array} = {self.var(name)}")
            self.emit("except UnboundLocalError:")
            self.emit(f"    {array} = None")
        self.emit(f"if not isinstance({array}, np.ndarray):")
        self.emit(f'    raise SimulationError("{name!r} is not an array")')
        count = len(index_exprs)
        selector = self.temp()
        self.emit(f"if {array}.ndim == {count}:")
        self.indent += 1
        index_temps = []
        for position, index_expr in enumerate(index_exprs):
            index = self.expr(index_expr)
            dim = self.temp()
            self.emit(f"{index} = int({index})")
            self.emit(f"{dim} = {array}.shape[{position}]")
            self.emit(f"if not 0 <= {index} < {dim}: {index} = {index} % {dim}")
            index_temps.append(index)
        comma = "," if count == 1 else ""
        self.emit(f"{selector} = ({', '.join(index_temps)}{comma})")
        self.indent -= 1
        self.emit("else:")
        self.indent += 1
        ndim = self.temp()
        collected = self.temp()
        self.emit(f"{ndim} = {array}.ndim")
        self.emit(f"{collected} = []")
        for position, index_expr in enumerate(index_exprs):
            self.emit(f"if {position} < {ndim}:")
            self.indent += 1
            index = self.expr(index_expr)
            dim = self.temp()
            self.emit(f"{index} = int({index})")
            self.emit(f"{dim} = {array}.shape[{position}]")
            self.emit(f"if not 0 <= {index} < {dim}: {index} = {index} % {dim}")
            self.emit(f"{collected}.append({index})")
            self.indent -= 1
        self.emit(f"if {ndim} > {count}:")
        self.emit(f'    raise SimulationError("rank mismatch indexing {name!r}")')
        self.emit(f"{selector} = tuple({collected})")
        self.indent -= 1
        return array, selector

    def _call(self, expr: ast.CallExpr) -> str:
        name = expr.name
        func = self.gen.functions.get(name)
        value = self.temp()
        if func is None:
            self.emit(f'raise SimulationError("call to unknown function {name!r}")')
            self.emit(f"{value} = 0")
            return value
        if len(func.params) != len(expr.args):
            message = f"{name!r} expects {len(func.params)} args, got {len(expr.args)}"
            self.emit(f'raise SimulationError("{message}")')
            self.emit(f"{value} = 0")
            return value
        self.emit(f"cyc += {c.CALL_OVERHEAD!r}")
        arg_temps = []
        for param, arg in zip(func.params, expr.args):
            arg_value = self.expr(arg)
            if param.type.is_array:
                self.emit(f"if not isinstance({arg_value}, np.ndarray):")
                self.emit(
                    f'    raise SimulationError("argument {param.name!r} of '
                    f'{name!r} must be an array")'
                )
            elif param.type.base == "float":
                self.emit(f"{arg_value} = float({arg_value})")
            else:
                self.emit(f"{arg_value} = int({arg_value})")
            arg_temps.append(arg_value)
        started = self.temp()
        self.emit(f"{started} = cyc")
        prod, clanes, mlanes = self.lanes
        args = ", ".join(
            ["MS", "R", "W", "PE", "MPF", "fcyc", _COUNTERS, prod, clanes, mlanes]
            + arg_temps
        )
        self.emit(f"{_COUNTERS}, {value} = {self.gen.fn_name(name)}({args})")
        self.emit(
            f'fcyc["{name}"] = fcyc.get("{name}", 0.0) + (cyc - {started})'
        )
        self.emit(f"if {value} is None: {value} = 0")
        return value

    # -- statements -----------------------------------------------------

    def block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            self.stmt(stmt)

    def stmt(self, stmt: ast.Stmt) -> None:
        self.tick()
        if isinstance(stmt, ast.Decl):
            self._decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt)
        elif isinstance(stmt, ast.For):
            self._for(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.Block):
            self.block(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self.expr(stmt.value)
                self.emit(f"return {_COUNTERS}, {value}")
            else:
                self.emit(f"return {_COUNTERS}, None")
        elif isinstance(stmt, ast.Break):
            self.emit(self.gen_break())
        elif isinstance(stmt, ast.Continue):
            self.emit(self.gen_continue())
        elif isinstance(stmt, ast.ExprStmt):
            self.expr(stmt.expr)
        else:
            self.emit(f'raise SimulationError("cannot execute {type(stmt).__name__}")')

    # Break/continue mapping: Python's break/continue bind to the
    # innermost loop, which is exactly the interpreter's signal scoping.
    # A `continue` inside a For must still run the step statement, so
    # For bodies with top-level continues are wrapped (see _for).  The
    # defaults below only trigger for break/continue outside any loop —
    # a malformed program either way (the interpreter leaks its internal
    # signal exception there); raising keeps the generated module valid
    # Python even when such a statement sits in dead code.
    def gen_break(self) -> str:
        return self._break_line

    def gen_continue(self) -> str:
        return self._continue_line

    _break_line = 'raise SimulationError("break outside loop")'
    _continue_line = 'raise SimulationError("continue outside loop")'

    def _decl(self, stmt: ast.Decl) -> None:
        name = self.var(stmt.name)
        if stmt.type.is_array:
            dims = []
            for dim in stmt.type.dims:
                if dim is None:
                    dims.append("16")
                else:
                    size = self.expr(dim)
                    self.emit(f"{size} = max(1, int({size}))")
                    dims.append(size)
            dtype = "np.float64" if stmt.type.base == "float" else "np.int64"
            shape = ", ".join(dims)
            comma = "," if len(dims) == 1 else ""
            self.emit(f"{name} = np.zeros(({shape}{comma}), dtype={dtype})")
        elif stmt.init is not None:
            value = self.expr(stmt.init)
            cast = "int" if stmt.type.base == "int" else "float"
            self.emit(f"{name} = {cast}({value})")
        else:
            self.emit(f"{name} = {'0.0' if stmt.type.base == 'float' else '0'}")
        self.bound.add(stmt.name)

    def _assign(self, stmt: ast.Assign) -> None:
        value = self.expr(stmt.value)
        target = stmt.target
        compound = stmt.op != "="
        if isinstance(target, ast.Var):
            name = self.var(target.name)
            old = self.temp()
            if target.name in self.bound:
                self.emit(f"{old} = {name}")
            else:
                self.emit("try:")
                self.emit(f"    {old} = {name}")
                self.emit("except UnboundLocalError:")
                self.emit(f"    {old} = None")
            if compound:
                # env.get(name, 0) for the operand; env.get(name) → None
                # (when missing) for the coercion check below.
                operand = self.temp()
                self.emit(f"{operand} = 0 if {old} is None else {old}")
                self._apply_compound(stmt.op[0], operand, value)
            self.emit(
                f"if isinstance({old}, int) and not isinstance({value}, int): "
                f"{value} = int({value})"
            )
            self.emit(f"{name} = {value}")
            self.bound.add(target.name)
            return
        array, indices = self._array_access(target.base.name, target.indices)
        if compound:
            self.charge_load()
            current = self.temp()
            self.emit(f"{current} = float({array}[{indices}])")
            self._apply_compound(stmt.op[0], current, value)
        self.charge_store()
        self.emit(f"if {array}.dtype == np.int64:")
        self.emit(
            f"    {value} = int(min(max({value}, {-_INT_CLAMP}), {_INT_CLAMP}))"
        )
        self.emit(f"{array}[{indices}] = {value}")

    def _apply_compound(self, op: str, current: str, value: str) -> None:
        """value = _apply_binop(op, current, value), without charging
        (the interpreter charges only the RHS expression's own ops)."""
        if op in ("+", "-", "*"):
            self.emit(f"{value} = {current} {op} {value}")
            self.clamp_num(value)
        elif op in ("/", "%"):
            self.emit(f"if {value} == 0:")
            self.emit(f"    {value} = 0")
            self.emit("else:")
            self.indent += 1
            self.emit(f"if isinstance({current}, int) and isinstance({value}, int):")
            if op == "/":
                self.emit(f"    {value} = int({current} / {value})")
            else:
                self.emit(f"    {value} = {current} - int({current} / {value}) * {value}")
            self.emit("else:")
            if op == "/":
                self.emit(f"    {value} = {current} / {value}")
            else:
                self.emit(f"    {value} = float(np.fmod({current}, {value}))")
            self.clamp_num(value)
            self.indent -= 1
        elif op in _BITWISE:
            self.emit(f"{value} = int({current}) {_BITWISE[op]} int({value})")
        elif op == "<":
            self.emit(f"{value} = 1 if {current} < {value} else 0")
        elif op == ">":
            self.emit(f"{value} = 1 if {current} > {value} else 0")
        else:
            self.emit(f'raise SimulationError("unknown operator {op!r}")')

    def _for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self.stmt(stmt.init)
        factor = stmt.unroll_factor
        if factor == 0:
            factor = 64  # full unroll: capped duplication
        base_lanes = 1.0 * max(1, factor)
        outer_lanes = self.lanes
        self._lane_depth += 1
        depth = self._lane_depth
        prod, clanes, mlanes = f"_p{depth}", f"_c{depth}", f"_m{depth}"
        if stmt.is_parallel:
            raw = self.temp()
            self.emit(f"{raw} = {base_lanes!r} * PE")
            self.emit(f"{prod} = {outer_lanes[0]} * max(1.0, {raw})")
        else:
            self.emit(f"{prod} = {outer_lanes[0]} * {max(1.0, base_lanes)!r}")
        self.emit(f"{clanes} = {prod} if {prod} < {_MAX_LANES!r} else {_MAX_LANES!r}")
        self.emit(f"{mlanes} = {clanes} if {clanes} < MPF else MPF")
        self.lanes = (prod, clanes, mlanes)
        needs_wrapper = any(
            isinstance(inner, (ast.Break, ast.Continue))
            for inner in _loop_level_stmts(stmt.body)
        )
        self.emit("while True:")
        self.indent += 1
        self.tick()
        if stmt.cond is not None:
            cond = self.expr(stmt.cond)
            self.emit(f"if not {cond}: break")
        self.charge_loop_iteration()
        saved = set(self.bound)
        if needs_wrapper:
            flag = self.temp()
            self.emit(f"{flag} = False")
            self.emit("while True:")
            self.indent += 1
            old_break, old_continue = self._break_line, self._continue_line
            self._break_line = f"{flag} = True; break"
            self._continue_line = "break"
            self.block(stmt.body)
            self._break_line, self._continue_line = old_break, old_continue
            self.emit("break")
            self.indent -= 1
            self.emit(f"if {flag}: break")
        else:
            self.block(stmt.body)
        if stmt.step is not None:
            self.stmt(stmt.step)
        self.indent -= 1
        self.bound = saved
        self.lanes = outer_lanes
        self._lane_depth -= 1

    def _while(self, stmt: ast.While) -> None:
        self.emit("while True:")
        self.indent += 1
        self.tick()
        cond = self.expr(stmt.cond)
        self.emit(f"if not {cond}: break")
        self.charge_loop_iteration()
        saved = set(self.bound)
        old_break, old_continue = self._break_line, self._continue_line
        self._break_line = "break"
        self._continue_line = "continue"
        self.block(stmt.body)
        self._break_line, self._continue_line = old_break, old_continue
        self.indent -= 1
        self.bound = saved

    def _if(self, stmt: ast.If) -> None:
        self.charge_branch()
        cond = self.expr(stmt.cond)
        saved = set(self.bound)
        self.emit(f"if {cond}:")
        self.indent += 1
        self.block(stmt.then)
        self.emit("pass")
        self.indent -= 1
        self.bound = set(saved)
        if stmt.other is not None:
            self.emit("else:")
            self.indent += 1
            self.block(stmt.other)
            self.emit("pass")
            self.indent -= 1
            self.bound = set(saved)


def _loop_level_stmts(block: ast.Block):
    """Statements belonging to *block*'s loop level: recurses into If
    and bare Block bodies (whose break/continue bind to this loop) but
    not into nested loops."""
    for stmt in block.stmts:
        yield stmt
        if isinstance(stmt, ast.If):
            yield from _loop_level_stmts(stmt.then)
            if stmt.other is not None:
                yield from _loop_level_stmts(stmt.other)
        elif isinstance(stmt, ast.Block):
            yield from _loop_level_stmts(stmt)


class _CodeGen:
    """Generates one Python module of simulation functions per program."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.functions = {func.name: func for func in program.functions}

    @staticmethod
    def fn_name(name: str) -> str:
        return "_f_" + name

    def generate(self) -> str:
        parts: list[str] = []
        for func in self.program.functions:
            writer = _FunctionWriter(self, func)
            params = "".join(", " + writer.var(p.name) for p in func.params)
            parts.append(
                f"def {self.fn_name(func.name)}"
                f"(MS, R, W, PE, MPF, fcyc, {_COUNTERS}, _prod0, _clanes0, _m_init{params}):"
            )
            # The caller's lane scope is inherited (one shared counter in
            # the interpreter); pushes inside this function restore
            # lexically on loop exit.
            writer.lanes = ("_prod0", "_clanes0", "_m_init")
            writer.block(func.body)
            writer.emit(f"return {_COUNTERS}, None")
            parts.extend(writer.lines)
            parts.append("")
        return "\n".join(parts)


class CompiledProgram:
    """All functions of one program lowered to generated Python code."""

    def __init__(self, program: ast.Program) -> None:
        self.specs = {func.name: func for func in program.functions}
        self.source = _CodeGen(program).generate()
        namespace: dict[str, Any] = {
            "np": np,
            "math": math,
            "SimulationError": SimulationError,
            "SimulationLimitExceeded": SimulationLimitExceeded,
        }
        exec(compile(self.source, "<repro.sim.compiled>", "exec"), namespace)
        self.entries = {
            name: namespace[_CodeGen.fn_name(name)] for name in self.specs
        }


_COMPILE_CACHE: "OrderedDict[str, CompiledProgram]" = OrderedDict()
_COMPILE_CACHE_LIMIT = 256


def compile_program(
    program: ast.Program, digest: Optional[str] = None
) -> CompiledProgram:
    """Lower *program* to Python code, memoized by content digest."""
    key = digest or program_digest(program)
    cached = _COMPILE_CACHE.get(key)
    if cached is not None:
        _COMPILE_CACHE.move_to_end(key)
        return cached
    compiled = CompiledProgram(program)
    _COMPILE_CACHE[key] = compiled
    while len(_COMPILE_CACHE) > _COMPILE_CACHE_LIMIT:
        _COMPILE_CACHE.popitem(last=False)
    return compiled


def clear_compile_cache() -> None:
    _COMPILE_CACHE.clear()


class CompiledSimulator:
    """Drop-in replacement for :class:`Interpreter` using generated code.

    Same constructor and ``run`` signature; identical results.
    """

    def __init__(
        self,
        program: ast.Program,
        params: Optional[HardwareParams] = None,
        max_steps: int = 5_000_000,
        digest: Optional[str] = None,
    ) -> None:
        self._program = program
        self._params = params or HardwareParams()
        self._max_steps = max_steps
        self._compiled = compile_program(program, digest=digest)

    def run(self, function: str, args: dict[str, Any]) -> SimulationResult:
        """Execute *function* with keyword *args* and return the profile."""
        if function not in self._compiled.entries:
            raise SimulationError(f"no function named {function!r}")
        func = self._compiled.specs[function]
        bound = self._bind_args(func, args)
        params = self._params
        function_cycles: dict[str, float] = {}
        memory_lanes = min(1.0, float(params.memory_ports))
        s, cyc, ops, lds, sts, brs, return_value = self._compiled.entries[function](
            self._max_steps,
            params.mem_read_delay,
            params.mem_write_delay,
            params.pe_count,
            float(params.memory_ports),
            function_cycles,
            0,  # steps
            0.0,  # cycles
            0,  # ops
            0,  # loads
            0,  # stores
            0,  # branches
            1.0,  # lane prefix product
            1.0,  # compute lanes
            memory_lanes,
            *bound,
        )
        return SimulationResult(
            cycles=max(1, int(round(cyc))),
            ops_executed=ops,
            loads=lds,
            stores=sts,
            branches=brs,
            return_value=return_value,
            per_function_cycles={
                name: max(1, int(round(value)))
                for name, value in function_cycles.items()
            },
        )

    @staticmethod
    def _bind_args(func: ast.FunctionDef, args: dict[str, Any]) -> list[Any]:
        bound: list[Any] = []
        for param in func.params:
            if param.name not in args:
                raise SimulationError(
                    f"missing argument {param.name!r} for {func.name!r}"
                )
            value = args[param.name]
            if param.type.is_array:
                bound.append(
                    np.asarray(
                        value,
                        dtype=np.float64 if param.type.base == "float" else np.int64,
                    )
                )
            else:
                bound.append(
                    float(value) if param.type.base == "float" else int(value)
                )
        return bound


SIM_BACKENDS = ("compiled", "interp")


def make_simulator(
    program: ast.Program,
    params: Optional[HardwareParams] = None,
    max_steps: int = 5_000_000,
    backend: str = "compiled",
    digest: Optional[str] = None,
):
    """Build a simulator for *program* under the selected *backend*.

    ``digest``, when the caller already computed it, skips re-hashing
    the program for the compile-cache lookup.
    """
    if backend == "compiled":
        return CompiledSimulator(program, params, max_steps=max_steps, digest=digest)
    if backend == "interp":
        from .interpreter import Interpreter

        return Interpreter(program, params, max_steps=max_steps)
    raise ValueError(
        f"unknown simulation backend {backend!r}; expected one of {SIM_BACKENDS}"
    )
