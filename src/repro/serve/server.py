"""Stdlib HTTP front end for the prediction engine.

``ThreadingHTTPServer`` gives one handler thread per connection; every
``/predict`` handler submits its prepared request to the shared
:class:`MicroBatcher` and blocks on the future, so concurrent callers
are transparently coalesced into batched encoder passes.

Endpoints (JSON in / JSON out):

* ``POST /predict`` — ``{"program": source, "data": {...}, "params":
  {...}, "model": name, "beam_width": k}`` → per-metric predictions.
* ``POST /profile`` — ground-truth costs through the shared
  static-profile cache.
* ``POST /explore`` — rank mapping candidates with the warm model.
* ``GET /healthz`` — liveness + registered models.
* ``GET /stats`` — engine, cache and batch-size statistics.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional

from ..core import CostPrediction
from ..errors import ReproError, ServeError
from ..hls import HardwareParams
from .batching import MicroBatcher
from .engine import PredictionEngine

_PARAM_FIELDS = (
    "mem_read_delay",
    "mem_write_delay",
    "pe_count",
    "memory_ports",
    "clock_period_ns",
)


def params_from_payload(payload: Optional[dict]) -> HardwareParams:
    """Hardware params from a JSON object (``mem_delay`` sets both
    read and write delay)."""
    payload = dict(payload or {})
    kwargs: dict[str, Any] = {}
    mem_delay = payload.pop("mem_delay", None)
    if mem_delay is not None:
        kwargs["mem_read_delay"] = int(mem_delay)
        kwargs["mem_write_delay"] = int(mem_delay)
    for name in _PARAM_FIELDS:
        if name in payload:
            value = payload.pop(name)
            kwargs[name] = float(value) if name == "clock_period_ns" else int(value)
    if payload:
        raise ServeError(f"unknown params fields: {sorted(payload)}")
    return HardwareParams(**kwargs)


def prediction_payload(prediction: CostPrediction) -> dict:
    return {
        metric: {
            "value": pred.value,
            "confidence": round(pred.confidence, 6),
            "beam_values": list(pred.beam_values),
        }
        for metric, pred in prediction.per_metric.items()
    }


class _Handler(BaseHTTPRequestHandler):
    server: "PredictionServer._Http"  # type: ignore[assignment]

    # One request per connection (HTTP/1.0): handler threads never
    # linger on keep-alive sockets, so shutdown drains quickly.

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.owner.verbose:
            super().log_message(format, *args)

    # -- plumbing --------------------------------------------------------

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServeError("request body required")
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        return payload

    # -- routes ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        owner = self.server.owner
        if self.path == "/healthz":
            self._send_json(
                200,
                {
                    "status": "ok",
                    "models": owner.engine.registry.names(),
                    "uptime_s": round(time.monotonic() - owner.started_at, 3),
                },
            )
        elif self.path == "/stats":
            stats = owner.engine.stats_dict()
            stats["batching"] = owner.batcher.stats.as_dict()
            self._send_json(200, stats)
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802
        owner = self.server.owner
        try:
            payload = self._read_json()
            if self.path == "/predict":
                self._send_json(200, owner.handle_predict(payload))
            elif self.path == "/profile":
                self._send_json(200, owner.handle_profile(payload))
            elif self.path == "/explore":
                self._send_json(200, owner.handle_explore(payload))
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
                return
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            owner.engine.stats.errors += 1
            self._send_json(400, {"error": f"{type(exc).__name__}: {exc}"})
        except Exception as exc:  # pragma: no cover - defensive
            owner.engine.stats.errors += 1
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})


class PredictionServer:
    """The persistent service: engine + micro-batcher + HTTP listener."""

    class _Http(ThreadingHTTPServer):
        owner: "PredictionServer"

    def __init__(
        self,
        engine: PredictionEngine,
        host: str = "127.0.0.1",
        port: int = 8173,
        max_batch: int = 8,
        max_wait_ms: float = 10.0,
        default_model: str = "default",
        request_timeout_s: float = 120.0,
        verbose: bool = False,
    ) -> None:
        self.engine = engine
        self.default_model = default_model
        self.request_timeout_s = request_timeout_s
        self.verbose = verbose
        self.started_at = time.monotonic()
        self.batcher = MicroBatcher(
            engine.predict_requests,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            length_of=self._request_length,
            score_budget=self._score_budget(engine, default_model),
        )
        self._http = self._Http((host, port), _Handler)
        self._http.owner = self
        self._thread: Optional[threading.Thread] = None
        self._serving = False
        self._closed = False

    @staticmethod
    def _score_budget(engine: PredictionEngine, default_model: str) -> Optional[int]:
        """Per-bucket ``batch × seq²`` budget normalized by head count,
        matching the ``_SCORE_BUDGET`` chunking inside ``encode_batch``."""
        from ..core.model import CostModel

        try:
            model = engine.registry.get(default_model)
        except ServeError:
            return None
        return CostModel._SCORE_BUDGET // max(1, model.encoder.config.heads)

    def _request_length(self, request) -> int:
        try:
            model = self.engine.registry.get(request.model)
        except ServeError:
            # Unknown model: bucket by 0; the flush itself raises the
            # real error into the request's future.
            return 0
        limit = model.encoder.config.max_seq_len
        return min(len(model.tokenize(request.bundle)), limit)

    # -- request handling (called from handler threads) ------------------

    def handle_predict(self, payload: dict) -> dict:
        source = payload.get("program")
        if not isinstance(source, str) or not source.strip():
            raise ServeError("'program' must be non-empty program source text")
        request = self.engine.build_request(
            source,
            data=payload.get("data") or None,
            params=params_from_payload(payload.get("params")),
            model=payload.get("model") or self.default_model,
            beam_width=payload.get("beam_width"),
        )
        future = self.batcher.submit(request)
        prediction = future.result(timeout=self.request_timeout_s)
        return {"model": request.model, "predictions": prediction_payload(prediction)}

    def handle_profile(self, payload: dict) -> dict:
        source = payload.get("program")
        if not isinstance(source, str) or not source.strip():
            raise ServeError("'program' must be non-empty program source text")
        costs = self.engine.profile(
            source,
            data=payload.get("data") or None,
            params=params_from_payload(payload.get("params")),
        )
        return {"costs": costs}

    def handle_explore(self, payload: dict) -> dict:
        source = payload.get("program")
        if not isinstance(source, str) or not source.strip():
            raise ServeError("'program' must be non-empty program source text")
        model = payload.get("model") or self.default_model
        explorer = self.engine.explorer_for(model)
        # Handler threads must not drive the shared model concurrently
        # with the micro-batcher worker (see PredictionEngine.lock).
        with self.engine.lock:
            points = explorer.explore(
                source,
                data=payload.get("data") or None,
                unroll_factors=tuple(payload.get("unroll") or (1, 2, 4)),
                memory_delays=tuple(payload.get("mem_delays") or (10,)),
                max_candidates=int(payload.get("max_candidates") or 16),
            )
        verify_top = int(payload.get("verify_top") or 0)
        if verify_top:
            explorer.verify_top(
                points, top_k=verify_top, data=payload.get("data") or None
            )
        return {
            "model": model,
            "candidates": [
                {
                    "design": point.describe(),
                    "predicted": point.predicted,
                    "score": point.score,
                    "actual": point.actual,
                }
                for point in points
            ],
            "cache": explorer.predictor.stats_dict(),
        }

    # -- lifecycle -------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._http.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "PredictionServer":
        """Serve in a background thread (tests, benches, embedding)."""
        if self._thread is not None:
            raise ServeError("server already started")
        self._serving = True
        self._thread = threading.Thread(
            target=self._http.serve_forever, name="serve-http", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._serving = True
        try:
            self._http.serve_forever()
        finally:
            self.close()

    def close(self) -> None:
        """Graceful shutdown: stop listening, then drain the batcher."""
        if self._closed:
            return
        self._closed = True
        if self._serving:
            self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.batcher.close(timeout=30.0)
