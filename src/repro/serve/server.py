"""Stdlib HTTP front end for the prediction service.

``ThreadingHTTPServer`` gives one handler thread per connection; every
``/predict`` handler submits its prepared request to the shared
:class:`MicroBatcher` and blocks on the future, so concurrent callers
are transparently coalesced into batched encoder passes.

The handlers are thin adapters over a :class:`repro.api.Session`: each
one decodes the request body into an API job dataclass, lets the
session compute, and encodes the result back.  Two body formats are
accepted on every POST route:

* **versioned** — a :mod:`repro.api.codec` payload (has ``"schema"``);
  the response is the codec encoding of the result dataclass.  This is
  what :meth:`ServeClient.predict_job` speaks.
* **legacy** — the bare field layout (``{"program": ..., "data": ...,
  "params": ..., ...}``); the response keeps the original layout.

Endpoints (JSON in / JSON out):

* ``POST /predict`` — per-metric predictions.
* ``POST /profile`` — ground-truth costs through the shared
  static-profile cache.
* ``POST /explore`` — rank mapping candidates with the warm model.
* ``GET /healthz`` — liveness + registered models.
* ``GET /stats`` — engine, cache and batch-size statistics (legacy
  layout, now re-backed by the unified metrics registry).
* ``GET /metrics`` — the full :mod:`repro.telemetry` registry snapshot.
* ``GET /traces`` / ``GET /traces/<id>`` — buffered trace ids / the
  spans of one trace.
* ``GET /debug/profile?seconds=N`` — sample the live process for N
  seconds and return CPU/peak-memory attributed to the spans that were
  open while the window ran (409 if a window is already sampling).

Incoming POSTs honour ``X-Repro-Trace-Id`` / ``X-Repro-Span-Id``: the
server-side span joins the client's trace instead of starting its own,
so one trace id spans client → server → engine → batcher.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Optional

from ..core import CostPrediction
from ..errors import ReproError, ServeError
from ..hls import HardwareParams
from ..telemetry import METRICS, TRACER, clock
from ..telemetry.trace import SPAN_ID_HEADER, TRACE_ID_HEADER, SpanContext
from .batching import MicroBatcher
from .engine import PredictionEngine

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..analysis.cache import AnalysisCache
    from ..api.session import Session


def params_from_payload(payload: Optional[dict]) -> HardwareParams:
    """Hardware params from a JSON object (``mem_delay`` sets both
    read and write delay).  Thin wrapper over the shared codec."""
    from ..api.codec import params_from_payload as decode_params

    return decode_params(dict(payload or {}))


def prediction_payload(prediction: CostPrediction) -> dict:
    return {
        metric: {
            "value": pred.value,
            "confidence": round(pred.confidence, 6),
            "beam_values": list(pred.beam_values),
        }
        for metric, pred in prediction.per_metric.items()
    }


class _Handler(BaseHTTPRequestHandler):
    server: "PredictionServer._Http"  # type: ignore[assignment]

    # One request per connection (HTTP/1.0): handler threads never
    # linger on keep-alive sockets, so shutdown drains quickly.

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.owner.verbose:
            super().log_message(format, *args)

    # -- plumbing --------------------------------------------------------

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServeError("request body required")
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        return payload

    # -- routes ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        owner = self.server.owner
        if self.path == "/healthz":
            self._send_json(
                200,
                {
                    "status": "ok",
                    "models": owner.engine.registry.names(),
                    "uptime_s": round(clock.now() - owner.started_at, 3),
                },
            )
        elif self.path == "/stats":
            self._send_json(200, owner.stats_payload())
        elif self.path == "/metrics":
            self._send_json(200, METRICS.snapshot())
        elif self.path == "/traces":
            self._send_json(200, {"traces": TRACER.trace_ids()})
        elif self.path.startswith("/debug/profile"):
            self._handle_debug_profile()
        elif self.path.startswith("/traces/"):
            trace_id = self.path[len("/traces/"):]
            spans = TRACER.trace(trace_id)
            if not spans:
                self._send_json(404, {"error": f"unknown trace {trace_id!r}"})
            else:
                self._send_json(
                    200,
                    {
                        "trace_id": trace_id,
                        "spans": [span.as_dict() for span in spans],
                    },
                )
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def _handle_debug_profile(self) -> None:
        """``GET /debug/profile?seconds=N`` — run a span-attributed
        resource profile window against the live process and return the
        aggregate (including a Chrome trace of the spans it covered).
        Only one window may sample at a time: a concurrent request gets
        a 409 instead of corrupted attribution."""
        from urllib.parse import parse_qs, urlparse

        from ..errors import ObsError
        from ..obs.resource import profile_window

        query = parse_qs(urlparse(self.path).query)
        try:
            seconds = float(query.get("seconds", ["2.0"])[0])
        except ValueError:
            self._send_json(400, {"error": "'seconds' must be a number"})
            return
        try:
            self._send_json(200, profile_window(seconds))
        except ObsError as exc:
            status = 409 if "already sampling" in str(exc) else 400
            self._send_json(status, {"error": str(exc)})

    def _trace_context(self) -> Optional[SpanContext]:
        """The caller's span context, if it sent trace headers."""
        trace_id = self.headers.get(TRACE_ID_HEADER)
        span_id = self.headers.get(SPAN_ID_HEADER)
        if trace_id and span_id:
            return SpanContext(trace_id=trace_id, span_id=span_id)
        return None

    def do_POST(self) -> None:  # noqa: N802
        owner = self.server.owner
        try:
            payload = self._read_json()
            route = {
                "/predict": owner.handle_predict,
                "/profile": owner.handle_profile,
                "/explore": owner.handle_explore,
            }.get(self.path)
            if route is None:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
                return
            # Joining the client's trace (when headers are present)
            # makes every nested span — session, engine, batcher —
            # share the id the client logged.
            with TRACER.span(
                f"server{self.path}", context=self._trace_context()
            ):
                response = route(payload)
            self._send_json(200, response)
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            owner.engine.stats.errors += 1
            body = {"error": f"{type(exc).__name__}: {exc}"}
            reasons = getattr(exc, "reasons", None)
            if reasons:
                # Structured validation detail: one line per finding, so
                # clients can show why the program was rejected.
                body["reasons"] = list(reasons)
            self._send_json(400, body)
        except Exception as exc:  # pragma: no cover - defensive
            owner.engine.stats.errors += 1
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})


class PredictionServer:
    """The persistent service: session + micro-batcher + HTTP listener."""

    class _Http(ThreadingHTTPServer):
        owner: "PredictionServer"

    def __init__(
        self,
        engine: Optional[PredictionEngine] = None,
        host: str = "127.0.0.1",
        port: int = 8173,
        max_batch: int = 8,
        max_wait_ms: float = 10.0,
        default_model: Optional[str] = None,
        request_timeout_s: float = 120.0,
        verbose: bool = False,
        session: Optional["Session"] = None,
        analysis_cache: Optional["AnalysisCache"] = None,
    ) -> None:
        from ..analysis.cache import GLOBAL_ANALYSIS_CACHE
        from ..api.session import Session

        # Explicit None check: an empty AnalysisCache is a valid
        # injected cache and must not fall through to the global one.
        self.analysis_cache = (
            analysis_cache if analysis_cache is not None else GLOBAL_ANALYSIS_CACHE
        )

        if session is None:
            if engine is None:
                raise ServeError("PredictionServer needs a session or an engine")
            # Engine-only construction keeps the historical contract:
            # requests without "model" go to the checkpoint named
            # "default" (and 400 if none exists), never to an arbitrary
            # sort-order pick from a multi-model registry.
            session = Session(engine=engine, default_model=default_model or "default")
        elif engine is not None and engine is not session.engine:
            raise ServeError("pass either a session or an engine, not both")
        self.session = session
        self.engine = session.engine
        self.default_model = default_model or session.default_model
        self.request_timeout_s = request_timeout_s
        self.verbose = verbose
        self.started_at = clock.now()
        self.batcher = MicroBatcher(
            self.engine.predict_requests,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            length_of=self._request_length,
            score_budget=self._score_budget(self.engine, self.default_model),
        )
        self._http = self._Http((host, port), _Handler)
        self._http.owner = self
        self._thread: Optional[threading.Thread] = None
        self._serving = False
        self._closed = False
        # Absorb this server's stats islands into the unified registry
        # (replace-by-name: a fresh server takes over the slots).
        METRICS.register_collector("serve.engine", self.engine.stats_dict)
        METRICS.register_collector("serve.batching", self.batcher.stats.as_dict)
        from ..obs.resource import process_snapshot

        self._resource_snapshot = process_snapshot
        METRICS.register_collector("serve.resource", process_snapshot)

    def stats_payload(self) -> dict:
        """The legacy ``/stats`` layout, served from the registry's
        collected islands (one poll shared with ``/metrics``)."""
        collected = METRICS.snapshot()["collected"]
        stats = dict(collected.get("serve.engine") or self.engine.stats_dict())
        stats["batching"] = collected.get(
            "serve.batching"
        ) or self.batcher.stats.as_dict()
        return stats

    @staticmethod
    def _score_budget(engine: PredictionEngine, default_model: str) -> Optional[int]:
        """Per-bucket ``batch × seq²`` budget normalized by head count,
        matching the ``_SCORE_BUDGET`` chunking inside ``encode_batch``."""
        from ..core.model import CostModel

        try:
            model = engine.registry.get(default_model)
        except ServeError:
            return None
        return CostModel._SCORE_BUDGET // max(1, model.encoder.config.heads)

    def _request_length(self, request) -> int:
        try:
            model = self.engine.registry.get(request.model)
        except ServeError:
            # Unknown model: bucket by 0; the flush itself raises the
            # real error into the request's future.
            return 0
        limit = model.encoder.config.max_seq_len
        return min(len(model.tokenize(request.bundle)), limit)

    # -- request handling (called from handler threads) ------------------

    @staticmethod
    def _checked_source(payload: dict) -> str:
        source = payload.get("program")
        if not isinstance(source, str) or not source.strip():
            raise ServeError("'program' must be non-empty program source text")
        return source

    def _decode_job(self, payload: dict, kind: str, legacy) -> tuple:
        """One POST body → API job step for every route: versioned codec
        payloads (carrying ``"schema"``) decode through the codec, bare
        legacy layouts through *legacy*.  Returns ``(job, versioned)``.

        Every decoded program is admission-checked through the server's
        analysis cache: invalid programs raise
        :class:`~repro.errors.ValidationError` (a 400 with structured
        ``reasons``) before any simulation or encoding work starts.
        """
        from ..api.codec import from_payload

        if "schema" in payload:
            job = from_payload(payload, expect=kind)
            if not job.source.strip():
                raise ServeError("'program' must be non-empty program source text")
            versioned = True
        else:
            job, versioned = legacy(payload), False
        self.analysis_cache.validate(job.source).raise_if_invalid(
            f"{kind} rejected at ingestion"
        )
        return job, versioned

    def handle_predict(self, payload: dict) -> dict:
        from ..api.codec import to_payload
        from ..api.types import PredictJob, prediction_from_cost

        job, versioned = self._decode_job(
            payload,
            "predict_job",
            lambda p: PredictJob(
                source=self._checked_source(p),
                data=p.get("data") or None,
                params=params_from_payload(p.get("params")),
                model=p.get("model"),
                beam_width=p.get("beam_width"),
            ),
        )
        request = self.engine.build_request(
            job.source,
            data=dict(job.data) if job.data else None,
            params=job.params,
            model=job.model or self.default_model,
            beam_width=job.beam_width,
        )
        # The one server-specific step: route through the shared
        # micro-batcher so concurrent handler threads coalesce into
        # batched encoder passes.
        future = self.batcher.submit(request)
        prediction = future.result(timeout=self.request_timeout_s)
        if versioned:
            return to_payload(
                prediction_from_cost(prediction, model=request.model, label=job.label)
            )
        return {"model": request.model, "predictions": prediction_payload(prediction)}

    def handle_profile(self, payload: dict) -> dict:
        from ..api.codec import to_payload
        from ..api.types import ProfileJob

        job, versioned = self._decode_job(
            payload,
            "profile_job",
            lambda p: ProfileJob(
                source=self._checked_source(p),
                data=p.get("data") or None,
                params=params_from_payload(p.get("params")),
            ),
        )
        # Server policy: the per-request simulation budget is a hard
        # ceiling — client-supplied values may only lower it.
        budget = 2_000_000
        if job.max_steps is not None:
            budget = min(job.max_steps, budget)
        job = dataclasses.replace(job, max_steps=budget)
        report = self.session.profile(job)
        if versioned:
            return to_payload(report)
        return {"costs": report.as_dict()}

    def handle_explore(self, payload: dict) -> dict:
        from ..api.codec import to_payload
        from ..api.types import ExploreJob

        job, versioned = self._decode_job(
            payload,
            "explore_job",
            lambda p: ExploreJob(
                source=self._checked_source(p),
                data=p.get("data") or None,
                unroll_factors=tuple(p.get("unroll") or (1, 2, 4)),
                memory_delays=tuple(p.get("mem_delays") or (10,)),
                max_candidates=int(p.get("max_candidates") or 16),
                verify_top=int(p.get("verify_top") or 0),
                model=p.get("model"),
            ),
        )
        # Resolve the default against the *server's* routing default,
        # matching /predict (the session may have a different one).
        job = dataclasses.replace(job, model=job.model or self.default_model)
        report = self.session.explore(job)
        # Both response shapes come from the one codec encoding, so the
        # candidate row layout cannot drift between them.
        encoded = to_payload(report)
        if versioned:
            return encoded
        return {
            "model": encoded["model"],
            "candidates": encoded["candidates"],
            "cache": encoded["cache_stats"],
        }

    # -- lifecycle -------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._http.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "PredictionServer":
        """Serve in a background thread (tests, benches, embedding)."""
        if self._thread is not None:
            raise ServeError("server already started")
        self._serving = True
        self._thread = threading.Thread(
            target=self._http.serve_forever, name="serve-http", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._serving = True
        try:
            self._http.serve_forever()
        finally:
            self.close()

    def close(self) -> None:
        """Graceful shutdown: stop listening, then drain the batcher."""
        if self._closed:
            return
        self._closed = True
        if self._serving:
            self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.batcher.close(timeout=30.0)
        # Release the registry slots — unless a newer server already
        # replaced them (its collectors must keep serving /metrics).
        for name, fn in (
            ("serve.engine", self.engine.stats_dict),
            ("serve.batching", self.batcher.stats.as_dict),
            ("serve.resource", self._resource_snapshot),
        ):
            if METRICS.collector(name) == fn:
                METRICS.unregister_collector(name)
