"""The persistent prediction service.

Turns the batch-tool substrate into a long-lived server: warm models
(:class:`ModelRegistry`), tiered caching and batched inference
(:class:`PredictionEngine`), dynamic micro-batching
(:class:`MicroBatcher`), a stdlib HTTP front end
(:class:`PredictionServer`) and its client (:class:`ServeClient`).
"""

from .batching import BatchStats, MicroBatcher
from .client import ServeClient
from .engine import (
    EngineStats,
    ModelRegistry,
    ModelSpec,
    PredictionEngine,
    PredictRequest,
)
from .server import PredictionServer, params_from_payload, prediction_payload

__all__ = [
    "BatchStats",
    "MicroBatcher",
    "ServeClient",
    "EngineStats",
    "ModelRegistry",
    "ModelSpec",
    "PredictionEngine",
    "PredictRequest",
    "PredictionServer",
    "params_from_payload",
    "prediction_payload",
]
