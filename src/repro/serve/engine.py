"""In-process prediction engine: warm models + tiered caching.

The engine is the piece a long-lived service keeps alive between
requests.  It owns

* a :class:`ModelRegistry` — named checkpoints, loaded lazily on first
  use and primed with a warm-up encode so the first real request does
  not pay one-time initialization;
* a tiered cache — a bounded result LRU (full :class:`CostPrediction`
  per request digest) in front of a per-model exact-mode
  :class:`CachedPredictor` (pooled encodings, so e.g. the data-free
  static encoding is shared across requests for the same program under
  different runtime inputs) in front of the shared
  :class:`StaticProfileCache` that ``/profile`` and ground-truth
  verification draw from.

Misses are computed through the batched encoder path
(``CachedPredictor.warm`` → ``encode_batch``), so one flush of N
requests pays one padded pass per length bucket instead of N passes.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ..analysis.cache import GLOBAL_ANALYSIS_CACHE
from ..core import CostModel, CostPrediction, LLMulatorConfig
from ..core.acceleration import CachedPredictor
from ..core.inputs import bundle_from_program, class_i_segments
from ..errors import ServeError
from ..hls import HardwareParams
from ..lang import parse
from ..nn import load_model
from ..profiler import STATIC_METRICS, Profiler, StaticProfileCache
from ..telemetry import METRICS as TELEMETRY_METRICS
from ..telemetry import TRACER, clock
from ..tokenizer import ModelInput

_REQUESTS = TELEMETRY_METRICS.counter("serve.engine.requests")
_RESULT_HITS = TELEMETRY_METRICS.counter("serve.engine.result_cache.hits")
_RESULT_MISSES = TELEMETRY_METRICS.counter("serve.engine.result_cache.misses")
_PROFILE_REQUESTS = TELEMETRY_METRICS.counter("serve.engine.profile_requests")
_PREDICT_MS = TELEMETRY_METRICS.histogram("serve.engine.predict_ms")

_WARMUP_BUNDLE = ModelInput(
    graph_text="void dataflow(int n) { }",
    op_texts=[],
    params_text=HardwareParams().describe(),
    data_text="",
)


@dataclass
class ModelSpec:
    """A named checkpoint the registry can materialize."""

    name: str
    path: Optional[str] = None
    tier: str = "0.5B"
    seed: int = 0
    max_seq_len: int = 320


class ModelRegistry:
    """Named cost models with lazy loading and warm-up."""

    def __init__(self) -> None:
        self._specs: dict[str, ModelSpec] = {}
        self._loaded: dict[str, CostModel] = {}
        self._lock = threading.Lock()

    def register(
        self,
        name: str,
        path: Optional[str] = None,
        tier: str = "0.5B",
        seed: int = 0,
        max_seq_len: int = 320,
        model: Optional[CostModel] = None,
    ) -> None:
        """Register a checkpoint path, or adopt an in-memory *model*."""
        with self._lock:
            self._specs[name] = ModelSpec(
                name=name, path=path, tier=tier, seed=seed, max_seq_len=max_seq_len
            )
            if model is not None:
                self._loaded[name] = model
            else:
                self._loaded.pop(name, None)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._specs)

    def is_loaded(self, name: str) -> bool:
        with self._lock:
            return name in self._loaded

    def get(self, name: str) -> CostModel:
        """The named model, loading and warming it on first use."""
        with self._lock:
            model = self._loaded.get(name)
            if model is not None:
                return model
            spec = self._specs.get(name)
        if spec is None:
            raise ServeError(
                f"unknown model {name!r}; registered: {self.names() or 'none'}"
            )
        model = CostModel(
            LLMulatorConfig(
                tier=spec.tier, seed=spec.seed, max_seq_len=spec.max_seq_len
            )
        )
        if spec.path is not None:
            try:
                load_model(model, spec.path)
            except Exception as exc:  # unreadable / corrupt / wrong-arch
                raise ServeError(
                    f"cannot load model {name!r} from {spec.path!r}: {exc}"
                ) from exc
        model.predict_costs(_WARMUP_BUNDLE)  # prime tokenizer/encoder state
        with self._lock:
            return self._loaded.setdefault(name, model)


@dataclass(frozen=True)
class PredictRequest:
    """One fully-prepared prediction request (bundle already built)."""

    bundle: ModelInput
    segments: tuple[str, ...] = ()
    model: str = "default"
    beam_width: Optional[int] = None


@dataclass
class EngineStats:
    """Request/result-cache counters for ``/stats``."""

    requests: int = 0
    result_hits: int = 0
    result_misses: int = 0
    profile_requests: int = 0
    errors: int = 0

    @property
    def result_hit_rate(self) -> float:
        total = self.result_hits + self.result_misses
        return self.result_hits / total if total else 0.0


def _digest(*texts: str) -> str:
    hasher = hashlib.md5()
    for text in texts:
        hasher.update(text.encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


class PredictionEngine:
    """Warm-model prediction with tiered caching.

    Thread-safe: inference runs under one lock (a single core has no
    parallelism to lose), so the engine can be fed both by a
    :class:`~repro.serve.batching.MicroBatcher` worker and directly by
    library callers (harness, explorer) at the same time.
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        max_result_entries: int = 4096,
        max_encoding_entries: int = 2048,
        static_cache: Optional[StaticProfileCache] = None,
    ) -> None:
        self.registry = registry if registry is not None else ModelRegistry()
        # Explicit None check: an empty StaticProfileCache is falsy, so
        # `static_cache or ...` would silently discard an injected
        # (shared) empty cache and break cross-component cache sharing.
        self.static_cache = (
            static_cache if static_cache is not None else StaticProfileCache()
        )
        self.stats = EngineStats()
        self.max_result_entries = max_result_entries
        self.max_encoding_entries = max_encoding_entries
        self._results: dict[tuple[str, str], CostPrediction] = {}
        self._predictors: dict[str, CachedPredictor] = {}
        self._bundles: dict[str, tuple[ModelInput, tuple[str, ...]]] = {}
        self._lock = threading.RLock()

    @property
    def lock(self) -> threading.RLock:
        """The engine's inference lock.  All model execution must hold
        it: callers that drive the warm model outside
        :meth:`predict_requests` (e.g. an ``explorer_for`` explorer on
        an HTTP handler thread) wrap their inference in ``with
        engine.lock:`` so they cannot race the micro-batcher worker on
        the shared encoder, caches and grad-mode flag."""
        return self._lock

    @classmethod
    def from_model(cls, model: CostModel, name: str = "default", **kwargs) -> "PredictionEngine":
        """Engine around one preloaded in-memory model."""
        engine = cls(**kwargs)
        engine.registry.register(name, model=model, tier=model.config.tier)
        return engine

    def adopt(self, name: str, model: CostModel) -> None:
        """Register an in-memory model (e.g. a freshly trained zoo
        member), invalidating any caches of a previous *name* holder.

        Re-adopting the *same object* keeps its warm caches — the
        engine assumes a named model's weights are immutable while
        registered (the serving convention).  After mutating a
        registered model in place (e.g. non-isolated calibration), call
        :meth:`invalidate` to drop its now-stale caches.
        """
        with self._lock:
            if self.registry.is_loaded(name) and self.registry.get(name) is model:
                return  # same object: warm caches stay valid
            self.registry.register(name, model=model, tier=model.config.tier)
            self._invalidate_locked(name)

    def invalidate(self, name: str) -> None:
        """Drop every cached result/encoding for the named model."""
        with self._lock:
            self._invalidate_locked(name)

    def _invalidate_locked(self, name: str) -> None:
        self._predictors.pop(name, None)
        self._results = {
            key: value for key, value in self._results.items() if key[0] != name
        }

    # -- request preparation ---------------------------------------------

    def build_request(
        self,
        source: str,
        data: Optional[dict[str, Any]] = None,
        params: Optional[HardwareParams] = None,
        model: str = "default",
        beam_width: Optional[int] = None,
    ) -> PredictRequest:
        """Parse *source* and assemble a ready-to-batch request.

        Parsed bundles are memoized by content digest, so repeated
        requests for a popular program skip the frontend entirely.
        """
        # Fail fast on anything that would otherwise poison a
        # micro-batch with an exception shared by its batch-mates.
        if model not in self.registry.names():
            raise ServeError(
                f"unknown model {model!r}; registered: "
                f"{self.registry.names() or 'none'}"
            )
        if data is not None and not isinstance(data, dict):
            raise ServeError(f"'data' must be an object, got {type(data).__name__}")
        if beam_width is not None and (
            isinstance(beam_width, bool)
            or not isinstance(beam_width, int)
            or beam_width < 1
        ):
            raise ServeError(
                f"'beam_width' must be a positive integer, got {beam_width!r}"
            )
        params = params or HardwareParams()
        key = _digest(
            source,
            params.describe(),
            repr(sorted((data or {}).items())),
        )
        with self._lock:
            cached = self._bundles.get(key)
        if cached is None:
            program = parse(source)
            bundle = bundle_from_program(program, params=params, data=data or None)
            segments = tuple(class_i_segments(program))
            cached = (bundle, segments)
            with self._lock:
                self._bundles[key] = cached
                while len(self._bundles) > self.max_result_entries:
                    self._bundles.pop(next(iter(self._bundles)))
        bundle, segments = cached
        return PredictRequest(
            bundle=bundle, segments=segments, model=model, beam_width=beam_width
        )

    # -- prediction ------------------------------------------------------

    def predict_requests(
        self, requests: Sequence[PredictRequest]
    ) -> list[CostPrediction]:
        """Serve a micro-batch; the :class:`MicroBatcher` flush target.

        Result-cache hits are free; misses are grouped per model and
        computed through one batched encoder pass each.
        """
        requests = list(requests)
        results: list[Optional[CostPrediction]] = [None] * len(requests)
        _REQUESTS.inc(len(requests))
        with TRACER.span(
            "engine.predict", {"requests": len(requests)}
        ) as span, self._lock:
            start = clock.now()
            self.stats.requests += len(requests)
            missing: dict[str, list[int]] = {}
            keys = [self._result_key(request) for request in requests]
            for index, (request, key) in enumerate(zip(requests, keys)):
                cached = self._results.pop(key, None)
                if cached is not None:
                    self._results[key] = cached  # refresh LRU recency
                    self.stats.result_hits += 1
                    results[index] = cached
                else:
                    missing.setdefault(request.model, []).append(index)
            hits = sum(1 for result in results if result is not None)
            _RESULT_HITS.inc(hits)
            for model_name, indices in missing.items():
                # Duplicate keys within one flush compute once.
                fresh: dict[tuple[str, str], list[int]] = {}
                for index in indices:
                    fresh.setdefault(keys[index], []).append(index)
                self.stats.result_misses += len(fresh)
                _RESULT_MISSES.inc(len(fresh))
                batch = [requests[rows[0]] for rows in fresh.values()]
                predictions = self._predict_batch(model_name, batch)
                for (key, rows), prediction in zip(fresh.items(), predictions):
                    self._results[key] = prediction
                    for row in rows:
                        results[row] = prediction
                while len(self._results) > self.max_result_entries:
                    self._results.pop(next(iter(self._results)))
            span.set_attr("result_cache_hits", hits)
            _PREDICT_MS.observe((clock.now() - start) * 1000.0)
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def predict_bundles(
        self,
        bundles: Sequence[ModelInput],
        segment_lists: Optional[Sequence[Sequence[str]]] = None,
        model: str = "default",
        beam_width: Optional[int] = None,
    ) -> list[CostPrediction]:
        """Bundle-level entry point (harness / explorer routing)."""
        bundles = list(bundles)
        if segment_lists is None:
            segment_lists = [()] * len(bundles)
        requests = [
            PredictRequest(
                bundle=bundle,
                segments=tuple(segments or ()),
                model=model,
                beam_width=beam_width,
            )
            for bundle, segments in zip(bundles, segment_lists)
        ]
        return self.predict_requests(requests)

    def predict(
        self,
        source: str,
        data: Optional[dict[str, Any]] = None,
        params: Optional[HardwareParams] = None,
        model: str = "default",
        beam_width: Optional[int] = None,
    ) -> CostPrediction:
        """Convenience single-request path (build + predict)."""
        request = self.build_request(
            source, data=data, params=params, model=model, beam_width=beam_width
        )
        return self.predict_requests([request])[0]

    def _result_key(self, request: PredictRequest) -> tuple[str, str]:
        bundle = request.bundle
        return request.model, _digest(
            str(request.beam_width),
            ",".join(request.segments),
            bundle.graph_text,
            *bundle.op_texts,
            bundle.params_text,
            bundle.data_text,
            bundle.think_text,
        )

    def predictor_for(self, model: str = "default") -> CachedPredictor:
        """The named model's exact-mode encoding cache (tier 2)."""
        with self._lock:
            predictor = self._predictors.get(model)
            if predictor is None:
                predictor = CachedPredictor(
                    self.registry.get(model),
                    mode="exact",
                    max_entries=self.max_encoding_entries,
                )
                self._predictors[model] = predictor
            return predictor

    def _predict_batch(
        self, model_name: str, requests: list[PredictRequest]
    ) -> list[CostPrediction]:
        """Compute result-cache misses via the warmed batched path.

        Mirrors ``CostModel.predict_costs``: static metrics read a
        data-free encoding, cycles reads the full bundle.  Both
        encodings go through ``CachedPredictor.warm`` (one
        ``encode_batch`` pass over the cache-missing ones) and are then
        decoded per metric off the cached pooled vectors, so predicted
        values are identical to the direct path.
        """
        predictor = self.predictor_for(model_name)
        model = predictor.model
        static_bundles = [
            ModelInput(
                graph_text=request.bundle.graph_text,
                op_texts=request.bundle.op_texts,
                params_text=request.bundle.params_text,
                data_text="",
                think_text=request.bundle.think_text,
            )
            for request in requests
        ]
        warm_bundles: list[ModelInput] = []
        warm_segments: list[Optional[list[str]]] = []
        for request, static_bundle in zip(requests, static_bundles):
            segments = list(request.segments) or None
            warm_bundles.append(static_bundle)
            warm_segments.append(segments)
            if request.bundle.data_text:
                warm_bundles.append(request.bundle)
                warm_segments.append(segments)
        predictor.warm(warm_bundles, warm_segments)
        predictions: list[CostPrediction] = []
        for request, static_bundle in zip(requests, static_bundles):
            width = request.beam_width or model.config.beam_width
            result = CostPrediction()
            for metric in model.heads:
                use_static = metric in STATIC_METRICS or not request.bundle.data_text
                result.per_metric[metric] = predictor.predict(
                    static_bundle if use_static else request.bundle,
                    metric=metric,
                    class_i_segments=request.segments,
                    beam_width=width,
                )
            predictions.append(result)
        return predictions

    # -- ground truth ----------------------------------------------------

    def profile(
        self,
        source: str,
        data: Optional[dict[str, Any]] = None,
        params: Optional[HardwareParams] = None,
        max_steps: int = 2_000_000,
    ) -> dict[str, int]:
        """Ground-truth costs via the shared static-profile cache."""
        with self._lock:
            self.stats.profile_requests += 1
        _PROFILE_REQUESTS.inc()
        profiler = Profiler(
            params or HardwareParams(),
            max_steps=max_steps,
            static_cache=self.static_cache,
        )
        with TRACER.span("engine.profile"):
            return profiler.profile(source, data=data or None).costs.as_dict()

    # -- exploration -----------------------------------------------------

    def explorer_for(self, model: str = "default", **kwargs):
        """A :class:`DesignSpaceExplorer` sharing this engine's warm
        model, encoding cache and static-profile cache."""
        from ..core.explorer import DesignSpaceExplorer

        return DesignSpaceExplorer(
            self.registry.get(model),
            predictor=self.predictor_for(model),
            static_cache=self.static_cache,
            **kwargs,
        )

    # -- introspection ---------------------------------------------------

    def stats_dict(self) -> dict:
        with self._lock:
            predictor_stats = {
                name: predictor.stats_dict()
                for name, predictor in sorted(self._predictors.items())
            }
            return {
                "requests": self.stats.requests,
                "profile_requests": self.stats.profile_requests,
                "errors": self.stats.errors,
                "result_cache": {
                    "hits": self.stats.result_hits,
                    "misses": self.stats.result_misses,
                    "hit_rate": round(self.stats.result_hit_rate, 4),
                    "size": len(self._results),
                    "max_entries": self.max_result_entries,
                },
                "encoding_cache": predictor_stats,
                "static_cache": {
                    "hits": self.static_cache.hits,
                    "misses": self.static_cache.misses,
                    "size": len(self.static_cache),
                },
                "analysis_cache": GLOBAL_ANALYSIS_CACHE.stats_dict(),
                "models": {
                    name: {"loaded": self.registry.is_loaded(name)}
                    for name in self.registry.names()
                },
            }
