"""Dynamic micro-batching for the prediction service.

Concurrent callers submit single requests; a background worker collects
them into batches — up to ``max_batch`` items, waiting at most
``max_wait_ms`` after the first arrival — and flushes each batch through
one callback (for the engine: one ``predict_costs_batch`` pass).  On
this one-core substrate the win is amortization, not parallelism: a
flush of N requests pays the encoder-pass and Python-dispatch overhead
once instead of N times (see ``CostModel._SCORE_BUDGET``).

Before flushing, a batch is length-bucketed: requests are sorted by
their estimated sequence length and greedily chunked so one bucket's
attention score tensor stays within the score budget, mirroring the
chunking ``encode_batch`` applies internally — short requests are never
padded out to the longest outlier in the batch.

Telemetry: every submitted item carries its enqueue time and the
caller's :class:`~repro.telemetry.trace.SpanContext` across the queue,
so the worker can emit a per-request ``serve.batch.queue_wait`` span
*inside the caller's trace* and feed the
``serve.batch.queue_wait_ms`` / ``serve.batch.size`` histograms — the
exact data that diagnoses the mean-batch-size gap (`BENCH_serve.json`).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from queue import Empty, Queue
from typing import Any, Callable, NamedTuple, Optional, Sequence

from ..errors import ServeError
from ..telemetry import METRICS, SIZE_BUCKETS, TRACER, clock
from ..telemetry.trace import SpanContext

_QUEUE_WAIT_MS = METRICS.histogram("serve.batch.queue_wait_ms")
_BATCH_SIZE = METRICS.histogram("serve.batch.size", SIZE_BUCKETS)
_FLUSH_MS = METRICS.histogram("serve.batch.flush_ms")


class _Entry(NamedTuple):
    """One queued request with its telemetry context."""

    item: Any
    future: Future
    ctx: Optional[SpanContext]
    enqueued: float


@dataclass
class BatchStats:
    """Flush-side counters, including the batch-size histogram.

    ``record()`` runs on the batcher worker thread while ``as_dict()``
    serves concurrent ``/stats`` requests from HTTP handler threads, so
    both take the same lock — iterating ``size_histogram`` unlocked
    races its mutation (RuntimeError: dict changed size).
    """

    batches: int = 0
    requests: int = 0
    size_histogram: dict[int, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.requests += size
            self.size_histogram[size] = self.size_histogram.get(size, 0) + 1

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "batches": self.batches,
                "requests": self.requests,
                "mean_batch_size": round(self.mean_batch_size, 2),
                "size_histogram": {
                    str(size): count
                    for size, count in sorted(self.size_histogram.items())
                },
            }


class MicroBatcher:
    """Request queue with dynamic micro-batching.

    ``flush_fn(items)`` must return one result per item, in order; its
    return fills the callers' futures.  ``length_of(item)`` (optional)
    estimates an item's padded sequence length for bucketing;
    ``score_budget`` is the per-bucket ``batch × length²`` element
    budget (``None`` disables bucketing).
    """

    def __init__(
        self,
        flush_fn: Callable[[list[Any]], Sequence[Any]],
        max_batch: int = 8,
        max_wait_ms: float = 10.0,
        length_of: Optional[Callable[[Any], int]] = None,
        score_budget: Optional[int] = None,
    ) -> None:
        if max_batch < 1:
            raise ServeError(f"max_batch must be positive, got {max_batch}")
        if max_wait_ms < 0:
            raise ServeError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self._flush_fn = flush_fn
        self.max_batch = max_batch
        self.max_wait_s = max_wait_ms / 1000.0
        self._length_of = length_of
        self._score_budget = score_budget
        self._queue: Queue = Queue()
        self._closed = threading.Event()
        self.stats = BatchStats()
        self._worker = threading.Thread(
            target=self._run, name="micro-batcher", daemon=True
        )
        self._worker.start()

    # -- submission ------------------------------------------------------

    def submit(self, item: Any) -> Future:
        """Enqueue one request; the future resolves after its flush.

        The caller's active span context (if any) rides along, so the
        worker's flush spans join the caller's trace."""
        if self._closed.is_set():
            raise ServeError("batcher is closed")
        future: Future = Future()
        self._queue.put(
            _Entry(item, future, TRACER.current_context(), clock.now())
        )
        return future

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop accepting requests, drain the queue, join the worker.

        Every already-submitted future is resolved (or failed) before
        the worker exits — a graceful shutdown never drops requests.
        """
        if not self._closed.is_set():
            self._closed.set()
            self._queue.put(None)  # wake the worker if it is blocked
        self._worker.join(timeout=timeout)
        # A submit() racing close() can slip an item in after the
        # worker's final emptiness check; fail it rather than strand
        # its caller on an unresolved future.
        while True:
            try:
                entry = self._queue.get_nowait()
            except Empty:
                return
            if entry is not None and not entry.future.done():
                entry.future.set_exception(ServeError("batcher is closed"))

    # -- worker ----------------------------------------------------------

    def _run(self) -> None:
        while True:
            batch = self._collect()
            if batch:
                self._flush(batch)
            elif self._closed.is_set() and self._queue.empty():
                return

    def _collect(self) -> list[_Entry]:
        """Block for the first request, then gather until ``max_batch``
        items arrived or ``max_wait_ms`` elapsed since the first."""
        # Deadline arithmetic deliberately stays on the raw monotonic
        # clock: it must keep ticking with telemetry fully disabled.
        try:
            first = self._queue.get(timeout=0.05)
        except Empty:
            return []
        if first is None:
            return []
        batch = [first]
        deadline = time.monotonic() + self.max_wait_s  # lint: allow-wallclock
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()  # lint: allow-wallclock
            if remaining <= 0:
                break
            try:
                entry = self._queue.get(timeout=remaining)
            except Empty:
                break
            if entry is None:
                break
            batch.append(entry)
        return batch

    def _buckets(self, batch: list[_Entry]) -> list[list[_Entry]]:
        if self._length_of is None or self._score_budget is None or len(batch) <= 1:
            return [batch]
        order = sorted(batch, key=lambda entry: self._length_of(entry.item))
        buckets: list[list[_Entry]] = []
        current: list[_Entry] = []
        for entry in order:
            # Ascending lengths: the newest member sets the padded width.
            cost = (len(current) + 1) * self._length_of(entry.item) ** 2
            if current and cost > self._score_budget:
                buckets.append(current)
                current = []
            current.append(entry)
        buckets.append(current)
        return buckets

    def _flush(self, batch: list[_Entry]) -> None:
        try:
            buckets = self._buckets(batch)
        except BaseException as exc:  # a bad length_of must not kill the worker
            for entry in batch:
                if not entry.future.cancelled():
                    entry.future.set_exception(exc)
            return
        for bucket in buckets:
            flush_start = clock.now()
            # Queue-wait lands in each request's own trace: the span the
            # caller opened before submit() is the parent.
            for entry in bucket:
                _QUEUE_WAIT_MS.observe((flush_start - entry.enqueued) * 1000.0)
                TRACER.record_span(
                    "serve.batch.queue_wait",
                    start=entry.enqueued,
                    end=flush_start,
                    context=entry.ctx,
                )
            _BATCH_SIZE.observe(len(bucket))
            items = [entry.item for entry in bucket]
            # The flush itself is one shared pass; its span nests under
            # the first traced caller (batch-mates are recorded by id).
            parent = next(
                (entry.ctx for entry in bucket if entry.ctx is not None), None
            )
            attrs = {"batch_size": len(items)}
            coalesced = {
                entry.ctx.trace_id for entry in bucket if entry.ctx is not None
            }
            if len(coalesced) > 1:
                attrs["coalesced_traces"] = sorted(coalesced)
            try:
                with TRACER.span("serve.batch.flush", attrs, context=parent):
                    results = list(self._flush_fn(items))
                if len(results) != len(items):
                    raise ServeError(
                        f"flush returned {len(results)} results "
                        f"for {len(items)} requests"
                    )
            except BaseException as exc:  # propagate to every caller
                for entry in bucket:
                    if not entry.future.cancelled():
                        entry.future.set_exception(exc)
                continue
            _FLUSH_MS.observe((clock.now() - flush_start) * 1000.0)
            self.stats.record(len(items))
            for entry, result in zip(bucket, results):
                if not entry.future.cancelled():
                    entry.future.set_result(result)
