"""HTTP client for a running ``repro serve`` instance.

Pure stdlib (``urllib``); every failure — unreachable host, non-2xx
status, malformed body — surfaces as :class:`ServeError` with a
one-line message, so CLI callers can exit cleanly.

The client implements the :class:`repro.api.Predictor` protocol
(:meth:`predict_job` / :meth:`predict_jobs` over the versioned codec),
so callers written against the protocol swap between a local
:class:`repro.api.Session` and this remote client with a constructor
change.

When telemetry is enabled, every request runs inside a ``client.<path>``
span whose trace id rides the ``X-Repro-Trace-Id`` header — the server
joins that trace, so one id covers client → server → engine → batcher.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import TYPE_CHECKING, Any, Optional, Sequence

from ..errors import ServeError
from ..telemetry import TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..api.types import PredictJob, Prediction


class ServeClient:
    """Talks JSON to a :class:`~repro.serve.server.PredictionServer`."""

    def __init__(self, base_url: str, timeout_s: float = 120.0) -> None:
        base_url = base_url.rstrip("/")
        if not base_url.startswith(("http://", "https://")):
            raise ServeError(
                f"remote URL must start with http:// or https://, got {base_url!r}"
            )
        self.base_url = base_url
        self.timeout_s = timeout_s

    # -- transport -------------------------------------------------------

    def _request(self, path: str, payload: Optional[dict] = None) -> dict:
        with TRACER.span(f"client.{path.lstrip('/')}") as handle:
            return self._request_inner(path, payload, handle.context)

    def _request_inner(
        self, path: str, payload: Optional[dict], context
    ) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if context is not None:
            from ..telemetry.trace import SPAN_ID_HEADER, TRACE_ID_HEADER

            headers[TRACE_ID_HEADER] = context.trace_id
            headers[SPAN_ID_HEADER] = context.span_id
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                body = response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            detail = ""
            reasons: list[str] = []
            try:
                parsed_error = json.loads(exc.read().decode("utf-8"))
                detail = parsed_error.get("error", "")
                raw_reasons = parsed_error.get("reasons", [])
                if isinstance(raw_reasons, list):
                    reasons = [str(reason) for reason in raw_reasons]
            except Exception:
                pass
            message = f"{url} returned HTTP {exc.code}" + (
                f": {detail}" if detail else ""
            )
            if reasons and reasons[0] not in message:
                # Validation rejections carry structured reasons; surface
                # the first one inline and keep the rest on the exception.
                message += f" — {reasons[0]}"
                if len(reasons) > 1:
                    message += f" (+{len(reasons) - 1} more)"
            error = ServeError(message)
            error.reasons = reasons
            raise error from exc
        except (urllib.error.URLError, OSError, ValueError) as exc:
            reason = getattr(exc, "reason", exc)
            raise ServeError(f"cannot reach {url}: {reason}") from exc
        try:
            parsed = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ServeError(f"{url} returned invalid JSON: {exc}") from exc
        if not isinstance(parsed, dict):
            raise ServeError(f"{url} returned a non-object JSON body")
        return parsed

    # -- typed Predictor protocol ----------------------------------------

    def predict_job(self, job: "PredictJob") -> "Prediction":
        """Answer one typed job (the :class:`repro.api.Predictor` path)."""
        from ..api.codec import from_payload, to_payload

        payload = self._request("/predict", to_payload(job))
        return from_payload(payload, expect="prediction")

    def predict_jobs(self, jobs: Sequence["PredictJob"]) -> list["Prediction"]:
        """Answer several jobs, preserving order.

        Jobs are sent concurrently so the server's micro-batcher can
        coalesce them into batched encoder passes.
        """
        from concurrent.futures import ThreadPoolExecutor

        jobs = list(jobs)
        if len(jobs) <= 1:
            return [self.predict_job(job) for job in jobs]
        with ThreadPoolExecutor(max_workers=min(8, len(jobs))) as pool:
            return list(pool.map(self.predict_job, jobs))

    # -- API -------------------------------------------------------------

    def predict(
        self,
        source: str,
        data: Optional[dict[str, Any]] = None,
        params: Optional[dict[str, Any]] = None,
        model: Optional[str] = None,
        beam_width: Optional[int] = None,
    ) -> dict:
        """Per-metric predictions for one program source."""
        payload: dict[str, Any] = {"program": source}
        if data:
            payload["data"] = data
        if params:
            payload["params"] = params
        if model:
            payload["model"] = model
        if beam_width:
            payload["beam_width"] = beam_width
        return self._request("/predict", payload)["predictions"]

    def profile(
        self,
        source: str,
        data: Optional[dict[str, Any]] = None,
        params: Optional[dict[str, Any]] = None,
    ) -> dict:
        payload: dict[str, Any] = {"program": source}
        if data:
            payload["data"] = data
        if params:
            payload["params"] = params
        return self._request("/profile", payload)["costs"]

    def explore(self, source: str, **options) -> dict:
        payload: dict[str, Any] = {"program": source}
        payload.update(options)
        return self._request("/explore", payload)

    def healthz(self) -> dict:
        return self._request("/healthz")

    def stats(self) -> dict:
        return self._request("/stats")

    def metrics(self) -> dict:
        """The server's unified telemetry snapshot (``/metrics``)."""
        return self._request("/metrics")

    def traces(self) -> list[str]:
        """Buffered trace ids on the server, oldest first."""
        return self._request("/traces")["traces"]

    def trace(self, trace_id: str) -> list[dict]:
        """The spans of one server-side trace."""
        return self._request(f"/traces/{trace_id}")["spans"]

    def debug_profile(self, seconds: float = 2.0) -> dict:
        """Run a ``seconds``-long span-attributed resource profile on
        the server (``/debug/profile``) and return the aggregate."""
        return self._request(f"/debug/profile?seconds={seconds:g}")
