"""Static analysis over the loop-tree IR.

The stack, bottom to top (each layer consumes only the one below):

``dataflow``   — per-statement read/write/reduction sets with affine
                 subscripts, reaching definitions, live-out arrays.
``dependence`` — flow/anti/output dependences with distance vectors
                 (exact where affine subscripts pin them, ``"*"``
                 otherwise — conservative, never unsound).
``legality``   — ``can_interchange`` / ``can_tile`` / ``can_fuse`` /
                 ``can_unroll`` / ``can_distribute`` verdicts with
                 cited evidence; the rewrite engine
                 (:mod:`repro.rewrite`) consumes this API and refuses
                 to fire any transform without an ``ok`` verdict.
``validate``   — :class:`ProgramValidator`, run at every ingestion
                 boundary (codec, serve, campaign).
``cache``      — digest-keyed LRU so repeated ingestion of the same
                 program pays the analysis once.
"""

from .cache import AnalysisCache, GLOBAL_ANALYSIS_CACHE, ProgramAnalysis, compute_analysis
from .dataflow import (
    AffineExpr,
    ArrayAccess,
    FunctionDataflow,
    LoopDesc,
    Statement,
    UndefinedRead,
    affine_of,
    analyze_dataflow,
)
from .dependence import (
    Dependence,
    DependenceReport,
    analyze_dependences,
    analyze_program_dependences,
    direction_vectors,
)
from .legality import (
    LegalityVerdict,
    can_distribute,
    can_fuse,
    can_interchange,
    can_tile,
    can_unroll,
    distribution_items,
    legality_matrix,
)
from .validate import (
    ProgramValidator,
    ValidationIssue,
    ValidationReport,
    validate_or_raise,
    validate_program,
)

__all__ = [
    "AffineExpr",
    "AnalysisCache",
    "ArrayAccess",
    "Dependence",
    "DependenceReport",
    "FunctionDataflow",
    "GLOBAL_ANALYSIS_CACHE",
    "LegalityVerdict",
    "LoopDesc",
    "ProgramAnalysis",
    "ProgramValidator",
    "Statement",
    "UndefinedRead",
    "ValidationIssue",
    "ValidationReport",
    "affine_of",
    "analyze_dataflow",
    "analyze_dependences",
    "analyze_program_dependences",
    "can_distribute",
    "can_fuse",
    "can_interchange",
    "can_tile",
    "can_unroll",
    "compute_analysis",
    "direction_vectors",
    "distribution_items",
    "legality_matrix",
    "validate_or_raise",
    "validate_program",
]
