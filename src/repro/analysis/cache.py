"""Digest-keyed cache of analysis facts.

Mirrors the :class:`repro.profiler.StaticProfileCache` contract —
bounded LRU, thread-safe, hit/miss counters, a process-wide default —
keyed by the program content digest so serve handlers and campaign
cells validating the same program pay the analysis once.

An explicit ``None`` check is required when threading a cache through
constructors: an empty :class:`AnalysisCache` is falsy-free by design
(it defines no ``__bool__``), but ``len()`` consumers exist, so never
write ``cache or GLOBAL_ANALYSIS_CACHE``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..lang import ast, parse
from ..sim import program_digest
from .dependence import DependenceReport, analyze_dependences
from .validate import ProgramValidator, ValidationReport

__all__ = ["AnalysisCache", "GLOBAL_ANALYSIS_CACHE", "ProgramAnalysis"]


@dataclass(frozen=True)
class ProgramAnalysis:
    """Everything the analysis layer derives from one program."""

    digest: str
    program: ast.Program
    validation: ValidationReport
    dependences: "OrderedDict[str, DependenceReport]"

    @property
    def ok(self) -> bool:
        return self.validation.ok

    def report(self, function: str) -> Optional[DependenceReport]:
        return self.dependences.get(function)


def compute_analysis(
    program: ast.Program | str, digest: Optional[str] = None
) -> ProgramAnalysis:
    """Run validation + dependence analysis once (no caching)."""
    source_digest = digest or program_digest(program)
    validation = ProgramValidator().validate(program)
    dependences: "OrderedDict[str, DependenceReport]" = OrderedDict()
    if isinstance(program, str):
        if validation.ok or validation.functions:
            program = parse(program)
        else:
            # unparsable source: keep an empty program placeholder
            program = ast.Program(functions=[])
    if validation.functions:
        for func in program.functions:
            dependences[func.name] = analyze_dependences(func)
    return ProgramAnalysis(
        digest=source_digest,
        program=program,
        validation=validation,
        dependences=dependences,
    )


class AnalysisCache:
    """Bounded LRU of :class:`ProgramAnalysis` keyed by content digest.

    Analysis is a deterministic function of the source text, so sharing
    a cache across threads or subsystems never changes a verdict — it
    only skips recomputation.
    """

    def __init__(self, maxsize: int = 512) -> None:
        self._maxsize = maxsize
        self._entries: "OrderedDict[str, ProgramAnalysis]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(
        self, program: ast.Program | str, digest: Optional[str] = None
    ) -> ProgramAnalysis:
        digest = digest or program_digest(program)
        with self._lock:
            cached = self._entries.get(digest)
            if cached is not None:
                self._entries.move_to_end(digest)
                self.hits += 1
                return cached
            self.misses += 1
        analysis = compute_analysis(program, digest=digest)
        with self._lock:
            self._entries[digest] = analysis
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
        return analysis

    def invalidate(self, digest: str) -> bool:
        """Drop one entry by digest (e.g. a rewrite step's intermediate
        program that will never be ingested again).  Returns True when
        an entry was present."""
        with self._lock:
            return self._entries.pop(digest, None) is not None

    def validate(
        self, program: ast.Program | str, digest: Optional[str] = None
    ) -> ValidationReport:
        return self.get(program, digest=digest).validation

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats_dict(self) -> dict:
        """Counters for observability surfaces (``Session.stats()``,
        the serve ``/stats`` endpoint)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
            "hit_rate": round(self.hit_rate, 4),
        }


# Process-wide default cache.  Deterministic contents; bounded size.
GLOBAL_ANALYSIS_CACHE = AnalysisCache()
