"""Transform legality verdicts over the dependence facts.

Each ``can_*`` query answers one question the future rewrite engine
must ask before touching a loop nest, and answers it with evidence: a
:class:`LegalityVerdict` is falsy when the transform is unsafe and its
``reasons`` cite the structural obstacle or the concrete dependence
that would be violated.  The analyses are conservative — ``ok=True``
is a proof obligation we accept (the transformed program computes
bit-identical results under the interpreter), ``ok=False`` may be a
false alarm but never the reverse.

All queries take either an :class:`ast.FunctionDef` or a prebuilt
:class:`DependenceReport` (so callers holding a cached report pay the
analysis once), and loops are named by label (``"j#2"``), bare
induction variable (when unambiguous) or loop index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..errors import AnalysisError
from ..lang import ast
from .dataflow import FunctionDataflow, LoopDesc
from .dependence import DependenceReport, analyze_dependences, direction_vectors

__all__ = [
    "LegalityVerdict",
    "can_distribute",
    "can_fuse",
    "can_interchange",
    "can_tile",
    "can_unroll",
    "distribution_items",
    "legality_matrix",
]

LoopKey = Union[int, str]


@dataclass(frozen=True)
class LegalityVerdict:
    """The answer to one legality query."""

    ok: bool
    reasons: tuple[str, ...] = ()
    transform: str = ""

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        status = "legal" if self.ok else "illegal"
        head = f"{self.transform}: {status}" if self.transform else status
        if not self.reasons:
            return head
        return head + " — " + "; ".join(self.reasons)


def _report_of(target: Union[ast.FunctionDef, DependenceReport]) -> DependenceReport:
    if isinstance(target, DependenceReport):
        return target
    return analyze_dependences(target)


def _resolve_loop(flow: FunctionDataflow, key: LoopKey) -> LoopDesc:
    if isinstance(key, int):
        if 0 <= key < len(flow.loops):
            return flow.loops[key]
        raise AnalysisError(
            f"function {flow.function!r} has no loop #{key} "
            f"(it has {len(flow.loops)} loops)"
        )
    matches = [l for l in flow.loops if l.label == key]
    if not matches:
        matches = [l for l in flow.loops if l.var == key]
    if not matches:
        raise AnalysisError(
            f"function {flow.function!r} has no loop named {key!r}; "
            f"known loops: {', '.join(l.label for l in flow.loops) or 'none'}"
        )
    if len(matches) > 1:
        raise AnalysisError(
            f"loop name {key!r} is ambiguous in {flow.function!r}; "
            f"use a label: {', '.join(l.label for l in matches)}"
        )
    return matches[0]


def _chain_between(
    flow: FunctionDataflow, outer: LoopDesc, inner: LoopDesc
) -> list[LoopDesc]:
    """The nesting chain ``[outer, ..., inner]``; raises when *inner*
    is not nested under *outer*."""
    chain = [inner]
    cursor = inner
    while cursor.parent is not None and cursor.index != outer.index:
        cursor = flow.loops[cursor.parent]
        chain.append(cursor)
    if cursor.index != outer.index:
        raise AnalysisError(
            f"loop {inner.label!r} is not nested inside {outer.label!r} "
            f"in {flow.function!r}"
        )
    chain.reverse()
    return chain


def _band_structural_reasons(
    flow: FunctionDataflow, band: list[LoopDesc]
) -> list[str]:
    """Structural obstacles to permuting the loops of *band* (outermost
    first): non-canonical headers, bounds that vary inside the band,
    imperfect nesting between the band's levels."""
    reasons: list[str] = []
    band_vars = {loop.var for loop in band}
    for loop in band:
        if loop.is_while:
            reasons.append(f"loop {loop.label} is a while loop")
            continue
        if not loop.is_canonical:
            reasons.append(
                f"loop {loop.label} has a non-canonical header "
                "(unknown start or step)"
            )
        if loop.bound_symbol is not None:
            if loop.bound_symbol in band_vars:
                reasons.append(
                    f"loop {loop.label} has a triangular bound "
                    f"(depends on {loop.bound_symbol!r})"
                )
            elif loop.bound_symbol not in flow.scalar_params:
                reasons.append(
                    f"loop {loop.label} bound {loop.bound_symbol!r} is not "
                    "provably invariant in the band"
                )
    outer, inner = band[0], band[-1]
    loose = [
        s
        for s in flow.statements
        if outer.index in s.loop_ids
        and inner.index not in s.loop_ids
        and s.kind != "header"
    ]
    if loose:
        sample = loose[0]
        reasons.append(
            f"imperfect nest: statement S{sample.index} ({sample.text or sample.kind}) "
            f"sits between {outer.label} and {inner.label}"
        )
    return reasons


def _lex_nonnegative(vector: tuple[str, ...]) -> bool:
    for direction in vector:
        if direction == "<":
            return True
        if direction == ">":
            return False
    return True  # all "="


def can_interchange(
    target: Union[ast.FunctionDef, DependenceReport],
    outer: LoopKey,
    inner: LoopKey,
) -> LegalityVerdict:
    """May *outer* and *inner* (a nested pair) swap positions?

    Legal iff the band is structurally permutable and no plausible
    dependence direction vector becomes lexicographically negative
    after swapping the two levels.
    """
    report = _report_of(target)
    flow = report.dataflow
    outer_loop = _resolve_loop(flow, outer)
    inner_loop = _resolve_loop(flow, inner)
    name = f"interchange({outer_loop.label},{inner_loop.label})"
    if outer_loop.index == inner_loop.index:
        return LegalityVerdict(False, ("cannot interchange a loop with itself",), name)
    try:
        band = _chain_between(flow, outer_loop, inner_loop)
    except AnalysisError as exc:
        return LegalityVerdict(False, (str(exc),), name)
    reasons = _band_structural_reasons(flow, band)
    if reasons:
        return LegalityVerdict(False, tuple(reasons), name)
    for dep in report.dependences:
        if (
            outer_loop.index not in dep.loop_ids
            or inner_loop.index not in dep.loop_ids
        ):
            continue
        p_out = dep.loop_ids.index(outer_loop.index)
        p_in = dep.loop_ids.index(inner_loop.index)
        for vector in direction_vectors(dep):
            swapped = list(vector)
            swapped[p_out], swapped[p_in] = swapped[p_in], swapped[p_out]
            if not _lex_nonnegative(tuple(swapped)):
                reasons.append(
                    f"{dep.describe()} has direction ({', '.join(vector)}); "
                    "swapping would reverse it"
                )
                break
    if reasons:
        return LegalityVerdict(False, tuple(reasons), name)
    return LegalityVerdict(True, (), name)


def can_tile(
    target: Union[ast.FunctionDef, DependenceReport],
    loops: Union[LoopKey, list, tuple],
) -> LegalityVerdict:
    """May the given loop band be tiled (strip-mined and interchanged)?

    A single loop strip-mines unconditionally (iteration order is
    unchanged).  A band of two or more loops must be *fully
    permutable*: every plausible dependence direction vector that is
    not already satisfied outside the band must be non-negative at
    every band level.
    """
    report = _report_of(target)
    flow = report.dataflow
    keys = [loops] if isinstance(loops, (int, str)) else list(loops)
    if not keys:
        return LegalityVerdict(False, ("empty loop band",), "tile()")
    band = [_resolve_loop(flow, key) for key in keys]
    name = f"tile({','.join(l.label for l in band)})"
    band = sorted(band, key=lambda l: l.depth)
    if len(band) == 1:
        loop = band[0]
        if loop.is_while or not loop.is_canonical:
            return LegalityVerdict(
                False, (f"loop {loop.label} has a non-canonical header",), name
            )
        return LegalityVerdict(True, (), name)
    try:
        chain = _chain_between(flow, band[0], band[-1])
    except AnalysisError as exc:
        return LegalityVerdict(False, (str(exc),), name)
    if [l.index for l in chain] != [l.index for l in band]:
        return LegalityVerdict(
            False,
            (
                "tile band must be a contiguous nesting chain; got "
                + ", ".join(l.label for l in band),
            ),
            name,
        )
    reasons = _band_structural_reasons(flow, band)
    if reasons:
        return LegalityVerdict(False, tuple(reasons), name)
    band_ids = {l.index for l in band}
    for dep in report.dependences:
        positions = [
            i for i, loop_id in enumerate(dep.loop_ids) if loop_id in band_ids
        ]
        if not positions:
            continue
        first_band = min(positions)
        for vector in direction_vectors(dep):
            if any(d == "<" for d in vector[:first_band]):
                continue  # carried above the band: unaffected by tiling
            if any(vector[p] == ">" for p in positions):
                reasons.append(
                    f"{dep.describe()} has direction ({', '.join(vector)}); "
                    "the band is not fully permutable"
                )
                break
    if reasons:
        return LegalityVerdict(False, tuple(reasons), name)
    return LegalityVerdict(True, (), name)


# -- fusion ------------------------------------------------------------


def _headers_match(a: LoopDesc, b: LoopDesc) -> bool:
    return (
        a.is_canonical
        and b.is_canonical
        and a.start == b.start
        and a.step == b.step
        and a.op == b.op
        and a.bound == b.bound
        and a.bound_symbol == b.bound_symbol
    )


def _fusion_delta(
    src_sub, dst_sub, var_a: str, var_b: str, outer_vars: set, step: int
):
    """Alignment constraint one subscript position places on fusing two
    sibling loops: ``_INDEPENDENT``-like ``"none"`` (no collision),
    ``None`` (no constraint), ``"unknown"``, or an int iteration delta
    ``t`` such that source iteration ``i`` collides with sink iteration
    ``i + t``."""
    if not (src_sub.affine and dst_sub.affine):
        return "unknown"
    ca = src_sub.coeff(var_a)
    cb = dst_sub.coeff(var_b)
    # Terms in variables other than the fused pair: outer loop vars must
    # agree (same outer iteration); anything else is a free inner var.
    for name in src_sub.variables:
        if name == var_a:
            continue
        if name in outer_vars:
            if src_sub.coeff(name) != dst_sub.coeff(name):
                return "unknown"
        else:
            return None  # free inner variable absorbs the constraint
    for name in dst_sub.variables:
        if name == var_b:
            continue
        if name in outer_vars:
            if src_sub.coeff(name) != dst_sub.coeff(name):
                return "unknown"
        else:
            return None
    if ca == 0 and cb == 0:
        return None if src_sub.constant == dst_sub.constant else "none"
    if ca == 0 or cb == 0 or ca != cb:
        return "unknown"
    value_delta = src_sub.constant - dst_sub.constant
    if value_delta % ca != 0:
        return "none"
    value_delta //= ca
    if value_delta % step != 0:
        return "none"
    return value_delta // step


def can_fuse(
    target: Union[ast.FunctionDef, DependenceReport],
    first: LoopKey,
    second: LoopKey,
) -> LegalityVerdict:
    """May two adjacent sibling loops merge into one?

    Requires identical headers and that every element-level collision
    from the first loop's body to the second's has a non-negative
    alignment: the sink iteration must not precede the source iteration
    once the bodies interleave.
    """
    report = _report_of(target)
    flow = report.dataflow
    loop_a = _resolve_loop(flow, first)
    loop_b = _resolve_loop(flow, second)
    name = f"fuse({loop_a.label},{loop_b.label})"
    reasons: list[str] = []
    if loop_a.index == loop_b.index:
        return LegalityVerdict(False, ("cannot fuse a loop with itself",), name)
    if loop_a.order > loop_b.order:
        loop_a, loop_b = loop_b, loop_a
    if loop_a.parent != loop_b.parent:
        return LegalityVerdict(
            False,
            (f"loops {loop_a.label} and {loop_b.label} are not siblings",),
            name,
        )
    if not _headers_match(loop_a, loop_b):
        return LegalityVerdict(
            False,
            (
                f"loop headers differ: {loop_a.label} is "
                f"[{loop_a.start}, {loop_a.op} {loop_a.bound_symbol or loop_a.bound}, "
                f"step {loop_a.step}] but {loop_b.label} is "
                f"[{loop_b.start}, {loop_b.op} {loop_b.bound_symbol or loop_b.bound}, "
                f"step {loop_b.step}]",
            ),
            name,
        )
    # Adjacency: nothing may execute between the two loops.
    for statement in flow.statements:
        if (
            loop_a.end_order < statement.order < loop_b.order
            and loop_a.index not in statement.loop_ids
            and loop_b.index not in statement.loop_ids
        ):
            return LegalityVerdict(
                False,
                (
                    f"loops are not adjacent: statement S{statement.index} "
                    f"({statement.text or statement.kind}) executes between them",
                ),
                name,
            )
    outer_vars = set()
    cursor = loop_a.parent
    while cursor is not None:
        outer_vars.add(flow.loops[cursor].var)
        cursor = flow.loops[cursor].parent
    induction = {l.var for l in flow.loops}
    stmts_a = [s for s in flow.statements if loop_a.index in s.loop_ids]
    stmts_b = [s for s in flow.statements if loop_b.index in s.loop_ids]
    assert loop_a.step is not None
    for sa in stmts_a:
        for sb in stmts_b:
            # scalar traffic across the fusion seam (induction vars are
            # structural, re-established by each loop's own header)
            crossing = {
                n
                for n in sa.scalar_defs & sb.scalar_reads
                if n not in induction
            }
            if crossing:
                reasons.append(
                    f"scalar {sorted(crossing)[0]!r} flows from S{sa.index} "
                    f"into S{sb.index} across the fusion seam"
                )
                continue
            for acc_a in sa.reads + sa.writes:
                for acc_b in sb.reads + sb.writes:
                    if acc_a.array != acc_b.array:
                        continue
                    if not (acc_a.is_write or acc_b.is_write):
                        continue
                    if acc_a.opaque or acc_b.opaque:
                        reasons.append(
                            f"array {acc_a.array!r} is passed to a call: "
                            "element collisions are unknown"
                        )
                        continue
                    if len(acc_a.subscripts) != len(acc_b.subscripts):
                        reasons.append(
                            f"array {acc_a.array!r} is accessed with "
                            "mismatched rank across the loops"
                        )
                        continue
                    delta: object = "*"
                    dead = False
                    for pa, pb in zip(acc_a.subscripts, acc_b.subscripts):
                        constraint = _fusion_delta(
                            pa, pb, loop_a.var, loop_b.var, outer_vars, loop_a.step
                        )
                        if constraint == "none":
                            dead = True
                            break
                        if constraint is None:
                            continue
                        if constraint == "unknown":
                            delta = "unknown"
                            continue
                        if isinstance(delta, int) and delta != constraint:
                            dead = True
                            break
                        if delta != "unknown":
                            delta = constraint
                    if dead:
                        continue
                    if delta == "unknown" or delta == "*":
                        reasons.append(
                            f"collision on {acc_a.array!r} between S{sa.index} "
                            f"({acc_a}) and S{sb.index} ({acc_b}) has unknown "
                            "alignment"
                        )
                    elif isinstance(delta, int) and delta < 0:
                        kind = (
                            "output"
                            if acc_a.is_write and acc_b.is_write
                            else ("flow" if acc_a.is_write else "anti")
                        )
                        reasons.append(
                            f"{kind} dependence on {acc_a.array!r}: iteration i "
                            f"of {loop_a.label} ({acc_a}) reaches iteration "
                            f"i{delta} of {loop_b.label} ({acc_b}); fusing would "
                            "reverse it"
                        )
    if reasons:
        # deduplicate while keeping order
        seen: dict[str, None] = {}
        for reason in reasons:
            seen.setdefault(reason)
        return LegalityVerdict(False, tuple(seen), name)
    return LegalityVerdict(True, (), name)


def can_unroll(
    target: Union[ast.FunctionDef, DependenceReport],
    loop: LoopKey,
    factor: int = 2,
) -> LegalityVerdict:
    """May the loop unroll by *factor* (0 = full unroll)?

    An innermost loop unrolls unconditionally (body replication keeps
    iteration order).  A loop with inner loops implies unroll-and-jam,
    which is illegal when a dependence carried at the jammed level
    with distance < factor flips direction at a deeper level.
    """
    report = _report_of(target)
    flow = report.dataflow
    desc = _resolve_loop(flow, loop)
    name = f"unroll({desc.label},factor={factor or 'full'})"
    if desc.is_while or not desc.is_canonical:
        return LegalityVerdict(
            False, (f"loop {desc.label} has a non-canonical header",), name
        )
    if factor == 0 and not desc.is_static:
        return LegalityVerdict(
            False,
            (
                f"full unroll needs a static trip count; loop {desc.label} "
                f"bound is {desc.bound_symbol!r}",
            ),
            name,
        )
    children = flow.children_of(desc.index)
    if not children:
        return LegalityVerdict(True, (), name)
    # unroll-and-jam path
    reasons: list[str] = []
    loose = [
        s
        for s in flow.statements
        if s.loop_ids
        and s.loop_ids[-1] == desc.index
        and s.kind != "header"
    ]
    if loose:
        sample = loose[0]
        reasons.append(
            f"unroll-and-jam needs a perfect nest: statement S{sample.index} "
            f"({sample.text or sample.kind}) sits directly in {desc.label}"
        )
        return LegalityVerdict(False, tuple(reasons), name)
    for dep in report.dependences:
        if desc.index not in dep.loop_ids:
            continue
        level = dep.loop_ids.index(desc.index)
        if len(dep.loop_ids) <= level + 1:
            continue  # nothing deeper to flip
        delta = dep.deltas[level]
        if isinstance(delta, int) and factor > 0 and 0 < delta and delta >= factor:
            continue  # the colliding iterations are never jammed together
        for vector in direction_vectors(dep):
            if vector[level] == "<" and any(
                d == ">" for d in vector[level + 1 :]
            ):
                reasons.append(
                    f"{dep.describe()} has direction ({', '.join(vector)}); "
                    f"jamming {desc.label} would reverse the inner level"
                )
                break
    if reasons:
        return LegalityVerdict(False, tuple(reasons), name)
    return LegalityVerdict(True, (), name)


# -- distribution ------------------------------------------------------


def distribution_items(
    flow: FunctionDataflow, desc: LoopDesc
) -> "list[tuple[str, object]] | None":
    """The loop body's direct items — child loops and the statements
    that sit immediately in the loop — in textual order, each as a
    ``("loop", LoopDesc)`` or ``("stmt", Statement)`` pair.

    Returns ``None`` when the body contains control flow (``if``,
    ``while``, calls-as-statements, ...) that a statement-list split
    cannot be mapped onto.  The item order matches the AST's
    ``loop.body.stmts`` order, which is how the rewrite engine lines up
    a split position with the analysis verdict.
    """
    children = sorted(flow.children_of(desc.index), key=lambda l: l.order)
    spans = [(c.order, c.end_order) for c in children]
    keyed: list[tuple[int, tuple[str, object]]] = [
        (c.order, ("loop", c)) for c in children
    ]
    for statement in flow.statements:
        if not statement.loop_ids or statement.loop_ids[-1] != desc.index:
            continue
        if any(lo < statement.order <= hi for lo, hi in spans):
            continue  # a child loop's own header
        if statement.kind not in ("assign", "decl"):
            return None
        keyed.append((statement.order, ("stmt", statement)))
    keyed.sort(key=lambda pair: pair[0])
    return [item for _, item in keyed]


def can_distribute(
    target: Union[ast.FunctionDef, DependenceReport],
    loop: LoopKey,
    split: int = 1,
) -> LegalityVerdict:
    """May the loop split into two sequential loops at body position
    *split* (counted over direct items: statements and child loops)?

    Distribution runs *all* iterations of the first chunk before any of
    the second, so it is illegal when a dependence flows backwards
    across the split (second chunk → first chunk, not already satisfied
    by an outer loop), when a scalar flows across the split inside one
    iteration, or when a declaration in the first chunk is referenced
    after the split.
    """
    report = _report_of(target)
    flow = report.dataflow
    desc = _resolve_loop(flow, loop)
    name = f"distribute({desc.label}@{split})"
    if desc.is_while or not desc.is_canonical:
        return LegalityVerdict(
            False, (f"loop {desc.label} has a non-canonical header",), name
        )
    items = distribution_items(flow, desc)
    if items is None:
        return LegalityVerdict(
            False,
            (f"loop {desc.label} body contains control flow; "
             "a statement-list split cannot represent it",),
            name,
        )
    if not 1 <= split < len(items):
        return LegalityVerdict(
            False,
            (f"split position {split} is out of range for the "
             f"{len(items)} direct items of {desc.label}",),
            name,
        )
    first: set[int] = set()
    second: set[int] = set()
    decl_names: list[str] = []
    for position, (kind, payload) in enumerate(items):
        chunk = first if position < split else second
        if kind == "stmt":
            chunk.add(payload.index)
            if position < split and payload.kind == "decl":
                decl_names.extend(payload.text.split()[1:2])
        else:
            # The child's subtree plus its own header statement (whose
            # loop_ids stop at the parent, so span membership is what
            # identifies it).
            chunk.update(
                s.index
                for s in flow.statements
                if payload.index in s.loop_ids
                or (
                    s.kind == "header"
                    and payload.order < s.order <= payload.end_order
                )
            )
    reasons: list[str] = []
    for dep in report.dependences:
        crosses = (dep.src in first and dep.dst in second) or (
            dep.src in second and dep.dst in first
        )
        if not crosses:
            continue
        if dep.kind == "scalar":
            reasons.append(
                f"{dep.describe()} crosses the split; the scalar would "
                "have to survive between the distributed loops"
            )
            continue
        if dep.src in second and dep.dst in first:
            # Textually-backward dependence: legal only when an outer
            # loop provably carries it (then iteration groups keep
            # their order regardless of the split).
            level = (
                dep.loop_ids.index(desc.index)
                if desc.index in dep.loop_ids
                else len(dep.loop_ids)
            )
            outer_deltas = dep.deltas[:level]
            carried_outside = any(
                isinstance(d, int) and d > 0 for d in outer_deltas
            )
            if not carried_outside:
                reasons.append(
                    f"{dep.describe()} runs backwards across the split; "
                    "distribution would reverse it"
                )
    for decl_name in decl_names:
        for statement in flow.statements:
            if statement.index not in second:
                continue
            used = (
                decl_name in statement.scalar_reads
                or decl_name in statement.scalar_defs
                or any(
                    a.array == decl_name
                    for a in statement.reads + statement.writes
                )
            )
            if used:
                reasons.append(
                    f"declaration of {decl_name!r} in the first chunk is "
                    f"referenced by S{statement.index} after the split"
                )
                break
    if reasons:
        seen: dict[str, None] = {}
        for reason in reasons:
            seen.setdefault(reason)
        return LegalityVerdict(False, tuple(seen), name)
    return LegalityVerdict(True, (), name)


# -- the summary matrix (CLI / JSON) -----------------------------------


def legality_matrix(func: ast.FunctionDef) -> dict:
    """Every standard legality query the function's loop structure
    admits, as one JSON-friendly dict (the CLI's payload)."""
    report = analyze_dependences(func)
    flow = report.dataflow

    def row(verdict: LegalityVerdict) -> dict:
        return {
            "transform": verdict.transform,
            "ok": verdict.ok,
            "reasons": list(verdict.reasons),
        }

    interchange = []
    tile = []
    unroll = []
    fuse = []
    distribute = []
    for loop in flow.loops:
        unroll.append(row(can_unroll(report, loop.index, factor=2)))
        items = distribution_items(flow, loop)
        for split in range(1, len(items) if items else 0):
            distribute.append(row(can_distribute(report, loop.index, split)))
        for child in flow.children_of(loop.index):
            interchange.append(row(can_interchange(report, loop.index, child.index)))
            tile.append(row(can_tile(report, [loop.index, child.index])))
    for parent in [None] + [l.index for l in flow.loops]:
        siblings = sorted(flow.children_of(parent), key=lambda l: l.order)
        for a, b in zip(siblings, siblings[1:]):
            fuse.append(row(can_fuse(report, a.index, b.index)))
    return {
        "function": flow.function,
        "loops": [
            {
                "label": loop.label,
                "depth": loop.depth,
                "start": loop.start,
                "bound": loop.bound if loop.bound is not None else loop.bound_symbol,
                "step": loop.step,
            }
            for loop in flow.loops
        ],
        "interchange": interchange,
        "tile": tile,
        "fuse": fuse,
        "unroll": unroll,
        "distribute": distribute,
    }
