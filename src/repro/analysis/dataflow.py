"""Per-statement dataflow analysis over the loop-tree IR.

This is the fact layer the dependence/legality/validation stack builds
on (the Exo/SYS_ATL ``rewrite/dataflow.py`` role): every assignment in
an operator function becomes a :class:`Statement` carrying its array
reads/writes as affine subscript expressions, annotated with the loop
nest it executes under.  A forward pass over the linearized statement
order computes reaching definitions, definitely-undefined reads and the
live-out arrays of every loop nest.

The loop structure mirrors :mod:`repro.ir.looptree` (each
:class:`LoopDesc` corresponds to one lowered ``LoopNode``) but keeps
the information lowering drops — per-statement subscripts, comparison
direction and signed steps — because dependence distances need them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from ..ir.looptree import LoopTree, lower_function
from ..lang import ast

__all__ = [
    "AffineExpr",
    "ArrayAccess",
    "FunctionDataflow",
    "LoopDesc",
    "Statement",
    "UndefinedRead",
    "affine_of",
    "analyze_dataflow",
]


# -- affine subscript expressions --------------------------------------


@dataclass(frozen=True)
class AffineExpr:
    """``sum(coeff * var) + constant`` or a non-affine marker."""

    terms: tuple[tuple[str, int], ...] = ()
    constant: int = 0
    affine: bool = True

    NON_AFFINE: "AffineExpr" = None  # type: ignore[assignment]  # set below

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.terms)

    @property
    def is_constant(self) -> bool:
        return self.affine and not self.terms

    def coeff(self, var: str) -> int:
        for name, value in self.terms:
            if name == var:
                return value
        return 0

    def __str__(self) -> str:
        if not self.affine:
            return "<non-affine>"
        parts = []
        for name, value in self.terms:
            if value == 1:
                parts.append(name)
            elif value == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{value}*{name}")
        if self.constant or not parts:
            parts.append(str(self.constant))
        text = "+".join(parts)
        return text.replace("+-", "-")


AffineExpr.NON_AFFINE = AffineExpr(affine=False)


def _combine(
    left: AffineExpr, right: AffineExpr, sign: int
) -> AffineExpr:
    coeffs = dict(left.terms)
    for name, value in right.terms:
        coeffs[name] = coeffs.get(name, 0) + sign * value
    terms = tuple(sorted((n, v) for n, v in coeffs.items() if v != 0))
    return AffineExpr(terms=terms, constant=left.constant + sign * right.constant)


def affine_of(expr: ast.Expr) -> AffineExpr:
    """Best-effort affine form of *expr*; ``AffineExpr.NON_AFFINE`` when
    the expression falls outside ``c0 + sum(ci * vi)``."""
    if isinstance(expr, ast.IntLit):
        return AffineExpr(constant=expr.value)
    if isinstance(expr, ast.Var):
        return AffineExpr(terms=((expr.name, 1),))
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        inner = affine_of(expr.operand)
        if not inner.affine:
            return AffineExpr.NON_AFFINE
        return AffineExpr(
            terms=tuple((n, -v) for n, v in inner.terms),
            constant=-inner.constant,
        )
    if isinstance(expr, ast.BinOp):
        if expr.op in ("+", "-"):
            left = affine_of(expr.left)
            right = affine_of(expr.right)
            if not (left.affine and right.affine):
                return AffineExpr.NON_AFFINE
            return _combine(left, right, 1 if expr.op == "+" else -1)
        if expr.op == "*":
            left = affine_of(expr.left)
            right = affine_of(expr.right)
            if not (left.affine and right.affine):
                return AffineExpr.NON_AFFINE
            if left.is_constant:
                scale, scaled = left.constant, right
            elif right.is_constant:
                scale, scaled = right.constant, left
            else:
                return AffineExpr.NON_AFFINE
            return AffineExpr(
                terms=tuple(
                    (n, v * scale) for n, v in scaled.terms if v * scale != 0
                ),
                constant=scaled.constant * scale,
            )
    return AffineExpr.NON_AFFINE


# -- loop descriptors ---------------------------------------------------


@dataclass(frozen=True)
class LoopDesc:
    """One loop level with everything dependence analysis needs.

    ``step`` is *signed* (``-1`` for a countdown loop); ``bound`` is the
    compile-time comparison bound (``None`` when symbolic) and ``op``
    the comparison operator, so value ranges and iteration distances
    can be derived exactly.  ``order``/``end_order`` position the loop
    in the function's pre-order statement sequence (used for fusion
    adjacency).
    """

    index: int
    var: str
    depth: int
    parent: Optional[int]
    start: Optional[int]
    bound: Optional[int]
    bound_symbol: Optional[str]
    op: str
    step: Optional[int]
    order: int = 0
    end_order: int = 0
    is_while: bool = False

    @property
    def label(self) -> str:
        return f"{self.var}#{self.index}"

    @property
    def is_canonical(self) -> bool:
        return not self.is_while and self.start is not None and self.step not in (None, 0)

    @property
    def is_static(self) -> bool:
        return self.is_canonical and self.bound is not None

    def value_range(self) -> Optional[tuple[int, int]]:
        """Inclusive ``(lo, hi)`` range the induction variable covers,
        or ``None`` when the loop is not fully static."""
        if not self.is_static:
            return None
        assert self.start is not None and self.bound is not None
        if self.op == "<":
            lo, hi = self.start, self.bound - 1
        elif self.op == "<=":
            lo, hi = self.start, self.bound
        elif self.op == ">":
            lo, hi = self.bound + 1, self.start
        elif self.op == ">=":
            lo, hi = self.bound, self.start
        else:
            return None
        if lo > hi:
            return None  # zero-trip loop
        return lo, hi


# -- statements ---------------------------------------------------------


@dataclass(frozen=True)
class ArrayAccess:
    """One subscripted array reference inside a statement."""

    array: str
    subscripts: tuple[AffineExpr, ...]
    is_write: bool
    opaque: bool = False  # passed to a call: contents unknown

    @property
    def is_affine(self) -> bool:
        return not self.opaque and all(s.affine for s in self.subscripts)

    def __str__(self) -> str:
        if self.opaque:
            return f"{self.array}[?]"
        subs = "".join(f"[{s}]" for s in self.subscripts)
        return f"{self.array}{subs}"


@dataclass(frozen=True)
class Statement:
    """One straight-line statement annotated with its loop nest."""

    index: int
    function: str
    kind: str  # "assign" | "decl" | "cond" | "expr" | "return" | "header"
    loop_ids: tuple[int, ...]
    reads: tuple[ArrayAccess, ...] = ()
    writes: tuple[ArrayAccess, ...] = ()
    scalar_reads: frozenset[str] = frozenset()
    scalar_defs: frozenset[str] = frozenset()
    is_reduction: bool = False
    order: int = 0
    text: str = ""
    guarded: bool = False  # under an If/While: may not execute every iteration

    @property
    def depth(self) -> int:
        return len(self.loop_ids)


@dataclass(frozen=True)
class UndefinedRead:
    """A read with no textually-preceding definition."""

    statement: int
    name: str
    kind: str  # "scalar" | "array" | "uninitialized-local"

    def describe(self) -> str:
        if self.kind == "scalar":
            return f"scalar {self.name!r} read before any definition"
        if self.kind == "array":
            return f"array {self.name!r} read but never defined or written"
        return f"local array {self.name!r} read before any write"


@dataclass
class FunctionDataflow:
    """Dataflow facts for one function."""

    function: str
    tree: LoopTree
    loops: tuple[LoopDesc, ...]
    statements: tuple[Statement, ...]
    params: tuple[str, ...]
    array_params: frozenset[str]
    scalar_params: frozenset[str]
    local_arrays: frozenset[str]
    reaching: dict[int, dict[str, frozenset[int]]] = field(default_factory=dict)
    undefined_reads: tuple[UndefinedRead, ...] = ()
    live_out: frozenset[str] = frozenset()

    def loop(self, index: int) -> LoopDesc:
        return self.loops[index]

    def loop_chain(self, statement: Statement) -> tuple[LoopDesc, ...]:
        return tuple(self.loops[i] for i in statement.loop_ids)

    def statements_in(self, loop_index: int) -> list[Statement]:
        return [s for s in self.statements if loop_index in s.loop_ids]

    def children_of(self, loop_index: Optional[int]) -> list[LoopDesc]:
        return [l for l in self.loops if l.parent == loop_index]

    def accesses(self) -> Iterator[tuple[Statement, ArrayAccess]]:
        for statement in self.statements:
            for access in statement.reads + statement.writes:
                yield statement, access

    def loop_live_out(self, loop_index: int) -> frozenset[str]:
        """Arrays written inside the loop that are observable after it:
        read by a later statement outside the loop, or escaping through
        an array parameter."""
        inside = [s for s in self.statements if loop_index in s.loop_ids]
        if not inside:
            return frozenset()
        written = {a.array for s in inside for a in s.writes}
        last_order = max(s.order for s in inside)
        live = {name for name in written if name in self.array_params}
        for statement in self.statements:
            if loop_index in statement.loop_ids or statement.order <= last_order:
                continue
            for access in statement.reads:
                if access.array in written:
                    live.add(access.array)
        return frozenset(live)


# -- extraction ---------------------------------------------------------


def _expr_accesses(expr: ast.Expr) -> tuple[list[ArrayAccess], set[str]]:
    """Array reads and scalar reads of an expression subtree."""
    accesses: list[ArrayAccess] = []
    scalars: set[str] = set()
    subscript_bases: set[int] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Index):
            accesses.append(
                ArrayAccess(
                    array=node.base.name,
                    subscripts=tuple(affine_of(i) for i in node.indices),
                    is_write=False,
                )
            )
            subscript_bases.add(id(node.base))
        elif isinstance(node, ast.Var) and id(node) not in subscript_bases:
            scalars.add(node.name)
        elif isinstance(node, ast.CallExpr):
            for arg in node.args:
                if isinstance(arg, ast.Var):
                    # Array arguments of nested calls are opaque: the
                    # callee may read or write anything in them.
                    accesses.append(
                        ArrayAccess(array=arg.name, subscripts=(), is_write=False, opaque=True)
                    )
                    accesses.append(
                        ArrayAccess(array=arg.name, subscripts=(), is_write=True, opaque=True)
                    )
    # Var nodes serving as Index bases are array references, not scalar
    # reads; drop any that slipped in via walk order.
    array_names = {a.array for a in accesses}
    scalars -= array_names
    return accesses, scalars


def _same_access(a: ArrayAccess, b: ArrayAccess) -> bool:
    return (
        a.array == b.array
        and a.is_affine
        and b.is_affine
        and a.subscripts == b.subscripts
    )


def _parse_step(stmt: Optional[ast.Stmt], var: str) -> Optional[int]:
    """Signed step of a canonical ``for`` increment, else ``None``."""
    if not isinstance(stmt, ast.Assign):
        return None
    target = stmt.target
    if not isinstance(target, ast.Var) or target.name != var:
        return None
    if stmt.op in ("+=", "-=") and isinstance(stmt.value, ast.IntLit):
        magnitude = stmt.value.value
        return magnitude if stmt.op == "+=" else -magnitude
    if stmt.op == "=" and isinstance(stmt.value, ast.BinOp):
        binop = stmt.value
        if (
            binop.op in ("+", "-")
            and isinstance(binop.left, ast.Var)
            and binop.left.name == var
            and isinstance(binop.right, ast.IntLit)
        ):
            return binop.right.value if binop.op == "+" else -binop.right.value
    return None


def analyze_dataflow(func: ast.FunctionDef) -> FunctionDataflow:
    """Extract loop descriptors, annotated statements and reaching
    definitions from one function."""
    loops: list[LoopDesc] = []
    statements: list[Statement] = []
    local_arrays: set[str] = set()
    order_counter = [0]
    # Names known to be scalars when they appear as call arguments:
    # scalar params, scalar declarations and loop induction variables.
    scalar_names: set[str] = {p.name for p in func.params if not p.type.is_array}

    def next_order() -> int:
        order_counter[0] += 1
        return order_counter[0]

    def expr_accesses(
        expr: ast.Expr,
    ) -> tuple[list[ArrayAccess], list[ArrayAccess], set[str]]:
        """Array reads, array writes (opaque call args) and scalar reads
        of one expression, with known-scalar call arguments reclassified
        as scalar reads instead of phantom opaque arrays."""
        accesses, scalars = _expr_accesses(expr)
        reads: list[ArrayAccess] = []
        writes: list[ArrayAccess] = []
        for access in accesses:
            if access.opaque and access.array in scalar_names:
                if not access.is_write:
                    scalars.add(access.array)
                continue
            (writes if access.is_write else reads).append(access)
        return reads, writes, scalars

    def add_statement(
        kind: str,
        loop_path: tuple[int, ...],
        reads: list[ArrayAccess],
        writes: list[ArrayAccess],
        scalar_reads: set[str],
        scalar_defs: set[str],
        is_reduction: bool = False,
        text: str = "",
        guarded: bool = False,
    ) -> None:
        statements.append(
            Statement(
                index=len(statements),
                function=func.name,
                kind=kind,
                loop_ids=loop_path,
                reads=tuple(reads),
                writes=tuple(writes),
                scalar_reads=frozenset(scalar_reads),
                scalar_defs=frozenset(scalar_defs),
                is_reduction=is_reduction,
                order=next_order(),
                text=text,
                guarded=guarded,
            )
        )

    def visit_for(
        stmt: ast.For, loop_path: tuple[int, ...], guarded: bool
    ) -> None:
        var = None
        start = None
        op = "?"
        bound = None
        bound_symbol = None
        if isinstance(stmt.cond, ast.BinOp) and isinstance(stmt.cond.left, ast.Var):
            var = stmt.cond.left.name
            op = stmt.cond.op
            bound_expr = stmt.cond.right
            if isinstance(bound_expr, ast.IntLit):
                bound = bound_expr.value
            elif (
                isinstance(bound_expr, ast.UnaryOp)
                and bound_expr.op == "-"
                and isinstance(bound_expr.operand, ast.IntLit)
            ):
                # countdown loops bottom out at a negative literal
                # (`i > -1`); fold it so they stay fully static
                bound = -bound_expr.operand.value
            elif isinstance(bound_expr, ast.Var):
                bound_symbol = bound_expr.name
            else:
                bound_symbol = f"<expr:{var}>"
        header_reads: set[str] = set()
        header_defs: set[str] = set()
        if isinstance(stmt.init, ast.Decl):
            header_defs.add(stmt.init.name)
            if var is None:
                var = stmt.init.name
            if isinstance(stmt.init.init, ast.IntLit):
                start = stmt.init.init.value
        elif isinstance(stmt.init, ast.Assign) and isinstance(stmt.init.target, ast.Var):
            header_defs.add(stmt.init.target.name)
            if var is None:
                var = stmt.init.target.name
            if isinstance(stmt.init.value, ast.IntLit):
                start = stmt.init.value.value
        if var is None:
            var = "<loop>"
        scalar_names.add(var)
        if stmt.cond is not None:
            _, _, cond_scalars = expr_accesses(stmt.cond)
            header_reads |= cond_scalars - {var}
        step = _parse_step(stmt.step, var)
        index = len(loops)
        desc_order = next_order()
        loops.append(
            LoopDesc(
                index=index,
                var=var,
                depth=len(loop_path),
                parent=loop_path[-1] if loop_path else None,
                start=start,
                bound=bound,
                bound_symbol=bound_symbol,
                op=op,
                step=step,
                order=desc_order,
            )
        )
        add_statement(
            "header", loop_path, [], [], header_reads, header_defs | {var},
            text=f"for {var}", guarded=guarded,
        )
        visit(stmt.body.stmts, loop_path + (index,), guarded)
        loops[index] = LoopDesc(
            **{**loops[index].__dict__, "end_order": order_counter[0]}
        )

    def visit(
        stmts: list[ast.Stmt], loop_path: tuple[int, ...], guarded: bool = False
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.For):
                visit_for(stmt, loop_path, guarded)
            elif isinstance(stmt, ast.While):
                index = len(loops)
                desc_order = next_order()
                loops.append(
                    LoopDesc(
                        index=index,
                        var=f"<while#{index}>",
                        depth=len(loop_path),
                        parent=loop_path[-1] if loop_path else None,
                        start=None,
                        bound=None,
                        bound_symbol="<while>",
                        op="?",
                        step=None,
                        order=desc_order,
                        is_while=True,
                    )
                )
                reads, call_writes, scalars = expr_accesses(stmt.cond)
                add_statement(
                    "cond", loop_path, reads, call_writes, scalars, set(), guarded=guarded
                )
                visit(stmt.body.stmts, loop_path + (index,), True)
                loops[index] = LoopDesc(
                    **{**loops[index].__dict__, "end_order": order_counter[0]}
                )
            elif isinstance(stmt, ast.If):
                reads, call_writes, scalars = expr_accesses(stmt.cond)
                add_statement(
                    "cond", loop_path, reads, call_writes, scalars, set(), guarded=guarded
                )
                visit(stmt.then.stmts, loop_path, True)
                if stmt.other is not None:
                    visit(stmt.other.stmts, loop_path, True)
            elif isinstance(stmt, ast.Block):
                visit(stmt.stmts, loop_path, guarded)
            elif isinstance(stmt, ast.Assign):
                reads, writes, scalars = expr_accesses(stmt.value)
                scalar_defs: set[str] = set()
                is_reduction = False
                if isinstance(stmt.target, ast.Index):
                    subscripts = tuple(affine_of(i) for i in stmt.target.indices)
                    for idx_expr in stmt.target.indices:
                        idx_reads, idx_writes, idx_scalars = expr_accesses(idx_expr)
                        reads.extend(idx_reads)
                        writes.extend(idx_writes)
                        scalars |= idx_scalars
                    write = ArrayAccess(
                        array=stmt.target.base.name,
                        subscripts=subscripts,
                        is_write=True,
                    )
                    writes.append(write)
                    if stmt.op in ("+=", "*="):
                        reads.append(
                            ArrayAccess(
                                array=write.array,
                                subscripts=subscripts,
                                is_write=False,
                            )
                        )
                        is_reduction = True
                    elif stmt.op == "=" and isinstance(stmt.value, ast.BinOp):
                        if stmt.value.op in ("+", "*") and any(
                            _same_access(read, write) for read in reads
                        ):
                            is_reduction = True
                    elif stmt.op != "=":
                        reads.append(
                            ArrayAccess(
                                array=write.array,
                                subscripts=subscripts,
                                is_write=False,
                            )
                        )
                else:
                    scalar_defs.add(stmt.target.name)
                    scalar_names.add(stmt.target.name)
                    if stmt.op != "=":
                        scalars.add(stmt.target.name)
                target_text = (
                    str(writes[-1])
                    if isinstance(stmt.target, ast.Index) and writes
                    else getattr(stmt.target, "name", "?")
                )
                add_statement(
                    "assign", loop_path, reads, writes, scalars, scalar_defs,
                    is_reduction=is_reduction, text=f"{target_text} {stmt.op} ...",
                    guarded=guarded,
                )
            elif isinstance(stmt, ast.Decl):
                if stmt.type.is_array:
                    local_arrays.add(stmt.name)
                    dim_scalars: set[str] = set()
                    for dim in stmt.type.dims:
                        if dim is not None:
                            _, _, dim_reads = expr_accesses(dim)
                            dim_scalars |= dim_reads
                    add_statement(
                        "decl", loop_path, [], [], dim_scalars, set(),
                        text=f"decl {stmt.name}", guarded=guarded,
                    )
                else:
                    scalar_names.add(stmt.name)
                    reads, call_writes, scalars = (
                        expr_accesses(stmt.init)
                        if stmt.init is not None
                        else ([], [], set())
                    )
                    add_statement(
                        "decl", loop_path, reads, call_writes, scalars, {stmt.name},
                        text=f"decl {stmt.name}", guarded=guarded,
                    )
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    reads, call_writes, scalars = expr_accesses(stmt.value)
                    add_statement(
                        "return", loop_path, reads, call_writes, scalars, set(),
                        guarded=guarded,
                    )
            elif isinstance(stmt, ast.ExprStmt):
                reads, call_writes, scalars = expr_accesses(stmt.expr)
                add_statement(
                    "expr", loop_path, reads, call_writes, scalars, set(),
                    guarded=guarded,
                )

    visit(func.body.stmts, ())

    array_params = frozenset(p.name for p in func.params if p.type.is_array)
    scalar_params = frozenset(p.name for p in func.params if not p.type.is_array)

    # Forward pass: reaching definitions (may-reach, array granularity)
    # and definitely-undefined reads in textual order.
    defined_scalars = set(scalar_params)
    array_defs: dict[str, set[int]] = {}
    written_locals: set[str] = set()
    reaching: dict[int, dict[str, frozenset[int]]] = {}
    undefined: list[UndefinedRead] = []
    for statement in statements:
        snapshot: dict[str, frozenset[int]] = {}
        for name in sorted(statement.scalar_reads):
            if name not in defined_scalars:
                undefined.append(UndefinedRead(statement.index, name, "scalar"))
        for access in statement.reads:
            snapshot.setdefault(
                access.array, frozenset(array_defs.get(access.array, ()))
            )
            if access.array in array_params:
                continue
            if access.array in local_arrays:
                if access.array not in written_locals:
                    undefined.append(
                        UndefinedRead(
                            statement.index, access.array, "uninitialized-local"
                        )
                    )
                    written_locals.add(access.array)  # report once
                continue
            if access.array not in array_defs:
                undefined.append(UndefinedRead(statement.index, access.array, "array"))
        if snapshot:
            reaching[statement.index] = snapshot
        defined_scalars |= statement.scalar_defs
        for access in statement.writes:
            array_defs.setdefault(access.array, set()).add(statement.index)
            written_locals.add(access.array)

    live_out = frozenset(name for name in array_defs if name in array_params)

    return FunctionDataflow(
        function=func.name,
        tree=lower_function(func),
        loops=tuple(loops),
        statements=tuple(statements),
        params=tuple(p.name for p in func.params),
        array_params=array_params,
        scalar_params=scalar_params,
        local_arrays=frozenset(local_arrays),
        reaching=reaching,
        undefined_reads=tuple(undefined),
        live_out=live_out,
    )
