"""Dependence analysis over the dataflow facts.

Classifies every pair of conflicting array accesses (at least one a
write, same array, sharing a loop nest) into flow / anti / output
dependences with a *distance vector* over the common loops: each entry
is an exact iteration distance when the subscripts pin it down, or
``"*"`` (unknown) when they do not.  Non-affine subscripts, opaque
call arguments and symbolic strides all degrade to ``"*"`` — the
analysis is conservative, never unsound: a reported absence of
dependence is a proof, a ``"*"`` is an admission of ignorance.

Scalars are handled separately: a scalar read inside a loop nest whose
every read site is preceded (same loop body) by a definition is
*privatizable* and carries nothing; anything else (accumulators,
cross-loop temporaries) becomes an all-``"*"`` dependence.

The distance convention: a dependence ``src -> dst`` with distance
``d`` means iteration ``i`` of ``src`` and iteration ``i + d`` of
``dst`` touch the same element, with ``d`` lexicographically positive,
or ``d = 0`` and ``src`` textually before ``dst``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Union

from ..lang import ast
from .dataflow import (
    AffineExpr,
    ArrayAccess,
    FunctionDataflow,
    LoopDesc,
    Statement,
    analyze_dataflow,
)

__all__ = [
    "Dependence",
    "DependenceReport",
    "analyze_dependences",
    "analyze_program_dependences",
    "direction_vectors",
]

Delta = Union[int, str]  # int distance or "*" (unknown)

_INDEPENDENT = object()  # sentinel: subscripts can never collide


@dataclass(frozen=True)
class Dependence:
    """One dependence edge ``src -> dst`` over a common loop nest."""

    array: str
    kind: str  # "flow" | "anti" | "output" | "scalar"
    src: int  # statement index
    dst: int
    loop_ids: tuple[int, ...]  # common loops, outermost first
    loop_vars: tuple[str, ...]
    deltas: tuple[Delta, ...]

    @property
    def is_loop_independent(self) -> bool:
        return all(d == 0 for d in self.deltas)

    @property
    def carried_level(self) -> Optional[int]:
        """0-based index (into ``loop_ids``) of the outermost loop that
        may carry this dependence; ``None`` when loop-independent."""
        for level, delta in enumerate(self.deltas):
            if delta == "*" or delta != 0:
                return level
        return None

    @property
    def directions(self) -> tuple[str, ...]:
        out = []
        for delta in self.deltas:
            if delta == "*":
                out.append("*")
            elif delta == 0:
                out.append("=")
            elif isinstance(delta, int) and delta > 0:
                out.append("<")
            else:
                out.append(">")
        return tuple(out)

    def describe(self) -> str:
        vec = ", ".join(
            f"{var}:{'*' if d == '*' else d}"
            for var, d in zip(self.loop_vars, self.deltas)
        )
        scope = f" ({vec})" if vec else " (loop-independent)"
        return f"{self.kind} dependence on {self.array!r} S{self.src}->S{self.dst}{scope}"


def direction_vectors(dep: Dependence) -> list[tuple[str, ...]]:
    """All plausible direction vectors of *dep*: each ``"*"`` expands to
    ``{<,=,>}``, filtered to lexicographically non-negative vectors (a
    dependence cannot point backwards in time)."""
    choices: list[tuple[str, ...]] = []
    for delta in dep.deltas:
        if delta == "*":
            choices.append(("<", "=", ">"))
        elif delta == 0:
            choices.append(("=",))
        elif isinstance(delta, int) and delta > 0:
            choices.append(("<",))
        else:
            choices.append((">",))
    plausible = []
    for vector in itertools.product(*choices):
        ok = True
        for direction in vector:
            if direction == "<":
                break
            if direction == ">":
                ok = False
                break
        if ok:
            plausible.append(vector)
    return plausible


@dataclass
class DependenceReport:
    """All dependences of one function."""

    function: str
    dataflow: FunctionDataflow
    dependences: tuple[Dependence, ...]

    def carried_by(self, loop_index: int) -> list[Dependence]:
        """Dependences that the given loop may carry."""
        out = []
        for dep in self.dependences:
            if loop_index not in dep.loop_ids:
                continue
            level = dep.loop_ids.index(loop_index)
            carried = dep.carried_level
            if carried is not None and carried <= level and (
                dep.deltas[level] == "*" or carried == level
            ):
                out.append(dep)
        return out

    def between(self, src_loop: int, dst_loop: int) -> list[Dependence]:
        """Dependences from a statement inside *src_loop* to a statement
        inside *dst_loop* (loop bodies, including nested levels)."""
        flow = self.dataflow
        out = []
        for dep in self.dependences:
            src_loops = flow.statements[dep.src].loop_ids
            dst_loops = flow.statements[dep.dst].loop_ids
            if src_loop in src_loops and dst_loop in dst_loops:
                out.append(dep)
        return out

    def summary(self) -> dict[str, int]:
        counts = {"flow": 0, "anti": 0, "output": 0, "scalar": 0}
        carried = 0
        independent = 0
        unknown = 0
        for dep in self.dependences:
            counts[dep.kind] += 1
            if dep.is_loop_independent:
                independent += 1
            else:
                carried += 1
            if "*" in dep.deltas:
                unknown += 1
        counts.update(
            total=len(self.dependences),
            loop_carried=carried,
            loop_independent=independent,
            unknown_distance=unknown,
        )
        return counts


# -- pairwise subscript test -------------------------------------------


def _common_prefix(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
    out = []
    for x, y in zip(a, b):
        if x != y:
            break
        out.append(x)
    return tuple(out)


def _position_constraint(
    src_sub: AffineExpr,
    dst_sub: AffineExpr,
    common_vars: dict[str, LoopDesc],
):
    """Constraint one subscript position places on the distance vector.

    Returns ``_INDEPENDENT`` (no collision possible), ``None`` (no
    usable constraint — distances stay unknown), or ``(var, distance)``
    pinning one loop's iteration distance.

    Derivation: the position collides when ``src(i) = dst(i + d)``;
    with identical coefficients on every variable this reduces to
    ``sum(coeff(v_k) * dvar_k) = const(src) - const(dst)`` where
    ``dvar`` is the distance in induction-variable value space.
    """
    if not (src_sub.affine and dst_sub.affine):
        return None
    names = set(src_sub.variables) | set(dst_sub.variables)
    for name in names:
        if src_sub.coeff(name) != dst_sub.coeff(name):
            return None  # constraint depends on the iteration point
    constant = src_sub.constant - dst_sub.constant
    carriers = [
        name
        for name in names
        if name in common_vars and dst_sub.coeff(name) != 0
    ]
    free = [name for name in names if name not in common_vars]
    if free and carriers:
        return None  # a free (inner/unknown) variable absorbs anything
    if not carriers:
        if free:
            return None
        # Both subscripts constant in the common loops: collide iff the
        # constants match.
        return None if constant == 0 else _INDEPENDENT
    if len(carriers) > 1:
        return None  # coupled subscript (i+j): stay conservative
    var = carriers[0]
    coeff = dst_sub.coeff(var)
    if constant % coeff != 0:
        return _INDEPENDENT
    value_delta = constant // coeff
    loop = common_vars[var]
    if loop.step in (None, 0):
        return None
    if value_delta % loop.step != 0:
        return _INDEPENDENT  # distance not reachable with this stride
    return var, value_delta // loop.step


def _distance_vector(
    src: ArrayAccess,
    dst: ArrayAccess,
    common: tuple[LoopDesc, ...],
) -> Optional[tuple[Delta, ...]]:
    """Distance vector for ``src`` at iteration ``i`` and ``dst`` at
    ``i + d`` touching the same element; ``None`` when the accesses
    provably never collide."""
    deltas: dict[str, Delta] = {loop.var: "*" for loop in common}
    if src.opaque or dst.opaque:
        return tuple(deltas[loop.var] for loop in common)
    if len(src.subscripts) != len(dst.subscripts):
        # Rank mismatch: malformed program; stay conservative.
        return tuple(deltas[loop.var] for loop in common)
    common_vars = {loop.var: loop for loop in common if not loop.is_while}
    for src_sub, dst_sub in zip(src.subscripts, dst.subscripts):
        constraint = _position_constraint(src_sub, dst_sub, common_vars)
        if constraint is _INDEPENDENT:
            return None
        if constraint is None:
            continue
        var, distance = constraint
        known = deltas[var]
        if known != "*" and known != distance:
            return None  # two positions demand different distances
        deltas[var] = distance
    return tuple(deltas[loop.var] for loop in common)


def _plausible(deltas: tuple[Delta, ...], src: Statement, dst: Statement) -> bool:
    """True when the vector can be lexicographically positive, or is
    all-zero with *src* executing before *dst* at equal iterations."""
    for delta in deltas:
        if delta == "*":
            return True
        if isinstance(delta, int) and delta > 0:
            return True
        if isinstance(delta, int) and delta < 0:
            return False
    # all zeros: loop-independent; needs program order
    if src.index != dst.index:
        return src.order < dst.order
    # same statement at the same iteration: reads happen before the
    # write, so only read -> write (anti) order holds
    return True


# -- driver ------------------------------------------------------------


def _array_dependences(flow: FunctionDataflow) -> list[Dependence]:
    by_array: dict[str, list[tuple[Statement, ArrayAccess]]] = {}
    for statement, access in flow.accesses():
        by_array.setdefault(access.array, []).append((statement, access))
    deps: list[Dependence] = []
    for array in sorted(by_array):
        entries = by_array[array]
        for (stmt_a, acc_a), (stmt_b, acc_b) in itertools.combinations_with_replacement(
            entries, 2
        ):
            if stmt_a.index == stmt_b.index and acc_a is acc_b:
                # an access does not depend on itself at the same
                # iteration; carried self-dependences surface through
                # the ordered pairs below
                if not acc_a.is_write:
                    continue
            if not (acc_a.is_write or acc_b.is_write):
                continue
            ordered = [(stmt_a, acc_a, stmt_b, acc_b)]
            if not (stmt_a.index == stmt_b.index and acc_a is acc_b):
                ordered.append((stmt_b, acc_b, stmt_a, acc_a))
            for src_stmt, src_acc, dst_stmt, dst_acc in ordered:
                common_ids = _common_prefix(src_stmt.loop_ids, dst_stmt.loop_ids)
                common = tuple(flow.loops[i] for i in common_ids)
                deltas = _distance_vector(src_acc, dst_acc, common)
                if deltas is None:
                    continue
                if src_stmt.index == dst_stmt.index and src_acc is dst_acc:
                    # write vs itself across iterations: output dep
                    # needs a genuinely nonzero distance
                    if all(d == 0 for d in deltas):
                        continue
                if not _plausible(deltas, src_stmt, dst_stmt):
                    continue
                if src_stmt.index == dst_stmt.index and all(
                    d == 0 for d in deltas
                ):
                    # same statement, same iteration: the only real
                    # ordering is read-before-write (anti)
                    if not (not src_acc.is_write and dst_acc.is_write):
                        continue
                if src_acc.is_write and dst_acc.is_write:
                    kind = "output"
                elif src_acc.is_write:
                    kind = "flow"
                else:
                    kind = "anti"
                deps.append(
                    Dependence(
                        array=array,
                        kind=kind,
                        src=src_stmt.index,
                        dst=dst_stmt.index,
                        loop_ids=common_ids,
                        loop_vars=tuple(l.var for l in common),
                        deltas=deltas,
                    )
                )
    # deduplicate (identical edges can arise from symmetric pairs)
    unique = {}
    for dep in deps:
        key = (dep.array, dep.kind, dep.src, dep.dst, dep.deltas, dep.loop_ids)
        unique.setdefault(key, dep)
    return list(unique.values())


def _scalar_dependences(flow: FunctionDataflow) -> list[Dependence]:
    """Conservative dependences through scalar temporaries.

    A scalar whose every in-loop read is preceded, in the same loop
    body, by a definition is privatizable (each iteration is
    self-contained) and carries nothing.  Everything else — classic
    accumulators (``s = s + ...``), values flowing across loop
    boundaries — becomes an all-unknown dependence over the common
    loops of each (def, use) pair.
    """
    induction = {loop.var for loop in flow.loops}
    defs: dict[str, list[Statement]] = {}
    uses: dict[str, list[Statement]] = {}
    for statement in flow.statements:
        if statement.kind == "header":
            continue
        for name in statement.scalar_defs:
            if name not in induction:
                defs.setdefault(name, []).append(statement)
        for name in statement.scalar_reads:
            if name not in induction and name not in flow.scalar_params:
                uses.setdefault(name, []).append(statement)
    deps: list[Dependence] = []
    for name, read_sites in sorted(uses.items()):
        def_sites = defs.get(name, [])
        loop_reads = [s for s in read_sites if s.loop_ids]
        loop_defs = [s for s in def_sites if s.loop_ids]
        if not loop_reads and not loop_defs:
            continue  # straight-line scalar traffic: no loop semantics
        privatizable = bool(def_sites) and all(
            any(
                d.order < r.order and d.loop_ids == r.loop_ids
                for d in def_sites
            )
            for r in read_sites
        )
        if privatizable:
            continue
        for d in def_sites:
            for r in read_sites:
                common_ids = _common_prefix(d.loop_ids, r.loop_ids)
                if not common_ids and not (d.loop_ids or r.loop_ids):
                    continue
                deps.append(
                    Dependence(
                        array=name,
                        kind="scalar",
                        src=d.index,
                        dst=r.index,
                        loop_ids=common_ids,
                        loop_vars=tuple(flow.loops[i].var for i in common_ids),
                        deltas=tuple("*" for _ in common_ids),
                    )
                )
    unique = {}
    for dep in deps:
        key = (dep.array, dep.src, dep.dst, dep.loop_ids)
        unique.setdefault(key, dep)
    return list(unique.values())


def analyze_dependences(
    func: ast.FunctionDef, flow: Optional[FunctionDataflow] = None
) -> DependenceReport:
    """Full dependence report for one function."""
    if flow is None:
        flow = analyze_dataflow(func)
    deps = _array_dependences(flow) + _scalar_dependences(flow)
    deps.sort(key=lambda d: (d.src, d.dst, d.array, d.kind, d.deltas == ()))
    return DependenceReport(
        function=func.name, dataflow=flow, dependences=tuple(deps)
    )


def analyze_program_dependences(
    program: ast.Program,
) -> dict[str, DependenceReport]:
    """Dependence reports for every function in the program."""
    return {func.name: analyze_dependences(func) for func in program.functions}
