"""Program validation at the ingestion boundaries.

:class:`ProgramValidator` answers "is this program safe to hand to the
rest of the stack?" with structured evidence instead of a downstream
stack trace.  It runs at every boundary where untrusted source enters
the system — :func:`repro.api.codec.read_program`, the serve request
decoder, campaign cell admission — and splits findings into

* **errors** — the program will misbehave deterministically: parse
  failures, reads of names that are never defined, calls to unknown
  operators or with the wrong arity/kinds, provably out-of-bounds
  constant subscripts (the simulator *clamps* these, silently
  computing with the wrong element).
* **warnings** — the program is executable but degrades analysis or
  smells wrong: non-affine loop bounds, ``while`` loops, non-affine
  subscripts, reads of zero-initialized locals, operators that write
  no output, read/write sets that disagree with the graph builder's
  inference.

Validation never executes the program; everything is derived from the
:mod:`repro.analysis.dataflow` facts plus the operator graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..errors import LexError, LoweringError, ParseError, ReproError, ValidationError
from ..lang import ast, parse
from .dataflow import AffineExpr, FunctionDataflow, Statement, analyze_dataflow

__all__ = [
    "ProgramValidator",
    "ValidationIssue",
    "ValidationReport",
    "validate_program",
    "validate_or_raise",
]


@dataclass(frozen=True)
class ValidationIssue:
    """One finding, renderable as a single line."""

    severity: str  # "error" | "warning"
    code: str
    function: str
    message: str

    def describe(self) -> str:
        where = f" in {self.function!r}" if self.function else ""
        return f"{self.severity}[{self.code}]{where}: {self.message}"


@dataclass(frozen=True)
class ValidationReport:
    """All findings for one program."""

    issues: tuple[ValidationIssue, ...]
    functions: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def errors(self) -> tuple[ValidationIssue, ...]:
        return tuple(i for i in self.issues if i.severity == "error")

    @property
    def warnings(self) -> tuple[ValidationIssue, ...]:
        return tuple(i for i in self.issues if i.severity == "warning")

    def reasons(self) -> list[str]:
        """One line per *error* (the 400-body / exception payload)."""
        return [issue.describe() for issue in self.errors]

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "errors": [i.describe() for i in self.errors],
            "warnings": [i.describe() for i in self.warnings],
        }

    def raise_if_invalid(self, context: str = "") -> "ValidationReport":
        if self.ok:
            return self
        raise ValidationError(
            ("invalid program" if not context else f"invalid program ({context})"),
            reasons=self.reasons(),
        )


class ProgramValidator:
    """Static admission check for program source.

    ``max_issues`` bounds the report so a pathological program cannot
    flood a serve response; the cap is per severity.
    """

    def __init__(self, max_issues: int = 32) -> None:
        self.max_issues = max_issues

    # -- entry point -----------------------------------------------------

    def validate(self, program: Union[str, ast.Program]) -> ValidationReport:
        issues: list[ValidationIssue] = []
        if isinstance(program, str):
            try:
                program = parse(program)
            except (LexError, ParseError) as exc:
                return ValidationReport(
                    issues=(ValidationIssue("error", "parse", "", str(exc)),)
                )
        if not program.functions:
            return ValidationReport(
                issues=(
                    ValidationIssue("error", "empty", "", "program has no functions"),
                )
            )
        defined = {func.name: func for func in program.functions}
        flows: dict[str, FunctionDataflow] = {}
        for func in program.functions:
            flows[func.name] = analyze_dataflow(func)
        for func in program.functions:
            self._check_function(func, flows[func.name], issues)
            self._check_calls(func, defined, issues)
        self._check_graph(program, defined, issues)
        return ValidationReport(
            issues=self._capped(issues),
            functions=tuple(defined),
        )

    def _capped(self, issues: list[ValidationIssue]) -> tuple[ValidationIssue, ...]:
        errors = [i for i in issues if i.severity == "error"][: self.max_issues]
        warnings = [i for i in issues if i.severity == "warning"][: self.max_issues]
        return tuple(errors + warnings)

    # -- per-function checks ---------------------------------------------

    def _check_function(
        self,
        func: ast.FunctionDef,
        flow: FunctionDataflow,
        issues: list[ValidationIssue],
    ) -> None:
        for read in flow.undefined_reads:
            statement = flow.statements[read.statement]
            if read.kind == "uninitialized-local":
                issues.append(
                    ValidationIssue(
                        "warning",
                        "uninitialized-local",
                        func.name,
                        f"{read.describe()} (S{read.statement}, "
                        f"{statement.text or statement.kind}); locals are "
                        "zero-filled, so this reads 0",
                    )
                )
            else:
                issues.append(
                    ValidationIssue(
                        "error",
                        "undefined-read",
                        func.name,
                        f"{read.describe()} (S{read.statement}, "
                        f"{statement.text or statement.kind})",
                    )
                )
        for loop in flow.loops:
            if loop.is_while:
                issues.append(
                    ValidationIssue(
                        "warning",
                        "while-loop",
                        func.name,
                        "while loop defeats static loop analysis "
                        "(trip count unknown)",
                    )
                )
            elif not loop.is_canonical or (
                loop.bound_symbol is not None
                and loop.bound_symbol.startswith("<expr:")
            ):
                issues.append(
                    ValidationIssue(
                        "warning",
                        "non-affine-bound",
                        func.name,
                        f"loop {loop.label} has a non-canonical header; "
                        "dependence distances degrade to unknown",
                    )
                )
        ranks = self._declared_ranks(func)
        dims = self._declared_dims(func)
        flagged_nonaffine: set[tuple[int, str]] = set()
        for statement in flow.statements:
            for access in statement.reads + statement.writes:
                if access.opaque:
                    continue
                rank = ranks.get(access.array)
                if rank is not None and len(access.subscripts) != rank:
                    issues.append(
                        ValidationIssue(
                            "error",
                            "rank-mismatch",
                            func.name,
                            f"{access.array!r} is declared rank {rank} but "
                            f"indexed with {len(access.subscripts)} "
                            f"subscript(s) at S{statement.index} "
                            f"({statement.text or statement.kind})",
                        )
                    )
                    continue
                for position, subscript in enumerate(access.subscripts):
                    if not subscript.affine:
                        key = (statement.index, access.array)
                        if key not in flagged_nonaffine:
                            flagged_nonaffine.add(key)
                            issues.append(
                                ValidationIssue(
                                    "warning",
                                    "non-affine-subscript",
                                    func.name,
                                    f"subscript {position} of {access.array!r} "
                                    f"at S{statement.index} is not affine; "
                                    "dependence analysis treats it as unknown",
                                )
                            )
                        continue
                    self._check_subscript(
                        func, flow, statement, access.array, position,
                        subscript, dims, issues,
                    )

    @staticmethod
    def _declared_ranks(func: ast.FunctionDef) -> dict[str, int]:
        ranks = {
            p.name: p.type.rank for p in func.params if p.type.is_array
        }
        for node in ast.walk(func.body):
            if isinstance(node, ast.Decl) and node.type.is_array:
                ranks[node.name] = node.type.rank
        return ranks

    @staticmethod
    def _declared_dims(func: ast.FunctionDef) -> dict[str, list[Optional[int]]]:
        def sizes(t: ast.Type) -> list[Optional[int]]:
            return [
                d.value if isinstance(d, ast.IntLit) else None for d in t.dims
            ]

        dims = {p.name: sizes(p.type) for p in func.params if p.type.is_array}
        for node in ast.walk(func.body):
            if isinstance(node, ast.Decl) and node.type.is_array:
                dims[node.name] = sizes(node.type)
        return dims

    def _check_subscript(
        self,
        func: ast.FunctionDef,
        flow: FunctionDataflow,
        statement: Statement,
        array: str,
        position: int,
        subscript: AffineExpr,
        dims: dict[str, list[Optional[int]]],
        issues: list[ValidationIssue],
    ) -> None:
        sizes = dims.get(array)
        size = sizes[position] if sizes and position < len(sizes) else None
        if size is None:
            return
        bounds = self._subscript_range(flow, statement, subscript)
        if bounds is None:
            return
        lo, hi = bounds
        if hi < 0 or lo >= size:
            # Every execution lands outside the array.
            issues.append(
                ValidationIssue(
                    "error" if not statement.guarded else "warning",
                    "oob-subscript",
                    func.name,
                    f"subscript {position} of {array!r} at S{statement.index} "
                    f"({statement.text or statement.kind}) is always out of "
                    f"bounds: value range [{lo}, {hi}] vs size {size} "
                    "(the simulator clamps, silently using the wrong element)",
                )
            )
        elif (lo < 0 or hi >= size) and subscript.is_constant:
            issues.append(
                ValidationIssue(
                    "error" if not statement.guarded else "warning",
                    "oob-subscript",
                    func.name,
                    f"constant subscript {subscript} of {array!r} at "
                    f"S{statement.index} is out of bounds for size {size}",
                )
            )
        elif lo < 0 or hi >= size:
            issues.append(
                ValidationIssue(
                    "warning",
                    "oob-subscript",
                    func.name,
                    f"subscript {position} of {array!r} at S{statement.index} "
                    f"can leave [0, {size}): value range [{lo}, {hi}]",
                )
            )

    @staticmethod
    def _subscript_range(
        flow: FunctionDataflow, statement: Statement, subscript: AffineExpr
    ) -> Optional[tuple[int, int]]:
        """Min/max value of an affine subscript over the statement's
        static loop ranges; ``None`` when any variable is unbounded."""
        loops = {flow.loops[i].var: flow.loops[i] for i in statement.loop_ids}
        lo = hi = subscript.constant
        for name, coeff in subscript.terms:
            loop = loops.get(name)
            value_range = loop.value_range() if loop is not None else None
            if value_range is None:
                return None
            vlo, vhi = value_range
            if coeff >= 0:
                lo += coeff * vlo
                hi += coeff * vhi
            else:
                lo += coeff * vhi
                hi += coeff * vlo
        return lo, hi

    # -- call-site checks ------------------------------------------------

    def _check_calls(
        self,
        func: ast.FunctionDef,
        defined: dict[str, ast.FunctionDef],
        issues: list[ValidationIssue],
    ) -> None:
        arrays = {p.name for p in func.params if p.type.is_array}
        scalars = {p.name for p in func.params if not p.type.is_array}
        for node in ast.walk(func.body):
            if isinstance(node, ast.Decl):
                (arrays if node.type.is_array else scalars).add(node.name)
        for call in ast.calls_in(func.body):
            callee = defined.get(call.name)
            if callee is None:
                issues.append(
                    ValidationIssue(
                        "error",
                        "unknown-call",
                        func.name,
                        f"call to unknown function {call.name!r} "
                        "(the simulator has no builtins)",
                    )
                )
                continue
            if len(call.args) != len(callee.params):
                issues.append(
                    ValidationIssue(
                        "error",
                        "call-arity",
                        func.name,
                        f"{call.name!r} expects {len(callee.params)} "
                        f"argument(s), got {len(call.args)}",
                    )
                )
                continue
            for param, arg in zip(callee.params, call.args):
                if param.type.is_array:
                    if isinstance(arg, ast.Var) and arg.name in arrays:
                        continue
                    issues.append(
                        ValidationIssue(
                            "error",
                            "arg-kind",
                            func.name,
                            f"argument {param.name!r} of {call.name!r} must "
                            "be an array, got "
                            + (
                                f"scalar {arg.name!r}"
                                if isinstance(arg, ast.Var)
                                else "an expression"
                            ),
                        )
                    )
                elif isinstance(arg, ast.Var) and arg.name in arrays:
                    issues.append(
                        ValidationIssue(
                            "error",
                            "arg-kind",
                            func.name,
                            f"argument {param.name!r} of {call.name!r} must "
                            f"be a scalar, got array {arg.name!r}",
                        )
                    )

    # -- operator-graph cross-check --------------------------------------

    def _check_graph(
        self,
        program: ast.Program,
        defined: dict[str, ast.FunctionDef],
        issues: list[ValidationIssue],
    ) -> None:
        from ..ir.graph import build_dataflow_graph

        try:
            graph = build_dataflow_graph(program)
        except (ReproError, LoweringError):
            return  # call errors are already reported per function
        for call in graph.calls:
            callee = defined.get(call.name)
            if callee is None:
                continue
            if not call.writes:
                issues.append(
                    ValidationIssue(
                        "warning",
                        "operator-no-output",
                        graph.graph_function,
                        f"operator {call.name!r} (call #{call.index}) writes "
                        "no array: it cannot feed the dataflow graph",
                    )
                )
            written_params = {
                node.target.base.name
                for node in ast.walk(callee.body)
                if isinstance(node, ast.Assign) and isinstance(node.target, ast.Index)
            }
            if len(callee.params) == len(call.args):
                expected = {
                    arg
                    for param, arg in zip(
                        (p.name for p in callee.params), call.args
                    )
                    if param in written_params and arg != "<expr>"
                }
                if expected != set(call.writes):
                    issues.append(
                        ValidationIssue(
                            "warning",
                            "operator-report-mismatch",
                            graph.graph_function,
                            f"operator {call.name!r} (call #{call.index}): "
                            f"graph inference reports writes {sorted(call.writes)} "
                            f"but the callee writes {sorted(expected)}",
                        )
                    )


def validate_program(program: Union[str, ast.Program]) -> ValidationReport:
    """Validate with a default-configured :class:`ProgramValidator`."""
    return ProgramValidator().validate(program)


def validate_or_raise(
    program: Union[str, ast.Program], context: str = ""
) -> ValidationReport:
    """Validate and raise :class:`ValidationError` on any error."""
    return validate_program(program).raise_if_invalid(context)
