"""The unified bench harness: one registry over ``scripts/bench_*.py``.

Every benchmark in the repo registers a :class:`BenchSuite` — its
declared metrics (name, unit, higher/lower-is-better direction,
portability across hosts), its hard gates, and one measurement
callable — instead of hand-rolling argparse, artifact writing and gate
exits.  The harness owns everything around the measurement:

* the shared CLI preamble (``--smoke``, ``--tier``, ``--out``,
  per-suite extra options) that used to be copy-pasted across the six
  scripts;
* artifact writing (``BENCH_<suite>.json`` at the repo root — scripts
  never ``json.dump`` their own metrics, enforced by lint REPRO007);
* appending every declared metric to the :mod:`repro.obs.history`
  ledger, stamped with git sha, tier, mode and host fingerprint;
* running the :mod:`repro.obs.regress` sentinel over the fresh values
  and exiting non-zero on confirmed regressions or failed gates.

Entry points: ``python -m repro bench run [--suite NAME] [--smoke]``
runs through :func:`discover_suites` + :func:`execute`;
``python scripts/bench_<name>.py`` still works because each script's
``__main__`` block delegates to :func:`bench_main`.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from ..errors import ObsError
from .history import BenchLedger, LedgerEntry, host_fingerprint
from .regress import Verdict, check_run, confirmed_regressions

TIERS = ("0.5B", "1B", "8B")

#: Environment override for the repo root (tests point it at a tmpdir).
ROOT_ENV = "REPRO_REPO_ROOT"
LEDGER_NAME = "BENCH_HISTORY.jsonl"


@dataclass(frozen=True)
class Metric:
    """One number a suite promises to report on every run.

    ``portable`` marks values that are comparable across machines
    (speedup ratios, overhead percentages, deterministic counts); the
    sentinel gates non-portable metrics (absolute throughputs,
    latencies) only against same-host history.  ``tolerance`` is the
    relative slack floor of the regression band.
    """

    name: str
    unit: str
    direction: str  # "higher" | "lower" is better
    portable: bool = False
    tolerance: float = 0.15
    description: str = ""

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower"):
            raise ObsError(
                f"metric {self.name!r}: direction must be 'higher' or "
                f"'lower', got {self.direction!r}"
            )
        if not (0.0 < self.tolerance < 10.0):
            raise ObsError(
                f"metric {self.name!r}: tolerance must be in (0, 10), "
                f"got {self.tolerance!r}"
            )


@dataclass(frozen=True)
class Option:
    """One extra CLI flag a suite accepts beyond the shared preamble."""

    flag: str  # e.g. "--repeats"
    kind: type = int
    default: Optional[object] = None  # None = the suite picks per mode
    help: str = ""

    @property
    def dest(self) -> str:
        return self.flag.lstrip("-").replace("-", "_")


@dataclass
class BenchConfig:
    """Resolved inputs of one suite run."""

    smoke: bool = False
    tier: str = ""
    options: dict = field(default_factory=dict)

    def opt(self, name: str, default=None):
        """A suite option by dest name; ``default`` when unset/None."""
        value = self.options.get(name)
        return default if value is None else value


@dataclass
class BenchReport:
    """What a measurement callable returns.

    ``values`` must cover every metric the suite declared; ``payload``
    is the rest of the artifact body (configuration echo, detail
    tables); ``gates`` are hard pass/fail checks (each a dict carrying
    at least ``"passed"``) — the parity gates, not the statistical
    regression gate, which the harness runs separately.
    """

    values: dict = field(default_factory=dict)
    payload: dict = field(default_factory=dict)
    gates: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(gate.get("passed") for gate in self.gates.values())

    def failed_gates(self) -> list[str]:
        return [
            name for name, gate in self.gates.items() if not gate.get("passed")
        ]


@dataclass(frozen=True)
class BenchSuite:
    """One registered benchmark."""

    name: str
    description: str
    metrics: tuple[Metric, ...]
    run: Callable[[BenchConfig], BenchReport]
    options: tuple[Option, ...] = ()
    tiers: tuple[str, ...] = ()  # empty = the suite has no tier axis
    default_tier: str = ""
    smoke_tier: str = ""  # tier used under --smoke (defaults to default_tier)

    @property
    def artifact(self) -> str:
        return f"BENCH_{self.name}.json"

    def metric(self, name: str) -> Metric:
        for metric in self.metrics:
            if metric.name == name:
                return metric
        raise ObsError(f"suite {self.name!r} declares no metric {name!r}")

    def resolve_tier(self, config: BenchConfig) -> str:
        if not self.tiers:
            return ""
        if config.tier:
            return config.tier
        if config.smoke and self.smoke_tier:
            return self.smoke_tier
        return self.default_tier or self.tiers[0]


_REGISTRY: dict[str, BenchSuite] = {}


def register_suite(suite: BenchSuite) -> BenchSuite:
    """Register (or re-register, e.g. on module reload) a suite."""
    if not suite.metrics:
        raise ObsError(f"suite {suite.name!r} declares no metrics")
    _REGISTRY[suite.name] = suite
    return suite


def suite(name: str) -> BenchSuite:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none registered)"
        raise ObsError(f"unknown bench suite {name!r}; known: {known}") from None


def suites() -> list[BenchSuite]:
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def repo_root() -> Path:
    """The repository root (env ``REPRO_REPO_ROOT`` overrides, so tests
    and out-of-tree checkouts can redirect artifacts and the ledger)."""
    override = os.environ.get(ROOT_ENV)
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3]


def ledger_path() -> str:
    return str(repo_root() / LEDGER_NAME)


def discover_suites(scripts_dir: Optional[str] = None) -> list[str]:
    """Import every ``scripts/bench_*.py`` so they self-register.

    Scripts are imported under ``repro_bench_<stem>`` module names; an
    already-imported script is not re-imported, so repeated discovery is
    idempotent.  Returns the sorted registered suite names.
    """
    # Discovery walks the *source tree's* scripts/, not repo_root():
    # REPRO_REPO_ROOT redirects artifacts and the ledger, but the bench
    # scripts live next to this package wherever it is checked out.
    if scripts_dir:
        directory = Path(scripts_dir)
    else:
        directory = Path(__file__).resolve().parents[3] / "scripts"
    if directory.is_dir():
        for path in sorted(directory.glob("bench_*.py")):
            module_name = f"repro_bench_{path.stem}"
            if module_name in sys.modules:
                continue
            spec = importlib.util.spec_from_file_location(module_name, path)
            if spec is None or spec.loader is None:  # pragma: no cover
                continue
            module = importlib.util.module_from_spec(spec)
            sys.modules[module_name] = module
            try:
                spec.loader.exec_module(module)
            except Exception as exc:
                del sys.modules[module_name]
                raise ObsError(f"cannot import bench script {path}: {exc}") from exc
    return sorted(_REGISTRY)


def git_sha() -> str:
    """The repo's HEAD sha (12 hex), or ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root()),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip()[:12] or "unknown"


# -- execution ---------------------------------------------------------------


@dataclass
class ExecOutcome:
    """Everything one harness execution produced."""

    suite: BenchSuite
    report: BenchReport
    tier: str
    mode: str
    artifact_path: str = ""
    entries: list[LedgerEntry] = field(default_factory=list)
    verdicts: list[Verdict] = field(default_factory=list)

    @property
    def regressions(self) -> list[Verdict]:
        return confirmed_regressions(self.verdicts)

    @property
    def exit_code(self) -> int:
        if not self.report.passed:
            return 1
        if self.regressions:
            return 1
        return 0


def execute(
    name: str,
    config: BenchConfig,
    *,
    ledger: Optional[str] = None,
    check: bool = True,
    out: Optional[str] = None,
) -> ExecOutcome:
    """Run one suite end to end: measure, write the artifact, append
    the ledger, run the sentinel.

    ``ledger=None`` uses the repo's ``BENCH_HISTORY.jsonl``; pass ``""``
    to skip the ledger (and with it the sentinel).  Failed hard gates
    skip the ledger append — garbage from a parity-broken run must not
    become someone's baseline.
    """
    bench_suite = suite(name)
    tier = bench_suite.resolve_tier(config)
    config = BenchConfig(smoke=config.smoke, tier=tier, options=dict(config.options))
    mode = "smoke" if config.smoke else "full"
    report = bench_suite.run(config)

    missing = [
        metric.name
        for metric in bench_suite.metrics
        if metric.name not in report.values
    ]
    if missing:
        raise ObsError(
            f"suite {name!r} did not report declared metric(s): "
            + ", ".join(missing)
        )

    outcome = ExecOutcome(suite=bench_suite, report=report, tier=tier, mode=mode)

    artifact_path = out if out else str(repo_root() / bench_suite.artifact)
    document = {
        "bench": name,
        "mode": mode,
        "passed": report.passed,
        "metrics": {
            metric.name: report.values[metric.name]
            for metric in bench_suite.metrics
        },
    }
    if tier:
        document["tier"] = tier
    document.update(report.payload)
    if report.gates:
        document["gates"] = report.gates
    with open(artifact_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    outcome.artifact_path = artifact_path

    if ledger == "" or not report.passed:
        return outcome
    ledger_file = BenchLedger(ledger if ledger else ledger_path())
    host = host_fingerprint()
    if check:
        outcome.verdicts = check_run(
            bench_suite, report.values, ledger_file, tier=tier, mode=mode, host=host
        )
    run_index = ledger_file.next_run(name, mode)
    sha = git_sha()
    outcome.entries = [
        LedgerEntry(
            suite=name,
            metric=metric.name,
            value=float(report.values[metric.name]),
            unit=metric.unit,
            direction=metric.direction,
            mode=mode,
            tier=tier,
            sha=sha,
            host=host,
            run=run_index,
        )
        for metric in bench_suite.metrics
    ]
    ledger_file.append(outcome.entries)
    return outcome


def _print_outcome(outcome: ExecOutcome, stream=None) -> None:
    stream = stream if stream is not None else sys.stdout
    report = outcome.report
    print(
        json.dumps(
            {
                "bench": outcome.suite.name,
                "mode": outcome.mode,
                "metrics": {
                    m.name: report.values[m.name] for m in outcome.suite.metrics
                },
                "gates": {
                    gate: bool(detail.get("passed"))
                    for gate, detail in report.gates.items()
                },
            },
            indent=2,
            sort_keys=True,
        ),
        file=stream,
    )
    for verdict in outcome.verdicts:
        print(f"  sentinel: {verdict.describe()}", file=stream)
    if not report.passed:
        print(
            f"FAIL: {outcome.suite.name} gates failed: "
            + ", ".join(report.failed_gates()),
            file=sys.stderr,
        )
    for verdict in outcome.regressions:
        print(
            f"REGRESSION CONFIRMED: {verdict.describe()}", file=sys.stderr
        )


def build_suite_parser(bench_suite: BenchSuite) -> argparse.ArgumentParser:
    """The shared preamble every bench script used to hand-roll."""
    parser = argparse.ArgumentParser(
        prog=f"bench_{bench_suite.name}", description=bench_suite.description
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small iteration counts for the CI lane",
    )
    if bench_suite.tiers:
        parser.add_argument(
            "--tier", default=None, choices=list(bench_suite.tiers),
            help=f"model tier (default {bench_suite.default_tier or bench_suite.tiers[0]})",
        )
    parser.add_argument(
        "--out", default=None,
        help=f"artifact path (default <repo>/{bench_suite.artifact})",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="FILE",
        help=f"bench history ledger (default <repo>/{LEDGER_NAME})",
    )
    parser.add_argument(
        "--no-ledger", action="store_true",
        help="do not append this run to the history ledger",
    )
    parser.add_argument(
        "--no-regress", action="store_true",
        help="skip the regression sentinel (the ledger still appends)",
    )
    for option in bench_suite.options:
        parser.add_argument(
            option.flag, type=option.kind, default=option.default,
            help=option.help,
        )
    return parser


def bench_main(name: str, argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for one script's ``__main__`` block."""
    bench_suite = suite(name)
    args = build_suite_parser(bench_suite).parse_args(argv)
    config = BenchConfig(
        smoke=args.smoke,
        tier=getattr(args, "tier", None) or "",
        options={
            option.dest: getattr(args, option.dest)
            for option in bench_suite.options
        },
    )
    try:
        outcome = execute(
            name,
            config,
            ledger="" if args.no_ledger else args.ledger,
            check=not args.no_regress,
            out=args.out,
        )
    except ObsError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    _print_outcome(outcome)
    return outcome.exit_code
