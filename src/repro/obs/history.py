"""The continuous-benchmarking ledger: ``BENCH_HISTORY.jsonl``.

An append-only JSONL file holding one line per *metric observation* —
a suite run that reports five metrics appends five lines.  Entries are
schema-versioned in the :mod:`repro.api.codec` style (every line
carries ``"schema"``; a mismatch raises loudly instead of degrading
silently) and keyed by suite / metric / git sha / tier / mode, so the
regression sentinel can select a comparable trajectory.

Like the campaign journal, the ledger body is **timestamp-free**
(REPRO004/REPRO006 conventions): position in the file plus the
per-suite ``run`` counter is the time axis, and the git ``sha`` anchors
an observation to a code state.  A ``host`` fingerprint (stable hash of
the machine's hardware identity) lets the sentinel gate absolute
timings only against same-host history while ratio-style metrics
(speedups, overhead percentages, counts) compare anywhere.

Durability mirrors the campaign journal: lines are written compact with
sorted keys, and a truncated *trailing* line — the write in flight when
a run was killed — is dropped on read; corruption anywhere else raises.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import ObsError

HISTORY_SCHEMA_VERSION = 1

DIRECTIONS = ("higher", "lower")


def host_fingerprint() -> str:
    """A stable 12-hex identity for this machine (never reversible to a
    hostname in the ledger; used only for same-host series selection)."""
    raw = "|".join(
        (
            platform.machine(),
            platform.system(),
            str(os.cpu_count() or 0),
            platform.node(),
        )
    )
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class LedgerEntry:
    """One metric observation of one bench run."""

    suite: str
    metric: str
    value: float
    unit: str
    direction: str  # "higher" | "lower" is better
    mode: str  # "smoke" | "full" | "campaign"
    tier: str = ""  # model tier when the suite has one, else ""
    sha: str = "unknown"
    host: str = ""
    run: int = 0  # per-(suite, mode) sequence number, 1-based
    schema: int = HISTORY_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ObsError(
                f"ledger entry direction must be one of {DIRECTIONS}, "
                f"got {self.direction!r}"
            )

    def as_dict(self) -> dict:
        return {
            "schema": self.schema,
            "suite": self.suite,
            "metric": self.metric,
            "value": self.value,
            "unit": self.unit,
            "direction": self.direction,
            "mode": self.mode,
            "tier": self.tier,
            "sha": self.sha,
            "host": self.host,
            "run": self.run,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LedgerEntry":
        schema = payload.get("schema")
        if schema != HISTORY_SCHEMA_VERSION:
            raise ObsError(
                f"ledger entry has schema version {schema!r}; this build "
                f"reads version {HISTORY_SCHEMA_VERSION} — regenerate the "
                "ledger or upgrade (refusing to guess at field meanings)"
            )
        try:
            return cls(
                suite=str(payload["suite"]),
                metric=str(payload["metric"]),
                value=float(payload["value"]),
                unit=str(payload.get("unit", "")),
                direction=str(payload["direction"]),
                mode=str(payload.get("mode", "full")),
                tier=str(payload.get("tier", "")),
                sha=str(payload.get("sha", "unknown")),
                host=str(payload.get("host", "")),
                run=int(payload.get("run", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ObsError(f"malformed ledger entry {payload!r}: {exc}") from None


class BenchLedger:
    """Reader/appender for one ledger file.

    The file may not exist yet (``read()`` returns ``[]``); appends
    create it.  All writes go through :meth:`append`, which assigns the
    per-(suite, mode) ``run`` counter from the existing contents so
    concurrent histories interleave without clashing sequence numbers.
    """

    def __init__(self, path: str) -> None:
        if not path:
            raise ObsError("BenchLedger needs a file path")
        self.path = path

    # -- reading ---------------------------------------------------------

    def read(self) -> list[LedgerEntry]:
        """Every entry, in append order.  A truncated trailing line is
        dropped (the kill-mid-write case); damage anywhere else raises."""
        if not os.path.exists(self.path):
            return []
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        entries: list[LedgerEntry] = []
        for index, line in enumerate(lines):
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    break  # the write in flight when the run was killed
                raise ObsError(
                    f"{self.path}:{index + 1}: unreadable ledger line "
                    "(not the trailing one, so this is corruption, not a "
                    "kill mid-write)"
                ) from None
            if not isinstance(payload, dict):
                raise ObsError(
                    f"{self.path}:{index + 1}: ledger line is not an object"
                )
            entries.append(LedgerEntry.from_dict(payload))
        return entries

    def entries(
        self,
        suite: Optional[str] = None,
        metric: Optional[str] = None,
        tier: Optional[str] = None,
        mode: Optional[str] = None,
        host: Optional[str] = None,
    ) -> list[LedgerEntry]:
        """Filtered view; ``None`` filters match everything."""
        out = []
        for entry in self.read():
            if suite is not None and entry.suite != suite:
                continue
            if metric is not None and entry.metric != metric:
                continue
            if tier is not None and entry.tier != tier:
                continue
            if mode is not None and entry.mode != mode:
                continue
            if host is not None and entry.host != host:
                continue
            out.append(entry)
        return out

    def series(
        self,
        suite: str,
        metric: str,
        tier: Optional[str] = None,
        mode: Optional[str] = None,
        host: Optional[str] = None,
    ) -> list[LedgerEntry]:
        """The trajectory of one metric, ordered oldest → newest."""
        return self.entries(
            suite=suite, metric=metric, tier=tier, mode=mode, host=host
        )

    def suites(self) -> list[str]:
        return sorted({entry.suite for entry in self.read()})

    def metrics(self, suite: str) -> list[str]:
        return sorted(
            {entry.metric for entry in self.read() if entry.suite == suite}
        )

    # -- writing ---------------------------------------------------------

    def next_run(self, suite: str, mode: str) -> int:
        """The sequence number the next run of (suite, mode) gets."""
        newest = 0
        for entry in self.read():
            if entry.suite == suite and entry.mode == mode:
                newest = max(newest, entry.run)
        return newest + 1

    def append(self, new_entries: list[LedgerEntry]) -> int:
        """Append entries verbatim; returns the count written.

        Callers are expected to have stamped ``run`` (usually via
        :meth:`next_run`); the ledger never rewrites history.
        """
        if not new_entries:
            return 0
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            for entry in new_entries:
                handle.write(
                    json.dumps(entry.as_dict(), sort_keys=True) + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        return len(new_entries)

    def __iter__(self) -> Iterator[LedgerEntry]:
        return iter(self.read())


def render_trend(values: list[float], width: int = 40) -> str:
    """A terminal sparkline for ``bench trend`` (pure ASCII fallback
    characters are avoided deliberately: block glyphs read better)."""
    if not values:
        return "(no data)"
    blocks = "▁▂▃▄▅▆▇█"
    tail = values[-width:]
    low, high = min(tail), max(tail)
    if high == low:
        return blocks[3] * len(tail)
    out = []
    for value in tail:
        slot = int((value - low) / (high - low) * (len(blocks) - 1))
        out.append(blocks[slot])
    return "".join(out)
