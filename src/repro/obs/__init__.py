"""repro.obs — continuous benchmarking and resource observability.

Layers on :mod:`repro.telemetry` (point-in-time metrics/traces) to make
performance *trajectories* first-class:

* :mod:`repro.obs.bench` — one registry over the ``scripts/bench_*.py``
  suites (declared metrics, units, directions, gates) plus the shared
  harness that runs them (``python -m repro bench run``);
* :mod:`repro.obs.history` — the append-only, schema-versioned
  ``BENCH_HISTORY.jsonl`` ledger every run appends to;
* :mod:`repro.obs.regress` — the statistical regression sentinel
  (rolling-median/MAD baseline + CUSUM change-point scan) that gates
  CI on confirmed regressions;
* :mod:`repro.obs.resource` — the sampling profiler that attributes
  CPU/peak-memory to currently-open telemetry spans.
"""

from .bench import (
    BenchConfig,
    BenchReport,
    BenchSuite,
    Metric,
    Option,
    bench_main,
    discover_suites,
    execute,
    register_suite,
    suite,
    suites,
)
from .history import (
    HISTORY_SCHEMA_VERSION,
    BenchLedger,
    LedgerEntry,
    host_fingerprint,
    render_trend,
)
from .regress import (
    Verdict,
    check_metric,
    check_run,
    confirmed_regressions,
    cusum_change_point,
)
from .resource import (
    ResourceProfiler,
    process_snapshot,
    profile_window,
    profiler_active,
)

__all__ = [
    "BenchConfig",
    "BenchReport",
    "BenchSuite",
    "Metric",
    "Option",
    "bench_main",
    "discover_suites",
    "execute",
    "register_suite",
    "suite",
    "suites",
    "HISTORY_SCHEMA_VERSION",
    "BenchLedger",
    "LedgerEntry",
    "host_fingerprint",
    "render_trend",
    "Verdict",
    "check_metric",
    "check_run",
    "confirmed_regressions",
    "cusum_change_point",
    "ResourceProfiler",
    "process_snapshot",
    "profile_window",
    "profiler_active",
]
