"""The regression sentinel: statistical gating of bench trajectories.

Given a fresh run's metric values and the :mod:`repro.obs.history`
ledger, the sentinel renders one structured :class:`Verdict` per
declared metric:

* the **baseline** is the rolling median of the last ``WINDOW``
  comparable observations (same suite / metric / tier / mode, and same
  host for non-portable metrics), which resists the single-outlier
  contamination a mean-based baseline suffers;
* the **threshold** is a MAD band (median absolute deviation, scaled by
  the 1.4826 normal-consistency constant) with a per-metric relative
  tolerance floor, so deterministic metrics (counts, exact ratios) with
  zero spread still get a sane tolerance instead of flagging on any
  epsilon;
* a **CUSUM change-point scan** runs over the whole trajectory (in the
  spirit of the Z-process change-point method of Negri & Nishiyama):
  cumulative excursions beyond ``k·σ`` accumulate, and crossing ``h·σ``
  marks the first index where the series' level shifted.  The scan is
  *informational* — it cites where a drift began — while the
  median/MAD comparison is what confirms a regression.

Metrics declare a direction (``higher``/``lower`` is better), so an
out-of-band move in the *good* direction reports ``improved``, never
fails.  Fewer than ``MIN_HISTORY`` comparable points reports
``insufficient_history`` and passes: the sentinel arms itself as the
ledger grows instead of blocking young repositories.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from .history import BenchLedger, LedgerEntry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .bench import BenchSuite, Metric

#: Comparable observations required before the sentinel gates a metric.
MIN_HISTORY = 4
#: Rolling window the baseline median / MAD band is computed over.
WINDOW = 8
#: MAD multiplier of the noise band (≈3σ under normal noise).
MAD_K = 3.0
#: Normal-consistency constant: MAD·1.4826 estimates σ.
MAD_SIGMA = 1.4826
#: CUSUM drift allowance and alarm level, in σ units.
CUSUM_K = 0.5
CUSUM_H = 5.0

_GOOD_STATUSES = ("ok", "improved", "insufficient_history")


@dataclass(frozen=True)
class Verdict:
    """The sentinel's ruling on one metric of one run."""

    suite: str
    metric: str
    status: str  # ok | regression | improved | insufficient_history
    value: float
    direction: str
    baseline: Optional[float] = None
    threshold: Optional[float] = None
    window: int = 0
    change_point: Optional[int] = None
    cited: tuple[dict, ...] = field(default_factory=tuple)
    unit: str = ""

    @property
    def passed(self) -> bool:
        return self.status in _GOOD_STATUSES

    def as_dict(self) -> dict:
        out = {
            "suite": self.suite,
            "metric": self.metric,
            "status": self.status,
            "value": self.value,
            "direction": self.direction,
            "window": self.window,
        }
        if self.baseline is not None:
            out["baseline"] = self.baseline
            out["threshold"] = self.threshold
        if self.change_point is not None:
            out["change_point"] = self.change_point
        if self.cited:
            out["cited"] = [dict(item) for item in self.cited]
        return out

    def describe(self) -> str:
        """One human line, citing the baseline that convicted."""
        unit = f" {self.unit}" if self.unit else ""
        if self.status == "insufficient_history":
            return (
                f"{self.suite}.{self.metric}: {self.value:g}{unit} "
                f"(insufficient history: {self.window} < {MIN_HISTORY} "
                "comparable runs; not gated)"
            )
        line = (
            f"{self.suite}.{self.metric}: {self.value:g}{unit} vs "
            f"baseline {self.baseline:g} (median of last {self.window}, "
            f"±{self.threshold:g}) -> {self.status.upper()}"
        )
        if self.cited:
            shas = ", ".join(
                f"run {item['run']}@{item['sha'][:9]}={item['value']:g}"
                for item in self.cited
            )
            line += f" [baseline from: {shas}]"
        if self.change_point is not None:
            line += f" [CUSUM change-point at trajectory index {self.change_point}]"
        return line


def cusum_change_point(
    values: Sequence[float], k: float = CUSUM_K, h: float = CUSUM_H
) -> Optional[int]:
    """First index where a two-sided CUSUM alarm fires, or ``None``.

    The target level is the median of the series and σ comes from the
    MAD; for zero-spread series (deterministic counters) σ falls back to
    a small fraction of the level so a genuine step still alarms while
    bit-identical histories never do.
    """
    if len(values) < 2:
        return None
    center = statistics.median(values)
    mad = statistics.median(abs(v - center) for v in values)
    sigma = MAD_SIGMA * mad
    if sigma == 0.0:
        sigma = 0.01 * abs(center) if center else 1e-12
    high = 0.0
    low = 0.0
    for index, value in enumerate(values):
        z = (value - center) / sigma
        high = max(0.0, high + z - k)
        low = max(0.0, low - z - k)
        if high > h or low > h:
            return index
    return None


def check_metric(
    metric: "Metric",
    suite_name: str,
    value: float,
    history: Sequence[LedgerEntry],
) -> Verdict:
    """Rule on one fresh observation against its comparable history."""
    values = [entry.value for entry in history]
    if len(values) < MIN_HISTORY:
        return Verdict(
            suite=suite_name,
            metric=metric.name,
            status="insufficient_history",
            value=value,
            direction=metric.direction,
            window=len(values),
            unit=metric.unit,
        )
    window = values[-WINDOW:]
    baseline = statistics.median(window)
    mad = statistics.median(abs(v - baseline) for v in window)
    threshold = max(
        MAD_K * MAD_SIGMA * mad, metric.tolerance * abs(baseline)
    )
    delta = value - baseline
    bad = delta < -threshold if metric.direction == "higher" else delta > threshold
    good = delta > threshold if metric.direction == "higher" else delta < -threshold
    status = "regression" if bad else ("improved" if good else "ok")
    cited = tuple(
        {"run": entry.run, "sha": entry.sha, "value": entry.value}
        for entry in history[-WINDOW:][-3:]
    )
    return Verdict(
        suite=suite_name,
        metric=metric.name,
        status=status,
        value=value,
        direction=metric.direction,
        baseline=baseline,
        threshold=round(threshold, 6),
        window=len(window),
        change_point=cusum_change_point(values + [value]),
        cited=cited,
        unit=metric.unit,
    )


def check_run(
    suite: "BenchSuite",
    values: dict,
    ledger: BenchLedger,
    *,
    tier: str = "",
    mode: str = "full",
    host: str = "",
) -> list[Verdict]:
    """One verdict per declared metric of *suite* for a fresh run.

    Portable metrics (ratios, percentages, counts) compare against the
    whole comparable history; absolute metrics (throughputs, latencies)
    compare only against same-host observations, so a slower CI runner
    can never convict a change that is innocent on the machine that
    produced the baseline.
    """
    verdicts = []
    for metric in suite.metrics:
        history = ledger.series(
            suite.name,
            metric.name,
            tier=tier,
            mode=mode,
            host=None if metric.portable else host,
        )
        verdicts.append(
            check_metric(metric, suite.name, float(values[metric.name]), history)
        )
    return verdicts


def confirmed_regressions(verdicts: Sequence[Verdict]) -> list[Verdict]:
    return [verdict for verdict in verdicts if verdict.status == "regression"]
