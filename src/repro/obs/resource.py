"""Span-attributed resource profiling: where CPU time and memory went.

A :class:`ResourceProfiler` is a sampling thread.  Every tick it reads
the process-wide CPU clock delta and the :mod:`tracemalloc` high-water
mark since the previous tick, and charges both to the telemetry spans
that are *currently open* on the shared :class:`~repro.telemetry.Tracer`
(via :meth:`Tracer.attribute_open`): the CPU delta splits evenly across
the open *leaf* spans, memory peaks record as a running max on every
open span.  When those spans complete they carry ``cpu_ms`` /
``cpu_samples`` / ``peak_kb`` attrs straight into the existing JSONL
and Chrome-trace exporters — a Perfetto timeline whose slices are
annotated with the resources they actually consumed.

The attribution is statistical (a sample charges whatever is open at
the tick), so short spans between ticks may show no ``cpu_ms``; the
point is *proportion*, not nanosecond accounting — the span shapes in
the timeline already carry exact wall durations.

Only one profiler may run per process (the samples are process-wide
deltas; two samplers would double-charge), enforced by a module-level
guard.  :func:`profile_window` is the one-shot form behind the server's
``/debug/profile?seconds=N`` endpoint and ``repro stats --profile``.
"""

from __future__ import annotations

import threading
import time
import tracemalloc
from typing import Optional

from ..errors import ObsError
from .. import telemetry
from ..telemetry.export import chrome_trace

_GUARD = threading.Lock()
_ACTIVE: Optional["ResourceProfiler"] = None

MAX_TOP_SPANS = 20


class ResourceProfiler:
    """Samples process CPU/memory and attributes them to open spans.

    ::

        with ResourceProfiler() as profiler:
            ...  # traced work
        print(profiler.summary())

    ``tracer=None`` uses the shared :data:`repro.telemetry.TRACER`.
    ``track_memory=False`` skips tracemalloc (its own overhead is far
    larger than the sampler's; leave it off in latency-sensitive runs).
    """

    def __init__(
        self,
        tracer=None,
        interval_ms: float = 5.0,
        track_memory: bool = True,
    ) -> None:
        if interval_ms <= 0:
            raise ObsError(f"interval_ms must be positive, got {interval_ms!r}")
        self.tracer = tracer if tracer is not None else telemetry.TRACER
        self.interval_ms = float(interval_ms)
        self.track_memory = bool(track_memory)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_tracemalloc = False
        self.samples = 0
        self.attributed_samples = 0
        self.cpu_ms_total = 0.0
        self.peak_kb_max = 0.0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ResourceProfiler":
        global _ACTIVE
        with _GUARD:
            if _ACTIVE is not None:
                raise ObsError(
                    "a ResourceProfiler is already sampling this process; "
                    "samples are process-wide deltas, so two profilers "
                    "would double-charge the open spans"
                )
            if self._thread is not None:
                raise ObsError("ResourceProfiler instances are single-use")
            _ACTIVE = self
        if self.track_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-resource-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        global _ACTIVE
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False
        with _GUARD:
            if _ACTIVE is self:
                _ACTIVE = None

    def __enter__(self) -> "ResourceProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- the sampling loop -----------------------------------------------

    def _loop(self) -> None:
        interval = self.interval_ms / 1000.0
        last_cpu = time.process_time()  # lint: allow-wallclock
        if self.track_memory and tracemalloc.is_tracing():
            tracemalloc.reset_peak()
        while not self._stop.wait(interval):
            cpu = time.process_time()  # lint: allow-wallclock
            cpu_ms = max(0.0, (cpu - last_cpu) * 1000.0)
            last_cpu = cpu
            peak_kb = 0.0
            if self.track_memory and tracemalloc.is_tracing():
                _, peak = tracemalloc.get_traced_memory()
                peak_kb = peak / 1024.0
                tracemalloc.reset_peak()
            self.samples += 1
            self.cpu_ms_total += cpu_ms
            if peak_kb > self.peak_kb_max:
                self.peak_kb_max = peak_kb
            if self.tracer.attribute_open(cpu_ms, peak_kb):
                self.attributed_samples += 1

    # -- results ---------------------------------------------------------

    def summary(self) -> dict:
        return {
            "interval_ms": self.interval_ms,
            "samples": self.samples,
            "attributed_samples": self.attributed_samples,
            "cpu_ms_total": round(self.cpu_ms_total, 3),
            "peak_kb_max": round(self.peak_kb_max, 1),
            "track_memory": self.track_memory,
        }


def profiler_active() -> bool:
    with _GUARD:
        return _ACTIVE is not None


def profile_window(
    seconds: float,
    tracer=None,
    interval_ms: float = 5.0,
    track_memory: bool = True,
) -> dict:
    """Profile this process for *seconds* and report what ran.

    Samples for the window, then collects every span that *completed*
    during it plus the spans still open at the end, aggregates CPU
    attribution by span name, and embeds a Chrome-trace document of the
    completed spans (their slices carry the ``cpu_ms``/``peak_kb``
    args).  Raises :class:`ObsError` if a profiler is already running —
    the server maps that to HTTP 409.
    """
    if seconds <= 0 or seconds > 300:
        raise ObsError(f"profile window must be in (0, 300] seconds, got {seconds!r}")
    tracer = tracer if tracer is not None else telemetry.TRACER
    start_seq = tracer.seq
    profiler = ResourceProfiler(
        tracer=tracer, interval_ms=interval_ms, track_memory=track_memory
    )
    with profiler:
        time.sleep(seconds)
    completed = tracer.spans_since(start_seq)

    by_name: dict[str, dict] = {}
    attributed = 0
    for span in completed:
        cpu_ms = span.attrs.get("cpu_ms")
        if cpu_ms:
            attributed += 1
        slot = by_name.setdefault(
            span.name,
            {"name": span.name, "count": 0, "cpu_ms": 0.0, "peak_kb": 0.0,
             "wall_ms": 0.0},
        )
        slot["count"] += 1
        slot["cpu_ms"] = round(slot["cpu_ms"] + (cpu_ms or 0.0), 3)
        slot["peak_kb"] = max(slot["peak_kb"], span.attrs.get("peak_kb", 0.0))
        slot["wall_ms"] = round(slot["wall_ms"] + (span.duration_ms or 0.0), 3)
    top = sorted(
        by_name.values(), key=lambda slot: (-slot["cpu_ms"], -slot["wall_ms"])
    )[:MAX_TOP_SPANS]

    open_now = [
        {
            "name": span.name,
            "trace_id": span.trace_id,
            "cpu_ms": span.attrs.get("cpu_ms", 0.0),
            "peak_kb": span.attrs.get("peak_kb", 0.0),
        }
        for span in tracer.open_spans()[:MAX_TOP_SPANS]
    ]

    return {
        "seconds": seconds,
        "profiler": profiler.summary(),
        "completed_spans": len(completed),
        "attributed_spans": attributed,
        "top": top,
        "open": open_now,
        "chrome_trace": chrome_trace(completed),
    }


def process_snapshot() -> dict:
    """Cheap point-in-time resource numbers for ``Session.stats()`` and
    the server's ``/metrics`` collectors (no sampling thread needed)."""
    try:
        import resource as _resource

        max_rss_kb = float(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)
    except (ImportError, OSError):  # pragma: no cover - non-POSIX
        max_rss_kb = 0.0
    snapshot = {
        "cpu_s": round(time.process_time(), 3),  # lint: allow-wallclock
        "max_rss_kb": max_rss_kb,
        "tracemalloc": tracemalloc.is_tracing(),
        "profiler_active": profiler_active(),
    }
    if tracemalloc.is_tracing():
        current, peak = tracemalloc.get_traced_memory()
        snapshot["traced_kb"] = round(current / 1024.0, 1)
        snapshot["traced_peak_kb"] = round(peak / 1024.0, 1)
    return snapshot
