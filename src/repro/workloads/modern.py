"""The 14 modern workloads of the paper's Table 2.

Image-processing tasks (1-9) and NLP tasks (10-14), each composed from
the operator library into a dataflow graph whose structure mirrors the
cited architecture (residual connections, pyramid pooling, attention,
encoder stacks, …) at D×D tile scale.

Input-dependent control flow follows the paper's protocol: image
workloads expose image-size scalars, text workloads expose text-length
scalars, and several operators branch on data values.
"""

from __future__ import annotations

from typing import Callable

from . import oplib
from .base import Workload
from .oplib import D


class WorkloadBuilder:
    """Incrementally composes operators into a dataflow program."""

    def __init__(self, name: str, category: str) -> None:
        self.name = name
        self.category = category
        self._op_sources: list[str] = []
        self._params: list[str] = []
        self._calls: list[str] = []
        self._counter = 0
        self._data: dict[str, int] = {}
        self._sweeps: dict[str, tuple[int, ...]] = {}

    # -- declarations ------------------------------------------------------

    def input2d(self, name: str) -> str:
        self._params.append(f"float {name}[{D}][{D}]")
        return name

    def input1d_int(self, name: str) -> str:
        self._params.append(f"int {name}[{D}]")
        return name

    def scalar(self, name: str, default: int, sweep: tuple[int, ...] = ()) -> str:
        self._params.append(f"int {name}")
        self._data[name] = default
        if sweep:
            self._sweeps[name] = sweep
        return name

    def buffer(self) -> str:
        self._counter += 1
        name = f"b{self._counter}"
        self._params.append(f"float {name}[{D}][{D}]")
        return name

    # -- operator application ------------------------------------------------

    def _instantiate(self, factory: Callable[..., str], *factory_args) -> str:
        self._counter += 1
        op_name = f"{factory.__name__}_{self._counter}"
        self._op_sources.append(factory(op_name, *factory_args))
        return op_name

    def unary(self, factory: Callable[[str], str], src: str) -> str:
        op_name = self._instantiate(factory)
        out = self.buffer()
        self._calls.append(f"{op_name}({src}, {out});")
        return out

    def weighted(self, factory: Callable[[str], str], src: str, *factory_args) -> str:
        op_name = self._instantiate(factory, *factory_args)
        weight = self.input2d(f"w{self._counter}")
        out = self.buffer()
        self._calls.append(f"{op_name}({src}, {weight}, {out});")
        return out

    def binary(self, factory: Callable[[str], str], a: str, b: str) -> str:
        op_name = self._instantiate(factory)
        out = self.buffer()
        self._calls.append(f"{op_name}({a}, {b}, {out});")
        return out

    def dynamic(self, factory: Callable[[str], str], src: str, *scalars: str) -> str:
        op_name = self._instantiate(factory)
        out = self.buffer()
        args = ", ".join([src, out, *scalars])
        self._calls.append(f"{op_name}({args});")
        return out

    def embed(self, ids: str) -> str:
        op_name = self._instantiate(oplib.embed_lookup)
        table = self.input2d(f"table{self._counter}")
        out = self.buffer()
        self._calls.append(f"{op_name}({ids}, {table}, {out});")
        return out

    def anchor(self) -> str:
        op_name = self._instantiate(oplib.anchor_gen)
        out = self.buffer()
        self._calls.append(f"{op_name}({out});")
        return out

    def attention_block(self, x: str) -> str:
        """matmul(Q) → matmul(K-score) → softmax → weighted sum."""
        q = self.weighted(oplib.matmul, x)
        scores = self.weighted(oplib.matmul, q)
        probs = self.unary(oplib.row_softmax, scores)
        return self.binary(oplib.fusion_add, probs, x)

    # -- assembly --------------------------------------------------------------

    def build(self) -> Workload:
        params = ", ".join(self._params)
        body = "\n  ".join(self._calls)
        source = "\n".join(self._op_sources)
        source += f"\n\nvoid dataflow({params}) {{\n  {body}\n}}\n"
        return Workload(
            name=self.name,
            source=source,
            category=self.category,
            data=dict(self._data),
            dynamic_sweeps=dict(self._sweeps),
        )


MODERN_NAMES = (
    "image-norm-cnn",
    "rb-dsc",
    "spp-fusion",
    "cbam-attention",
    "anchor-roialign",
    "gan-superres",
    "dense-skipconn",
    "dilatedconv-aggre",
    "bevformer",
    "bert-base",
    "albert",
    "t5-base",
    "roberta",
    "llama",
)


def _image_norm_cnn() -> Workload:
    b = WorkloadBuilder("image-norm-cnn", "image")
    x = b.input2d("img")
    b.scalar("h", D, sweep=(4, 6, 8))
    x = b.unary(oplib.batch_norm, x)
    x = b.weighted(oplib.conv3x3, x)
    x = b.unary(oplib.relu, x)
    x = b.weighted(oplib.conv3x3, x)
    x = b.unary(oplib.relu, x)
    x = b.unary(oplib.max_pool, x)
    x = b.weighted(oplib.pointwise, x)
    x = b.unary(oplib.batch_norm, x)
    b.scalar("w", D, sweep=(4, 6, 8))
    x = b.dynamic(oplib.roi_crop, x, "h", "w")
    return b.build()


def _rb_dsc() -> Workload:
    b = WorkloadBuilder("rb-dsc", "image")
    x = b.input2d("img")
    b.scalar("h", D, sweep=(4, 6, 8))
    skip = x
    x = b.weighted(oplib.conv5x5_depthwise, x)
    x = b.weighted(oplib.pointwise, x)
    x = b.unary(oplib.relu, x)
    x = b.binary(oplib.add_residual, x, skip)
    x = b.unary(oplib.batch_norm, x)
    b.scalar("w", D, sweep=(4, 6, 8))
    x = b.dynamic(oplib.roi_crop, x, "h", "w")
    return b.build()


def _spp_fusion() -> Workload:
    b = WorkloadBuilder("spp-fusion", "image")
    x = b.input2d("img")
    b.scalar("h", D, sweep=(4, 6, 8))
    a = b.unary(oplib.spp_pool, x)
    c = b.weighted(oplib.conv3x3, x)
    c = b.unary(oplib.relu, c)
    fused = b.binary(oplib.fusion_add, a, c)
    fused = b.unary(oplib.batch_norm, fused)
    fused = b.weighted(oplib.pointwise, fused)
    fused = b.unary(oplib.max_pool, fused)
    b.scalar("w", D, sweep=(4, 6, 8))
    fused = b.dynamic(oplib.roi_crop, fused, "h", "w")
    return b.build()


def _cbam_attention() -> Workload:
    b = WorkloadBuilder("cbam-attention", "image")
    x = b.input2d("img")
    b.scalar("h", D, sweep=(4, 6, 8))
    b.scalar("w", D, sweep=(4, 6, 8))
    ch = b.unary(oplib.channel_mean, x)
    gated = b.binary(oplib.spatial_gate, x, ch)
    sp = b.weighted(oplib.conv3x3, gated)
    sp = b.unary(oplib.row_softmax, sp)
    gated2 = b.binary(oplib.spatial_gate, gated, sp)
    out = b.weighted(oplib.pointwise, gated2)
    out = b.unary(oplib.relu, out)
    out = b.binary(oplib.add_residual, out, x)
    out = b.unary(oplib.batch_norm, out)
    out = b.unary(oplib.max_pool, out)
    out = b.dynamic(oplib.roi_crop, out, "h", "w")
    out = b.unary(oplib.leaky_relu, out)
    return b.build()


def _anchor_roialign() -> Workload:
    b = WorkloadBuilder("anchor-roialign", "image")
    feat = b.input2d("feat")
    b.scalar("h", 6, sweep=(3, 4, 6))
    b.scalar("w", 6, sweep=(3, 4, 6))
    anchors = b.anchor()
    scored = b.binary(oplib.fusion_add, feat, anchors)
    crop = b.dynamic(oplib.roi_crop, scored, "h", "w")
    out = b.weighted(oplib.pointwise, crop)
    out = b.unary(oplib.relu, out)
    return b.build()


def _gan_superres() -> Workload:
    b = WorkloadBuilder("gan-superres", "image")
    x = b.input2d("img")
    b.scalar("h", D, sweep=(4, 6, 8))
    x = b.weighted(oplib.conv3x3, x)
    x = b.unary(oplib.leaky_relu, x)
    skip = x
    x = b.weighted(oplib.conv3x3, x)
    x = b.unary(oplib.leaky_relu, x)
    x = b.binary(oplib.add_residual, x, skip)
    x = b.unary(oplib.upsample2x, x)
    x = b.weighted(oplib.conv3x3, x)
    x = b.unary(oplib.leaky_relu, x)
    x = b.unary(oplib.upsample2x, x)
    x = b.weighted(oplib.conv3x3, x)
    x = b.unary(oplib.gelu_poly, x)
    x = b.unary(oplib.batch_norm, x)
    x = b.dynamic(oplib.seq_scan, x, "h")
    return b.build()


def _dense_skipconn() -> Workload:
    b = WorkloadBuilder("dense-skipconn", "image")
    x = b.input2d("img")
    b.scalar("h", D, sweep=(4, 6, 8))
    d1 = b.weighted(oplib.conv3x3, x)
    d1 = b.unary(oplib.relu, d1)
    c1 = b.binary(oplib.add_residual, d1, x)
    d2 = b.weighted(oplib.conv3x3, c1)
    d2 = b.unary(oplib.relu, d2)
    c2 = b.binary(oplib.add_residual, d2, c1)
    c2 = b.binary(oplib.add_residual, c2, x)
    out = b.unary(oplib.batch_norm, c2)
    b.scalar("w", D, sweep=(4, 6, 8))
    out = b.dynamic(oplib.roi_crop, out, "h", "w")
    return b.build()


def _dilatedconv_aggre() -> Workload:
    b = WorkloadBuilder("dilatedconv-aggre", "image")
    x = b.input2d("img")
    b.scalar("h", D, sweep=(4, 6, 8))
    r1 = b.weighted(oplib.dilated_conv, x, 1)
    r2 = b.weighted(oplib.dilated_conv, x, 2)
    agg = b.binary(oplib.fusion_add, r1, r2)
    agg = b.unary(oplib.relu, agg)
    agg = b.weighted(oplib.pointwise, agg)
    agg = b.dynamic(oplib.seq_scan, agg, "h")
    return b.build()


def _bevformer() -> Workload:
    b = WorkloadBuilder("bevformer", "image")
    cam = b.input2d("cam")
    grid = b.input2d("grid")
    b.scalar("h", D, sweep=(4, 6, 8))
    bev = b.binary(oplib.grid_sample, cam, grid)
    bev = b.attention_block(bev)
    out = b.unary(oplib.batch_norm, bev)
    out = b.dynamic(oplib.seq_scan, out, "h")
    return b.build()


def _bert_base() -> Workload:
    b = WorkloadBuilder("bert-base", "nlp")
    ids = b.input1d_int("ids")
    b.scalar("len", D, sweep=(4, 6, 8))
    x = b.embed(ids)
    x = b.attention_block(x)
    h = b.weighted(oplib.matmul, x)
    h = b.unary(oplib.gelu_poly, h)
    h = b.weighted(oplib.matmul, h)
    x = b.binary(oplib.add_residual, h, x)
    x = b.unary(oplib.rms_norm, x)
    x = b.dynamic(oplib.seq_scan, x, "len")
    return b.build()


def _albert() -> Workload:
    b = WorkloadBuilder("albert", "nlp")
    ids = b.input1d_int("ids")
    b.scalar("len", D, sweep=(4, 6, 8))
    x = b.embed(ids)
    # Parameter-shared layers: the same projection applied twice.
    x = b.attention_block(x)
    x = b.attention_block(x)
    h = b.weighted(oplib.matmul, x)
    h = b.unary(oplib.gelu_poly, h)
    x = b.binary(oplib.add_residual, h, x)
    x = b.unary(oplib.rms_norm, x)
    x = b.dynamic(oplib.seq_scan, x, "len")
    return b.build()


def _t5_base() -> Workload:
    b = WorkloadBuilder("t5-base", "nlp")
    ids = b.input1d_int("ids")
    b.scalar("len", D, sweep=(4, 6, 8))
    enc = b.embed(ids)
    enc = b.attention_block(enc)
    h = b.weighted(oplib.matmul, enc)
    h = b.unary(oplib.relu, h)
    h = b.weighted(oplib.matmul, h)
    enc = b.binary(oplib.add_residual, h, enc)
    enc = b.unary(oplib.rms_norm, enc)
    dec = b.attention_block(enc)
    dec = b.attention_block(dec)  # cross-attention stage
    h2 = b.weighted(oplib.matmul, dec)
    h2 = b.unary(oplib.relu, h2)
    dec = b.binary(oplib.add_residual, h2, dec)
    dec = b.unary(oplib.rms_norm, dec)
    dec = b.dynamic(oplib.seq_scan, dec, "len")
    return b.build()


def _roberta() -> Workload:
    b = WorkloadBuilder("roberta", "nlp")
    ids = b.input1d_int("ids")
    b.scalar("len", D, sweep=(4, 6, 8))
    x = b.embed(ids)
    x = b.unary(oplib.batch_norm, x)
    x = b.attention_block(x)
    h = b.weighted(oplib.matmul, x)
    h = b.unary(oplib.gelu_poly, h)
    x = b.binary(oplib.add_residual, h, x)
    x = b.dynamic(oplib.seq_scan, x, "len")
    return b.build()


def _llama() -> Workload:
    b = WorkloadBuilder("llama", "nlp")
    ids = b.input1d_int("ids")
    b.scalar("len", D, sweep=(4, 6, 8))
    x = b.embed(ids)
    x = b.unary(oplib.rms_norm, x)
    x = b.attention_block(x)
    gate = b.weighted(oplib.matmul, x)
    up = b.weighted(oplib.matmul, x)
    h = b.binary(oplib.swiglu, up, gate)
    x = b.binary(oplib.add_residual, h, x)
    x = b.dynamic(oplib.seq_scan, x, "len")
    return b.build()


_FACTORIES = (
    _image_norm_cnn,
    _rb_dsc,
    _spp_fusion,
    _cbam_attention,
    _anchor_roialign,
    _gan_superres,
    _dense_skipconn,
    _dilatedconv_aggre,
    _bevformer,
    _bert_base,
    _albert,
    _t5_base,
    _roberta,
    _llama,
)


def modern_suite() -> list[Workload]:
    """All 14 modern workloads, in the paper's Table 2 order."""
    return [factory() for factory in _FACTORIES]


def modern_workload(index: int) -> Workload:
    """One workload by the paper's 1-based Table 2 index."""
    if not 1 <= index <= len(_FACTORIES):
        raise IndexError(f"Table 2 index must be in [1, {len(_FACTORIES)}]")
    return _FACTORIES[index - 1]()
