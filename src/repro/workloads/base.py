"""Workload container shared by the benchmark suites."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Optional

from ..core.inputs import bundle_from_program, class_i_segments
from ..hls import HardwareParams
from ..lang import ast, count_dynamic_parameters, parse
from ..tokenizer import ModelInput


@dataclass
class Workload:
    """A named benchmark program with its default runtime inputs."""

    name: str
    source: str
    category: str = "generic"
    data: dict[str, Any] = field(default_factory=dict)
    # Scalar runtime inputs that steer control flow, with sweep values
    # used by the input-adaptivity experiments.
    dynamic_sweeps: dict[str, tuple[int, ...]] = field(default_factory=dict)

    @cached_property
    def program(self) -> ast.Program:
        return parse(self.source)

    @cached_property
    def class_i(self) -> tuple[str, ...]:
        return tuple(class_i_segments(self.program))

    def bundle(
        self,
        params: Optional[HardwareParams] = None,
        data: Optional[dict[str, Any]] = None,
        think_text: str = "",
    ) -> ModelInput:
        merged = dict(self.data)
        if data:
            merged.update(data)
        return bundle_from_program(
            self.program, params=params, data=merged or None, think_text=think_text
        )

    def merged_data(self, data: Optional[dict[str, Any]] = None) -> dict[str, Any]:
        merged = dict(self.data)
        if data:
            merged.update(data)
        return merged

    # -- Table 2 statistics -------------------------------------------------

    def stats(self) -> dict[str, int]:
        """The paper's Table 2 columns for this workload."""
        bundle = self.bundle()
        graph_len = len(bundle.graph_text)
        op_len = sum(len(t) for t in bundle.op_texts)
        return {
            "all_len": graph_len + op_len,
            "graph_len": graph_len,
            "op_num": len(bundle.op_texts),
            "dyn_num": count_dynamic_parameters(self.program),
            "op_len": op_len,
        }
