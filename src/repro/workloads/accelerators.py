"""Real-world accelerator case studies (paper §7.4).

GEMM loop-schedule variants mimicking three canonical dataflow styles:

* **TPU v1** — weight-stationary: weights pinned per PE, unroll over
  the reduction-feeding spatial dims.
* **Eyeriss** — input(row)-stationary: input rows pinned, loop order
  rotated so input reuse dominates.
* **ShiDianNao** — output-stationary: each PE owns an output element,
  unroll over output dims.

The variants are the same Polybench Gemm computation with different
loop orders, spatial-mapping pragmas and hardware parameters.
"""

from __future__ import annotations

from ..hls import HardwareParams
from .base import Workload

_DIM = 8

ACCELERATOR_NAMES = ("tpu", "eyeriss", "shidiannao")


def _tpu_gemm() -> Workload:
    source = f"""
void gemm_ws(float a[{_DIM}][{_DIM}], float w[{_DIM}][{_DIM}], float c[{_DIM}][{_DIM}]) {{
  for (int k = 0; k < {_DIM}; k++) {{
    #pragma unroll 4
    for (int i = 0; i < {_DIM}; i++) {{
      #pragma omp parallel for
      for (int j = 0; j < {_DIM}; j++) {{
        c[i][j] += a[i][k] * w[k][j];
      }}
    }}
  }}
}}

void dataflow(float a[{_DIM}][{_DIM}], float w[{_DIM}][{_DIM}], float c[{_DIM}][{_DIM}]) {{
  gemm_ws(a, w, c);
}}
"""
    return Workload(name="tpu", source=source, category="accelerator")


def _eyeriss_gemm() -> Workload:
    source = f"""
void gemm_is(float a[{_DIM}][{_DIM}], float w[{_DIM}][{_DIM}], float c[{_DIM}][{_DIM}]) {{
  for (int i = 0; i < {_DIM}; i++) {{
    #pragma unroll 2
    for (int k = 0; k < {_DIM}; k++) {{
      #pragma omp parallel for
      for (int j = 0; j < {_DIM}; j++) {{
        c[i][j] += a[i][k] * w[k][j];
      }}
    }}
  }}
}}

void dataflow(float a[{_DIM}][{_DIM}], float w[{_DIM}][{_DIM}], float c[{_DIM}][{_DIM}]) {{
  gemm_is(a, w, c);
}}
"""
    return Workload(name="eyeriss", source=source, category="accelerator")


def _shidiannao_gemm() -> Workload:
    source = f"""
void gemm_os(float a[{_DIM}][{_DIM}], float w[{_DIM}][{_DIM}], float c[{_DIM}][{_DIM}]) {{
  #pragma omp parallel for
  for (int i = 0; i < {_DIM}; i++) {{
    #pragma unroll 4
    for (int j = 0; j < {_DIM}; j++) {{
      float acc = 0.0;
      for (int k = 0; k < {_DIM}; k++) {{
        acc += a[i][k] * w[k][j];
      }}
      c[i][j] = acc;
    }}
  }}
}}

void dataflow(float a[{_DIM}][{_DIM}], float w[{_DIM}][{_DIM}], float c[{_DIM}][{_DIM}]) {{
  gemm_os(a, w, c);
}}
"""
    return Workload(name="shidiannao", source=source, category="accelerator")


def accelerator_suite() -> list[Workload]:
    """TPU / Eyeriss / ShiDianNao loop-schedule variants."""
    return [_tpu_gemm(), _eyeriss_gemm(), _shidiannao_gemm()]


def accelerator_params(name: str) -> HardwareParams:
    """Per-style hardware configuration (PE counts, buffering)."""
    configs = {
        "tpu": HardwareParams(pe_count=8, memory_ports=4, mem_read_delay=5, mem_write_delay=5),
        "eyeriss": HardwareParams(pe_count=4, memory_ports=2, mem_read_delay=5, mem_write_delay=10),
        "shidiannao": HardwareParams(pe_count=4, memory_ports=2, mem_read_delay=2, mem_write_delay=2),
    }
    if name not in configs:
        raise KeyError(f"unknown accelerator {name!r}")
    return configs[name]
