"""Benchmark workloads: Polybench, modern applications, accelerators."""

from .accelerators import ACCELERATOR_NAMES, accelerator_params, accelerator_suite
from .base import Workload
from .modern import MODERN_NAMES, modern_suite, modern_workload
from .polybench import POLYBENCH_NAMES, polybench_suite
from .polybench_linalg import LINALG_NAMES, linalg_suite, linalg_workload

__all__ = [
    "Workload",
    "polybench_suite",
    "POLYBENCH_NAMES",
    "linalg_suite",
    "linalg_workload",
    "LINALG_NAMES",
    "modern_suite",
    "modern_workload",
    "MODERN_NAMES",
    "accelerator_suite",
    "accelerator_params",
    "ACCELERATOR_NAMES",
]
