"""Polybench kernels in the mini dataflow language.

Scaled-down (N≈8-12, TSTEPS=2) versions of the ten kernels the paper
evaluates: adi, atax, bicg, correlation, covariance, deriche, fdtd-2d,
heat-3d, jacobi-2d and seidel-2d.  Problem sizes are reduced so the
cycle simulator profiles each kernel in milliseconds; relative
structure (loop nests, dependences, divisions) is preserved.
"""

from __future__ import annotations

from .base import Workload

N = 8
TSTEPS = 2

POLYBENCH_NAMES = (
    "adi",
    "atax",
    "bicg",
    "correlation",
    "covariance",
    "deriche",
    "fdtd-2d",
    "heat-3d",
    "jacobi-2d",
    "seidel-2d",
)


def _adi() -> Workload:
    source = f"""
void adi_kernel(float u[{N}][{N}], float v[{N}][{N}], float p[{N}][{N}], float q[{N}][{N}], int tsteps) {{
  for (int t = 0; t < tsteps; t++) {{
    for (int i = 1; i < {N - 1}; i++) {{
      v[0][i] = 1.0;
      p[i][0] = 0.0;
      q[i][0] = v[0][i];
      for (int j = 1; j < {N - 1}; j++) {{
        p[i][j] = (0.0 - 0.5) / ((0.5 * p[i][j - 1]) + 2.0);
        q[i][j] = ((u[j][i - 1] + u[j][i + 1]) - (q[i][j - 1] * 0.5)) / ((0.5 * p[i][j - 1]) + 2.0);
      }}
      v[{N - 1}][i] = 1.0;
      for (int j = {N - 2}; j >= 1; j -= 1) {{
        v[j][i] = p[i][j] * v[j + 1][i] + q[i][j];
      }}
    }}
    for (int i = 1; i < {N - 1}; i++) {{
      u[i][0] = 1.0;
      p[i][0] = 0.0;
      q[i][0] = u[i][0];
      for (int j = 1; j < {N - 1}; j++) {{
        p[i][j] = (0.0 - 0.3) / ((0.3 * p[i][j - 1]) + 1.5);
        q[i][j] = ((v[i - 1][j] + v[i + 1][j]) - (q[i][j - 1] * 0.3)) / ((0.3 * p[i][j - 1]) + 1.5);
      }}
      u[i][{N - 1}] = 1.0;
      for (int j = {N - 2}; j >= 1; j -= 1) {{
        u[i][j] = p[i][j] * u[i][j + 1] + q[i][j];
      }}
    }}
  }}
}}

void dataflow(float u[{N}][{N}], float v[{N}][{N}], float p[{N}][{N}], float q[{N}][{N}], int tsteps) {{
  adi_kernel(u, v, p, q, tsteps);
}}
"""
    return Workload(
        name="adi",
        source=source,
        category="polybench",
        data={"tsteps": TSTEPS},
        dynamic_sweeps={"tsteps": (1, 2, 3)},
    )


def _atax() -> Workload:
    source = f"""
void atax_kernel(float A[{N}][{N}], float x[{N}], float y[{N}], float tmp[{N}]) {{
  for (int i = 0; i < {N}; i++) {{
    y[i] = 0.0;
  }}
  for (int i = 0; i < {N}; i++) {{
    tmp[i] = 0.0;
    for (int j = 0; j < {N}; j++) {{
      tmp[i] = tmp[i] + A[i][j] * x[j];
    }}
    for (int j = 0; j < {N}; j++) {{
      y[j] = y[j] + A[i][j] * tmp[i];
    }}
  }}
}}

void dataflow(float A[{N}][{N}], float x[{N}], float y[{N}], float tmp[{N}]) {{
  atax_kernel(A, x, y, tmp);
}}
"""
    return Workload(name="atax", source=source, category="polybench")


def _bicg() -> Workload:
    source = f"""
void bicg_kernel(float A[{N}][{N}], float s[{N}], float q[{N}], float p[{N}], float r[{N}]) {{
  for (int i = 0; i < {N}; i++) {{
    s[i] = 0.0;
  }}
  for (int i = 0; i < {N}; i++) {{
    q[i] = 0.0;
    for (int j = 0; j < {N}; j++) {{
      s[j] = s[j] + r[i] * A[i][j];
      q[i] = q[i] + A[i][j] * p[j];
    }}
  }}
}}

void dataflow(float A[{N}][{N}], float s[{N}], float q[{N}], float p[{N}], float r[{N}]) {{
  bicg_kernel(A, s, q, p, r);
}}
"""
    return Workload(name="bicg", source=source, category="polybench")


def _correlation() -> Workload:
    source = f"""
void correlation_kernel(float data[{N}][{N}], float corr[{N}][{N}], float mean[{N}], float stddev[{N}]) {{
  for (int j = 0; j < {N}; j++) {{
    mean[j] = 0.0;
    for (int i = 0; i < {N}; i++) {{
      mean[j] = mean[j] + data[i][j];
    }}
    mean[j] = mean[j] / {N}.0;
  }}
  for (int j = 0; j < {N}; j++) {{
    stddev[j] = 0.0;
    for (int i = 0; i < {N}; i++) {{
      stddev[j] = stddev[j] + (data[i][j] - mean[j]) * (data[i][j] - mean[j]);
    }}
    stddev[j] = stddev[j] / {N}.0;
    if (stddev[j] <= 0.1) {{
      stddev[j] = 1.0;
    }}
  }}
  for (int i = 0; i < {N}; i++) {{
    for (int j = 0; j < {N}; j++) {{
      data[i][j] = (data[i][j] - mean[j]) / stddev[j];
    }}
  }}
  for (int i = 0; i < {N - 1}; i++) {{
    corr[i][i] = 1.0;
    for (int j = i + 1; j < {N}; j++) {{
      corr[i][j] = 0.0;
      for (int k = 0; k < {N}; k++) {{
        corr[i][j] = corr[i][j] + data[k][i] * data[k][j];
      }}
      corr[j][i] = corr[i][j];
    }}
  }}
  corr[{N - 1}][{N - 1}] = 1.0;
}}

void dataflow(float data[{N}][{N}], float corr[{N}][{N}], float mean[{N}], float stddev[{N}]) {{
  correlation_kernel(data, corr, mean, stddev);
}}
"""
    return Workload(name="correlation", source=source, category="polybench")


def _covariance() -> Workload:
    source = f"""
void covariance_kernel(float data[{N}][{N}], float cov[{N}][{N}], float mean[{N}]) {{
  for (int j = 0; j < {N}; j++) {{
    mean[j] = 0.0;
    for (int i = 0; i < {N}; i++) {{
      mean[j] = mean[j] + data[i][j];
    }}
    mean[j] = mean[j] / {N}.0;
  }}
  for (int i = 0; i < {N}; i++) {{
    for (int j = 0; j < {N}; j++) {{
      data[i][j] = data[i][j] - mean[j];
    }}
  }}
  for (int i = 0; i < {N}; i++) {{
    for (int j = i; j < {N}; j++) {{
      cov[i][j] = 0.0;
      for (int k = 0; k < {N}; k++) {{
        cov[i][j] = cov[i][j] + data[k][i] * data[k][j];
      }}
      cov[i][j] = cov[i][j] / {N - 1}.0;
      cov[j][i] = cov[i][j];
    }}
  }}
}}

void dataflow(float data[{N}][{N}], float cov[{N}][{N}], float mean[{N}]) {{
  covariance_kernel(data, cov, mean);
}}
"""
    return Workload(name="covariance", source=source, category="polybench")


def _deriche() -> Workload:
    size = N
    source = f"""
void deriche_kernel(float imgIn[{size}][{size}], float imgOut[{size}][{size}], float y1[{size}][{size}], float y2[{size}][{size}], int w) {{
  for (int i = 0; i < w; i++) {{
    float ym1 = 0.0;
    float ym2 = 0.0;
    float xm1 = 0.0;
    for (int j = 0; j < {size}; j++) {{
      y1[i][j] = 0.5 * imgIn[i][j] + 0.25 * xm1 + 0.6 * ym1 - 0.2 * ym2;
      xm1 = imgIn[i][j];
      ym2 = ym1;
      ym1 = y1[i][j];
    }}
  }}
  for (int i = 0; i < w; i++) {{
    float yp1 = 0.0;
    float yp2 = 0.0;
    float xp1 = 0.0;
    float xp2 = 0.0;
    for (int j = {size - 1}; j >= 0; j -= 1) {{
      y2[i][j] = 0.3 * xp1 + 0.1 * xp2 + 0.6 * yp1 - 0.2 * yp2;
      xp2 = xp1;
      xp1 = imgIn[i][j];
      yp2 = yp1;
      yp1 = y2[i][j];
    }}
  }}
  for (int i = 0; i < w; i++) {{
    for (int j = 0; j < {size}; j++) {{
      imgOut[i][j] = 0.7 * (y1[i][j] + y2[i][j]);
    }}
  }}
}}

void dataflow(float imgIn[{size}][{size}], float imgOut[{size}][{size}], float y1[{size}][{size}], float y2[{size}][{size}], int w) {{
  deriche_kernel(imgIn, imgOut, y1, y2, w);
}}
"""
    return Workload(
        name="deriche",
        source=source,
        category="polybench",
        data={"w": size},
        dynamic_sweeps={"w": (4, 6, 8)},
    )


def _fdtd_2d() -> Workload:
    source = f"""
void fdtd_kernel(float ex[{N}][{N}], float ey[{N}][{N}], float hz[{N}][{N}], float fict[{N}], int tmax) {{
  for (int t = 0; t < tmax; t++) {{
    for (int j = 0; j < {N}; j++) {{
      ey[0][j] = fict[t];
    }}
    for (int i = 1; i < {N}; i++) {{
      for (int j = 0; j < {N}; j++) {{
        ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i - 1][j]);
      }}
    }}
    for (int i = 0; i < {N}; i++) {{
      for (int j = 1; j < {N}; j++) {{
        ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j - 1]);
      }}
    }}
    for (int i = 0; i < {N - 1}; i++) {{
      for (int j = 0; j < {N - 1}; j++) {{
        hz[i][j] = hz[i][j] - 0.7 * (ex[i][j + 1] - ex[i][j] + ey[i + 1][j] - ey[i][j]);
      }}
    }}
  }}
}}

void dataflow(float ex[{N}][{N}], float ey[{N}][{N}], float hz[{N}][{N}], float fict[{N}], int tmax) {{
  fdtd_kernel(ex, ey, hz, fict, tmax);
}}
"""
    return Workload(
        name="fdtd-2d",
        source=source,
        category="polybench",
        data={"tmax": TSTEPS},
        dynamic_sweeps={"tmax": (1, 2, 4)},
    )


def _heat_3d() -> Workload:
    size = 6
    source = f"""
void heat_kernel(float A[{size}][{size}][{size}], float B[{size}][{size}][{size}], int tsteps) {{
  for (int t = 0; t < tsteps; t++) {{
    for (int i = 1; i < {size - 1}; i++) {{
      for (int j = 1; j < {size - 1}; j++) {{
        for (int k = 1; k < {size - 1}; k++) {{
          B[i][j][k] = 0.125 * (A[i + 1][j][k] - 2.0 * A[i][j][k] + A[i - 1][j][k])
            + 0.125 * (A[i][j + 1][k] - 2.0 * A[i][j][k] + A[i][j - 1][k])
            + 0.125 * (A[i][j][k + 1] - 2.0 * A[i][j][k] + A[i][j][k - 1])
            + A[i][j][k];
        }}
      }}
    }}
    for (int i = 1; i < {size - 1}; i++) {{
      for (int j = 1; j < {size - 1}; j++) {{
        for (int k = 1; k < {size - 1}; k++) {{
          A[i][j][k] = B[i][j][k];
        }}
      }}
    }}
  }}
}}

void dataflow(float A[{size}][{size}][{size}], float B[{size}][{size}][{size}], int tsteps) {{
  heat_kernel(A, B, tsteps);
}}
"""
    return Workload(
        name="heat-3d",
        source=source,
        category="polybench",
        data={"tsteps": TSTEPS},
        dynamic_sweeps={"tsteps": (1, 2, 3)},
    )


def _jacobi_2d() -> Workload:
    source = f"""
void jacobi_kernel(float A[{N}][{N}], float B[{N}][{N}], int tsteps) {{
  for (int t = 0; t < tsteps; t++) {{
    for (int i = 1; i < {N - 1}; i++) {{
      for (int j = 1; j < {N - 1}; j++) {{
        B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][j + 1] + A[i + 1][j] + A[i - 1][j]);
      }}
    }}
    for (int i = 1; i < {N - 1}; i++) {{
      for (int j = 1; j < {N - 1}; j++) {{
        A[i][j] = 0.2 * (B[i][j] + B[i][j - 1] + B[i][j + 1] + B[i + 1][j] + B[i - 1][j]);
      }}
    }}
  }}
}}

void dataflow(float A[{N}][{N}], float B[{N}][{N}], int tsteps) {{
  jacobi_kernel(A, B, tsteps);
}}
"""
    return Workload(
        name="jacobi-2d",
        source=source,
        category="polybench",
        data={"tsteps": TSTEPS},
        dynamic_sweeps={"tsteps": (1, 2, 4)},
    )


def _seidel_2d() -> Workload:
    source = f"""
void seidel_kernel(float A[{N}][{N}], int tsteps) {{
  for (int t = 0; t < tsteps; t++) {{
    for (int i = 1; i < {N - 1}; i++) {{
      for (int j = 1; j < {N - 1}; j++) {{
        A[i][j] = (A[i - 1][j - 1] + A[i - 1][j] + A[i - 1][j + 1]
          + A[i][j - 1] + A[i][j] + A[i][j + 1]
          + A[i + 1][j - 1] + A[i + 1][j] + A[i + 1][j + 1]) / 9.0;
      }}
    }}
  }}
}}

void dataflow(float A[{N}][{N}], int tsteps) {{
  seidel_kernel(A, tsteps);
}}
"""
    return Workload(
        name="seidel-2d",
        source=source,
        category="polybench",
        data={"tsteps": TSTEPS},
        dynamic_sweeps={"tsteps": (1, 2, 4)},
    )


def polybench_suite() -> list[Workload]:
    """All ten Polybench workloads, in the paper's order."""
    return [
        _adi(),
        _atax(),
        _bicg(),
        _correlation(),
        _covariance(),
        _deriche(),
        _fdtd_2d(),
        _heat_3d(),
        _jacobi_2d(),
        _seidel_2d(),
    ]
