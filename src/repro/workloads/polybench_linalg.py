"""Polybench linear-algebra kernels in the mini dataflow language.

The paper's real-world case study (§7.4) compiles PolyBench *Gemm* onto
TPU-style loop schedules; this module supplies Gemm itself plus the rest
of the PolyBench linear-algebra subset expressible without ``sqrt``:

``gemm, 2mm, 3mm, mvt, gemver, gesummv, symm, syrk, syr2k, trmm,
trisolv, lu, doitgen, durbin``

As with :mod:`repro.workloads.polybench`, problem sizes are scaled down
(N≈8) so the cycle simulator profiles each kernel quickly while the
loop-nest structure, dependence patterns and reduction shapes match the
reference suite.  Each workload carries a ``ni``-style scalar runtime
input wherever the reference kernel's bounds are parametric, making the
top loop genuinely input-dependent (Class II) for the dynamic
calibration experiments.
"""

from __future__ import annotations

from .base import Workload

N = 8

LINALG_NAMES = (
    "gemm",
    "2mm",
    "3mm",
    "mvt",
    "gemver",
    "gesummv",
    "symm",
    "syrk",
    "syr2k",
    "trmm",
    "trisolv",
    "lu",
    "doitgen",
    "durbin",
)


def _gemm() -> Workload:
    source = f"""
void gemm_kernel(float A[{N}][{N}], float B[{N}][{N}], float C[{N}][{N}], int ni) {{
  for (int i = 0; i < ni; i++) {{
    for (int j = 0; j < {N}; j++) {{
      C[i][j] = C[i][j] * 1.2;
      for (int k = 0; k < {N}; k++) {{
        C[i][j] = C[i][j] + 1.5 * A[i][k] * B[k][j];
      }}
    }}
  }}
}}

void dataflow(float A[{N}][{N}], float B[{N}][{N}], float C[{N}][{N}], int ni) {{
  gemm_kernel(A, B, C, ni);
}}
"""
    return Workload(
        name="gemm",
        source=source,
        category="polybench-linalg",
        data={"ni": N},
        dynamic_sweeps={"ni": (4, 6, 8)},
    )


def _2mm() -> Workload:
    source = f"""
void mm_first(float A[{N}][{N}], float B[{N}][{N}], float tmp[{N}][{N}], int ni) {{
  for (int i = 0; i < ni; i++) {{
    for (int j = 0; j < {N}; j++) {{
      tmp[i][j] = 0.0;
      for (int k = 0; k < {N}; k++) {{
        tmp[i][j] = tmp[i][j] + 1.5 * A[i][k] * B[k][j];
      }}
    }}
  }}
}}

void mm_second(float tmp[{N}][{N}], float C[{N}][{N}], float D[{N}][{N}], int ni) {{
  for (int i = 0; i < ni; i++) {{
    for (int j = 0; j < {N}; j++) {{
      D[i][j] = D[i][j] * 1.2;
      for (int k = 0; k < {N}; k++) {{
        D[i][j] = D[i][j] + tmp[i][k] * C[k][j];
      }}
    }}
  }}
}}

void dataflow(float A[{N}][{N}], float B[{N}][{N}], float C[{N}][{N}], float D[{N}][{N}], float tmp[{N}][{N}], int ni) {{
  mm_first(A, B, tmp, ni);
  mm_second(tmp, C, D, ni);
}}
"""
    return Workload(
        name="2mm",
        source=source,
        category="polybench-linalg",
        data={"ni": N},
        dynamic_sweeps={"ni": (4, 6, 8)},
    )


def _3mm() -> Workload:
    source = f"""
void mm_e(float A[{N}][{N}], float B[{N}][{N}], float E[{N}][{N}], int ni) {{
  for (int i = 0; i < ni; i++) {{
    for (int j = 0; j < {N}; j++) {{
      E[i][j] = 0.0;
      for (int k = 0; k < {N}; k++) {{
        E[i][j] = E[i][j] + A[i][k] * B[k][j];
      }}
    }}
  }}
}}

void mm_f(float C[{N}][{N}], float D[{N}][{N}], float F[{N}][{N}], int ni) {{
  for (int i = 0; i < ni; i++) {{
    for (int j = 0; j < {N}; j++) {{
      F[i][j] = 0.0;
      for (int k = 0; k < {N}; k++) {{
        F[i][j] = F[i][j] + C[i][k] * D[k][j];
      }}
    }}
  }}
}}

void mm_g(float E[{N}][{N}], float F[{N}][{N}], float G[{N}][{N}], int ni) {{
  for (int i = 0; i < ni; i++) {{
    for (int j = 0; j < {N}; j++) {{
      G[i][j] = 0.0;
      for (int k = 0; k < {N}; k++) {{
        G[i][j] = G[i][j] + E[i][k] * F[k][j];
      }}
    }}
  }}
}}

void dataflow(float A[{N}][{N}], float B[{N}][{N}], float C[{N}][{N}], float D[{N}][{N}], float E[{N}][{N}], float F[{N}][{N}], float G[{N}][{N}], int ni) {{
  mm_e(A, B, E, ni);
  mm_f(C, D, F, ni);
  mm_g(E, F, G, ni);
}}
"""
    return Workload(
        name="3mm",
        source=source,
        category="polybench-linalg",
        data={"ni": N},
        dynamic_sweeps={"ni": (4, 6, 8)},
    )


def _mvt() -> Workload:
    source = f"""
void mvt_kernel(float A[{N}][{N}], float x1[{N}], float x2[{N}], float y1[{N}], float y2[{N}]) {{
  for (int i = 0; i < {N}; i++) {{
    for (int j = 0; j < {N}; j++) {{
      x1[i] = x1[i] + A[i][j] * y1[j];
    }}
  }}
  for (int i = 0; i < {N}; i++) {{
    for (int j = 0; j < {N}; j++) {{
      x2[i] = x2[i] + A[j][i] * y2[j];
    }}
  }}
}}

void dataflow(float A[{N}][{N}], float x1[{N}], float x2[{N}], float y1[{N}], float y2[{N}]) {{
  mvt_kernel(A, x1, x2, y1, y2);
}}
"""
    return Workload(name="mvt", source=source, category="polybench-linalg")


def _gemver() -> Workload:
    source = f"""
void rank_update(float A[{N}][{N}], float u1[{N}], float v1[{N}], float u2[{N}], float v2[{N}]) {{
  for (int i = 0; i < {N}; i++) {{
    for (int j = 0; j < {N}; j++) {{
      A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
    }}
  }}
}}

void gemv_trans(float A[{N}][{N}], float x[{N}], float y[{N}]) {{
  for (int i = 0; i < {N}; i++) {{
    for (int j = 0; j < {N}; j++) {{
      x[i] = x[i] + 1.2 * A[j][i] * y[j];
    }}
  }}
}}

void axpy(float x[{N}], float z[{N}]) {{
  for (int i = 0; i < {N}; i++) {{
    x[i] = x[i] + z[i];
  }}
}}

void gemv(float A[{N}][{N}], float x[{N}], float w[{N}]) {{
  for (int i = 0; i < {N}; i++) {{
    for (int j = 0; j < {N}; j++) {{
      w[i] = w[i] + 1.5 * A[i][j] * x[j];
    }}
  }}
}}

void dataflow(float A[{N}][{N}], float u1[{N}], float v1[{N}], float u2[{N}], float v2[{N}], float x[{N}], float y[{N}], float z[{N}], float w[{N}]) {{
  rank_update(A, u1, v1, u2, v2);
  gemv_trans(A, x, y);
  axpy(x, z);
  gemv(A, x, w);
}}
"""
    return Workload(name="gemver", source=source, category="polybench-linalg")


def _gesummv() -> Workload:
    source = f"""
void gesummv_kernel(float A[{N}][{N}], float B[{N}][{N}], float x[{N}], float y[{N}], float tmp[{N}], int n) {{
  for (int i = 0; i < n; i++) {{
    tmp[i] = 0.0;
    y[i] = 0.0;
    for (int j = 0; j < n; j++) {{
      tmp[i] = tmp[i] + A[i][j] * x[j];
      y[i] = y[i] + B[i][j] * x[j];
    }}
    y[i] = 1.5 * tmp[i] + 1.2 * y[i];
  }}
}}

void dataflow(float A[{N}][{N}], float B[{N}][{N}], float x[{N}], float y[{N}], float tmp[{N}], int n) {{
  gesummv_kernel(A, B, x, y, tmp, n);
}}
"""
    return Workload(
        name="gesummv",
        source=source,
        category="polybench-linalg",
        data={"n": N},
        dynamic_sweeps={"n": (4, 6, 8)},
    )


def _symm() -> Workload:
    source = f"""
void symm_kernel(float A[{N}][{N}], float B[{N}][{N}], float C[{N}][{N}]) {{
  for (int i = 0; i < {N}; i++) {{
    for (int j = 0; j < {N}; j++) {{
      float temp2 = 0.0;
      for (int k = 0; k < i; k++) {{
        C[k][j] = C[k][j] + 1.5 * B[i][j] * A[i][k];
        temp2 = temp2 + B[k][j] * A[i][k];
      }}
      C[i][j] = 1.2 * C[i][j] + 1.5 * B[i][j] * A[i][i] + 1.5 * temp2;
    }}
  }}
}}

void dataflow(float A[{N}][{N}], float B[{N}][{N}], float C[{N}][{N}]) {{
  symm_kernel(A, B, C);
}}
"""
    return Workload(name="symm", source=source, category="polybench-linalg")


def _syrk() -> Workload:
    source = f"""
void syrk_kernel(float A[{N}][{N}], float C[{N}][{N}]) {{
  for (int i = 0; i < {N}; i++) {{
    for (int j = 0; j <= i; j++) {{
      C[i][j] = C[i][j] * 1.2;
    }}
    for (int k = 0; k < {N}; k++) {{
      for (int j = 0; j <= i; j++) {{
        C[i][j] = C[i][j] + 1.5 * A[i][k] * A[j][k];
      }}
    }}
  }}
}}

void dataflow(float A[{N}][{N}], float C[{N}][{N}]) {{
  syrk_kernel(A, C);
}}
"""
    return Workload(name="syrk", source=source, category="polybench-linalg")


def _syr2k() -> Workload:
    source = f"""
void syr2k_kernel(float A[{N}][{N}], float B[{N}][{N}], float C[{N}][{N}]) {{
  for (int i = 0; i < {N}; i++) {{
    for (int j = 0; j <= i; j++) {{
      C[i][j] = C[i][j] * 1.2;
    }}
    for (int k = 0; k < {N}; k++) {{
      for (int j = 0; j <= i; j++) {{
        C[i][j] = C[i][j] + A[j][k] * 1.5 * B[i][k] + B[j][k] * 1.5 * A[i][k];
      }}
    }}
  }}
}}

void dataflow(float A[{N}][{N}], float B[{N}][{N}], float C[{N}][{N}]) {{
  syr2k_kernel(A, B, C);
}}
"""
    return Workload(name="syr2k", source=source, category="polybench-linalg")


def _trmm() -> Workload:
    source = f"""
void trmm_kernel(float A[{N}][{N}], float B[{N}][{N}]) {{
  for (int i = 0; i < {N}; i++) {{
    for (int j = 0; j < {N}; j++) {{
      for (int k = i + 1; k < {N}; k++) {{
        B[i][j] = B[i][j] + A[k][i] * B[k][j];
      }}
      B[i][j] = 1.5 * B[i][j];
    }}
  }}
}}

void dataflow(float A[{N}][{N}], float B[{N}][{N}]) {{
  trmm_kernel(A, B);
}}
"""
    return Workload(name="trmm", source=source, category="polybench-linalg")


def _trisolv() -> Workload:
    source = f"""
void trisolv_kernel(float L[{N}][{N}], float x[{N}], float b[{N}]) {{
  for (int i = 0; i < {N}; i++) {{
    x[i] = b[i];
    for (int j = 0; j < i; j++) {{
      x[i] = x[i] - L[i][j] * x[j];
    }}
    x[i] = x[i] / (L[i][i] + 1.0);
  }}
}}

void dataflow(float L[{N}][{N}], float x[{N}], float b[{N}]) {{
  trisolv_kernel(L, x, b);
}}
"""
    return Workload(name="trisolv", source=source, category="polybench-linalg")


def _lu() -> Workload:
    source = f"""
void lu_kernel(float A[{N}][{N}]) {{
  for (int i = 0; i < {N}; i++) {{
    for (int j = 0; j < i; j++) {{
      for (int k = 0; k < j; k++) {{
        A[i][j] = A[i][j] - A[i][k] * A[k][j];
      }}
      A[i][j] = A[i][j] / (A[j][j] + 1.0);
    }}
    for (int j = i; j < {N}; j++) {{
      for (int k = 0; k < i; k++) {{
        A[i][j] = A[i][j] - A[i][k] * A[k][j];
      }}
    }}
  }}
}}

void dataflow(float A[{N}][{N}]) {{
  lu_kernel(A);
}}
"""
    return Workload(name="lu", source=source, category="polybench-linalg")


def _doitgen() -> Workload:
    source = f"""
void doitgen_kernel(float A[{N}][{N}][{N}], float C4[{N}][{N}], float sum[{N}]) {{
  for (int r = 0; r < {N}; r++) {{
    for (int q = 0; q < {N}; q++) {{
      for (int p = 0; p < {N}; p++) {{
        sum[p] = 0.0;
        for (int s = 0; s < {N}; s++) {{
          sum[p] = sum[p] + A[r][q][s] * C4[s][p];
        }}
      }}
      for (int p = 0; p < {N}; p++) {{
        A[r][q][p] = sum[p];
      }}
    }}
  }}
}}

void dataflow(float A[{N}][{N}][{N}], float C4[{N}][{N}], float sum[{N}]) {{
  doitgen_kernel(A, C4, sum);
}}
"""
    return Workload(name="doitgen", source=source, category="polybench-linalg")


def _durbin() -> Workload:
    source = f"""
void durbin_kernel(float r[{N}], float y[{N}], float z[{N}], int n) {{
  float alpha = 0.0 - r[0];
  float beta = 1.0;
  y[0] = 0.0 - r[0];
  for (int k = 1; k < n; k++) {{
    beta = (1.0 - alpha * alpha) * beta;
    float sum = 0.0;
    for (int i = 0; i < k; i++) {{
      sum = sum + r[k - i - 1] * y[i];
    }}
    alpha = 0.0 - (r[k] + sum) / (beta + 1.0);
    for (int i = 0; i < k; i++) {{
      z[i] = y[i] + alpha * y[k - i - 1];
    }}
    for (int i = 0; i < k; i++) {{
      y[i] = z[i];
    }}
    y[k] = alpha;
  }}
}}

void dataflow(float r[{N}], float y[{N}], float z[{N}], int n) {{
  durbin_kernel(r, y, z, n);
}}
"""
    return Workload(
        name="durbin",
        source=source,
        category="polybench-linalg",
        data={"n": N},
        dynamic_sweeps={"n": (4, 6, 8)},
    )


_BUILDERS = {
    "gemm": _gemm,
    "2mm": _2mm,
    "3mm": _3mm,
    "mvt": _mvt,
    "gemver": _gemver,
    "gesummv": _gesummv,
    "symm": _symm,
    "syrk": _syrk,
    "syr2k": _syr2k,
    "trmm": _trmm,
    "trisolv": _trisolv,
    "lu": _lu,
    "doitgen": _doitgen,
    "durbin": _durbin,
}


def linalg_workload(name: str) -> Workload:
    """Build one linear-algebra workload by name."""
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown linear-algebra kernel {name!r}; "
            f"choose from {', '.join(LINALG_NAMES)}"
        ) from None


def linalg_suite() -> list[Workload]:
    """All fourteen linear-algebra workloads, in declaration order."""
    return [linalg_workload(name) for name in LINALG_NAMES]
