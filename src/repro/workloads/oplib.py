"""Operator source library for the modern-workload suite.

Each factory returns the source text of one operator function over
``D×D`` tiles.  Signatures follow three shapes:

* unary:   ``void f(float src[D][D], float dst[D][D])``
* weighted:``void f(float src[D][D], float w[D][D], float dst[D][D])``
* dynamic: extra trailing ``int`` scalars that steer control flow.

The modern workloads compose these into dataflow graphs via
:class:`repro.workloads.modern.WorkloadBuilder`.
"""

from __future__ import annotations

D = 8  # tile size shared by the modern workloads


def conv3x3(name: str) -> str:
    """3×3 same-padding convolution over a D×D tile (single channel)."""
    return f"""
void {name}(float src[{D}][{D}], float w[{D}][{D}], float dst[{D}][{D}]) {{
  for (int i = 1; i < {D - 1}; i++) {{
    for (int j = 1; j < {D - 1}; j++) {{
      float acc = 0.0;
      for (int u = 0; u < 3; u++) {{
        for (int v = 0; v < 3; v++) {{
          acc = acc + src[i + u - 1][j + v - 1] * w[u][v];
        }}
      }}
      dst[i][j] = acc;
    }}
  }}
}}
"""


def conv5x5_depthwise(name: str) -> str:
    """5×5 depthwise convolution variant (stride 1, interior)."""
    return f"""
void {name}(float src[{D}][{D}], float w[{D}][{D}], float dst[{D}][{D}]) {{
  for (int i = 2; i < {D - 2}; i++) {{
    for (int j = 2; j < {D - 2}; j++) {{
      float acc = 0.0;
      for (int u = 0; u < 5; u++) {{
        for (int v = 0; v < 5; v++) {{
          acc = acc + src[i + u - 2][j + v - 2] * w[u][v];
        }}
      }}
      dst[i][j] = acc;
    }}
  }}
}}
"""


def dilated_conv(name: str, rate: int = 2) -> str:
    """3×3 convolution with dilation *rate* (multi-scale aggregation)."""
    return f"""
void {name}(float src[{D}][{D}], float w[{D}][{D}], float dst[{D}][{D}]) {{
  for (int i = {rate}; i < {D - rate}; i++) {{
    for (int j = {rate}; j < {D - rate}; j++) {{
      float acc = 0.0;
      for (int u = 0; u < 3; u++) {{
        for (int v = 0; v < 3; v++) {{
          acc = acc + src[i + (u - 1) * {rate}][j + (v - 1) * {rate}] * w[u][v];
        }}
      }}
      dst[i][j] = acc;
    }}
  }}
}}
"""


def pointwise(name: str) -> str:
    """1×1 (pointwise) convolution: per-pixel scale from w[0][0..]."""
    return f"""
void {name}(float src[{D}][{D}], float w[{D}][{D}], float dst[{D}][{D}]) {{
  for (int i = 0; i < {D}; i++) {{
    for (int j = 0; j < {D}; j++) {{
      dst[i][j] = src[i][j] * w[0][0] + w[0][1];
    }}
  }}
}}
"""


def relu(name: str) -> str:
    """ReLU: data-dependent branch per element (Class II)."""
    return f"""
void {name}(float src[{D}][{D}], float dst[{D}][{D}]) {{
  for (int i = 0; i < {D}; i++) {{
    for (int j = 0; j < {D}; j++) {{
      if (src[i][j] > 0.0) {{
        dst[i][j] = src[i][j];
      }} else {{
        dst[i][j] = 0.0;
      }}
    }}
  }}
}}
"""


def leaky_relu(name: str) -> str:
    return f"""
void {name}(float src[{D}][{D}], float dst[{D}][{D}]) {{
  for (int i = 0; i < {D}; i++) {{
    for (int j = 0; j < {D}; j++) {{
      if (src[i][j] > 0.0) {{
        dst[i][j] = src[i][j];
      }} else {{
        dst[i][j] = src[i][j] * 0.1;
      }}
    }}
  }}
}}
"""


def add_residual(name: str) -> str:
    """Residual/skip connection: elementwise add (Class I)."""
    return f"""
void {name}(float src[{D}][{D}], float skip[{D}][{D}], float dst[{D}][{D}]) {{
  for (int i = 0; i < {D}; i++) {{
    for (int j = 0; j < {D}; j++) {{
      dst[i][j] = src[i][j] + skip[i][j];
    }}
  }}
}}
"""


def batch_norm(name: str) -> str:
    """Image normalization: subtract mean, divide by scaled variance."""
    return f"""
void {name}(float src[{D}][{D}], float dst[{D}][{D}]) {{
  float mean = 0.0;
  float var = 0.0;
  for (int i = 0; i < {D}; i++) {{
    for (int j = 0; j < {D}; j++) {{
      mean = mean + src[i][j];
    }}
  }}
  mean = mean / {D * D}.0;
  for (int i = 0; i < {D}; i++) {{
    for (int j = 0; j < {D}; j++) {{
      var = var + (src[i][j] - mean) * (src[i][j] - mean);
    }}
  }}
  var = var / {D * D}.0 + 0.001;
  for (int i = 0; i < {D}; i++) {{
    for (int j = 0; j < {D}; j++) {{
      dst[i][j] = (src[i][j] - mean) / var;
    }}
  }}
}}
"""


def rms_norm(name: str) -> str:
    """RMSNorm (LLaMA-style): divide by root-mean-square proxy."""
    return f"""
void {name}(float src[{D}][{D}], float dst[{D}][{D}]) {{
  for (int i = 0; i < {D}; i++) {{
    float ss = 0.0;
    for (int j = 0; j < {D}; j++) {{
      ss = ss + src[i][j] * src[i][j];
    }}
    ss = ss / {D}.0 + 0.001;
    for (int j = 0; j < {D}; j++) {{
      dst[i][j] = src[i][j] / ss;
    }}
  }}
}}
"""


def max_pool(name: str, window: int = 2) -> str:
    """Max pooling with a data-dependent comparison branch."""
    return f"""
void {name}(float src[{D}][{D}], float dst[{D}][{D}]) {{
  for (int i = 0; i < {D}; i += {window}) {{
    for (int j = 0; j < {D}; j += {window}) {{
      float best = src[i][j];
      for (int u = 0; u < {window}; u++) {{
        for (int v = 0; v < {window}; v++) {{
          if (src[i + u][j + v] > best) {{
            best = src[i + u][j + v];
          }}
        }}
      }}
      dst[i][j] = best;
    }}
  }}
}}
"""


def spp_pool(name: str) -> str:
    """Spatial pyramid pooling: three pooling scales accumulated."""
    return f"""
void {name}(float src[{D}][{D}], float dst[{D}][{D}]) {{
  for (int s = 1; s <= 4; s = s * 2) {{
    for (int i = 0; i < {D}; i += s) {{
      for (int j = 0; j < {D}; j += s) {{
        float acc = 0.0;
        for (int u = 0; u < s; u++) {{
          for (int v = 0; v < s; v++) {{
            acc = acc + src[i + u][j + v];
          }}
        }}
        dst[i][j] = dst[i][j] + acc / (s * s);
      }}
    }}
  }}
}}
"""


def fusion_add(name: str) -> str:
    """Feature fusion: weighted combination of two maps."""
    return f"""
void {name}(float src[{D}][{D}], float other[{D}][{D}], float dst[{D}][{D}]) {{
  for (int i = 0; i < {D}; i++) {{
    for (int j = 0; j < {D}; j++) {{
      dst[i][j] = 0.6 * src[i][j] + 0.4 * other[i][j];
    }}
  }}
}}
"""


def upsample2x(name: str) -> str:
    """Nearest-neighbour 2× upsample of the top-left quadrant."""
    return f"""
void {name}(float src[{D}][{D}], float dst[{D}][{D}]) {{
  for (int i = 0; i < {D}; i++) {{
    for (int j = 0; j < {D}; j++) {{
      dst[i][j] = src[i / 2][j / 2];
    }}
  }}
}}
"""


def matmul(name: str) -> str:
    """Dense matmul (transformer projection / gemm)."""
    return f"""
void {name}(float src[{D}][{D}], float w[{D}][{D}], float dst[{D}][{D}]) {{
  for (int i = 0; i < {D}; i++) {{
    for (int j = 0; j < {D}; j++) {{
      float acc = 0.0;
      for (int k = 0; k < {D}; k++) {{
        acc = acc + src[i][k] * w[k][j];
      }}
      dst[i][j] = acc;
    }}
  }}
}}
"""


def row_softmax(name: str) -> str:
    """Softmax substitute: shift by row max (branchy) and normalize by
    the row sum of shifted scores."""
    return f"""
void {name}(float src[{D}][{D}], float dst[{D}][{D}]) {{
  for (int i = 0; i < {D}; i++) {{
    float best = src[i][0];
    for (int j = 1; j < {D}; j++) {{
      if (src[i][j] > best) {{
        best = src[i][j];
      }}
    }}
    float total = 0.0;
    for (int j = 0; j < {D}; j++) {{
      dst[i][j] = src[i][j] - best + 1.0;
      if (dst[i][j] < 0.0) {{
        dst[i][j] = 0.0;
      }}
      total = total + dst[i][j];
    }}
    if (total <= 0.0) {{
      total = 1.0;
    }}
    for (int j = 0; j < {D}; j++) {{
      dst[i][j] = dst[i][j] / total;
    }}
  }}
}}
"""


def gelu_poly(name: str) -> str:
    """Polynomial GELU approximation (no exp in the language)."""
    return f"""
void {name}(float src[{D}][{D}], float dst[{D}][{D}]) {{
  for (int i = 0; i < {D}; i++) {{
    for (int j = 0; j < {D}; j++) {{
      float x = src[i][j];
      float t = 0.5 * x * (1.0 + 0.7978 * (x + 0.044715 * x * x * x));
      if (t > 6.0) {{
        t = 6.0;
      }}
      dst[i][j] = t;
    }}
  }}
}}
"""


def swiglu(name: str) -> str:
    """SwiGLU-style gated activation: gate branch times value."""
    return f"""
void {name}(float src[{D}][{D}], float gate[{D}][{D}], float dst[{D}][{D}]) {{
  for (int i = 0; i < {D}; i++) {{
    for (int j = 0; j < {D}; j++) {{
      float g = gate[i][j];
      if (g < 0.0) {{
        g = g * 0.1;
      }}
      dst[i][j] = src[i][j] * g;
    }}
  }}
}}
"""


def embed_lookup(name: str) -> str:
    """Token embedding lookup: integer ids gather table rows."""
    return f"""
void {name}(int ids[{D}], float table[{D}][{D}], float dst[{D}][{D}]) {{
  for (int i = 0; i < {D}; i++) {{
    int t = ids[i];
    if (t < 0) {{
      t = 0;
    }}
    if (t >= {D}) {{
      t = {D - 1};
    }}
    for (int j = 0; j < {D}; j++) {{
      dst[i][j] = table[t][j];
    }}
  }}
}}
"""


def roi_crop(name: str) -> str:
    """RoIAlign-style crop: bounds come from runtime scalars (Class II)."""
    return f"""
void {name}(float src[{D}][{D}], float dst[{D}][{D}], int h, int w) {{
  for (int i = 0; i < h; i++) {{
    for (int j = 0; j < w; j++) {{
      dst[i][j] = 0.25 * (src[i][j] + src[i + 1][j] + src[i][j + 1] + src[i + 1][j + 1]);
    }}
  }}
}}
"""


def anchor_gen(name: str) -> str:
    """Anchor generation: regular coordinate grid writes (Class I)."""
    return f"""
void {name}(float dst[{D}][{D}]) {{
  for (int i = 0; i < {D}; i++) {{
    for (int j = 0; j < {D}; j++) {{
      dst[i][j] = 1.0 * i * {D} + 1.0 * j;
    }}
  }}
}}
"""


def grid_sample(name: str) -> str:
    """BEV-style grid sampling: computed source coordinates."""
    return f"""
void {name}(float src[{D}][{D}], float grid[{D}][{D}], float dst[{D}][{D}]) {{
  for (int i = 0; i < {D}; i++) {{
    for (int j = 0; j < {D}; j++) {{
      int u = i;
      int v = j;
      if (grid[i][j] > 0.0) {{
        u = i / 2;
        v = j / 2;
      }}
      dst[i][j] = src[u][v];
    }}
  }}
}}
"""


def channel_mean(name: str) -> str:
    """CBAM channel attention: per-row mean statistics."""
    return f"""
void {name}(float src[{D}][{D}], float dst[{D}][{D}]) {{
  for (int i = 0; i < {D}; i++) {{
    float acc = 0.0;
    for (int j = 0; j < {D}; j++) {{
      acc = acc + src[i][j];
    }}
    acc = acc / {D}.0;
    for (int j = 0; j < {D}; j++) {{
      dst[i][j] = acc;
    }}
  }}
}}
"""


def spatial_gate(name: str) -> str:
    """CBAM spatial attention: sigmoid-like gate via clamped linear."""
    return f"""
void {name}(float src[{D}][{D}], float attn[{D}][{D}], float dst[{D}][{D}]) {{
  for (int i = 0; i < {D}; i++) {{
    for (int j = 0; j < {D}; j++) {{
      float g = 0.5 + 0.25 * attn[i][j];
      if (g < 0.0) {{
        g = 0.0;
      }}
      if (g > 1.0) {{
        g = 1.0;
      }}
      dst[i][j] = src[i][j] * g;
    }}
  }}
}}
"""


def seq_scan(name: str) -> str:
    """Text-length dependent scan: loop bound is a runtime scalar."""
    return f"""
void {name}(float src[{D}][{D}], float dst[{D}][{D}], int len) {{
  for (int i = 0; i < len; i++) {{
    for (int j = 0; j < {D}; j++) {{
      dst[i][j] = src[i][j] * 0.9 + 0.1;
    }}
  }}
}}
"""
