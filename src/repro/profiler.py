"""Ground-truth profiling oracle.

One façade over the whole EDA substrate: given ``{G+Op program, Params,
data}`` it returns the paper's label vector ``<Power, Area, Flip-Flops,
Cycles>`` plus the RTL reasoning features.  This plays the role of
SiliconCompiler + Bambu + OpenROAD + Verilator in the paper's pipeline.

Performance layer (parity-tested against the one-shot path):

* The *static* pipeline (allocate → synthesize → power → RTL features)
  depends only on ``(program, HardwareParams)``, so it is factored into
  a :class:`StaticProfile` and memoized in a :class:`StaticProfileCache`
  keyed by ``(program digest, params)``.  Input sweeps, calibration
  environments and DSE candidate re-evaluation pay the static cost once.
* The *dynamic* metric (cycles) is simulated by a selectable backend:
  ``backend="compiled"`` (closure-compiled, default) or ``"interp"``
  (the original tree-walking interpreter) — identical results either
  way (see ``tests/test_sim_compiler.py``).
* :class:`BatchProfiler` fans many profiling jobs out over a bounded
  process pool, chunked by program digest so each worker's
  static-profile and compile caches hit.
"""

from __future__ import annotations

import os
import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

import numpy as np

from .asicflow import PowerReport, SynthesisResult, estimate_power, synthesize
from .errors import SimulationError
from .hls import (
    AllocationResult,
    HardwareParams,
    RtlFeatures,
    allocate_program,
    extract_rtl_features,
)
from .lang import ast, parse
from .sim import default_inputs, make_simulator, program_digest

METRICS = ("power", "area", "ff", "cycles")
STATIC_METRICS = ("power", "area", "ff")
DYNAMIC_METRICS = ("cycles",)


@dataclass(frozen=True)
class CostVector:
    """The paper's multidimensional performance metric vector."""

    power_uw: int
    area_um2: int
    flip_flops: int
    cycles: int

    def __getitem__(self, metric: str) -> int:
        if metric == "power":
            return self.power_uw
        if metric == "area":
            return self.area_um2
        if metric == "ff":
            return self.flip_flops
        if metric == "cycles":
            return self.cycles
        raise KeyError(metric)

    def as_dict(self) -> dict[str, int]:
        return {metric: self[metric] for metric in METRICS}


@dataclass
class ProfileReport:
    """Full profiling output: labels plus reasoning features."""

    costs: CostVector
    rtl: RtlFeatures
    longest_path_ns: float
    ops_executed: int


@dataclass(frozen=True)
class StaticProfile:
    """Everything the EDA substrate derives from ``(program, params)``
    alone — valid for any runtime inputs of the same design."""

    digest: str
    params: HardwareParams
    allocation: AllocationResult
    synthesis: SynthesisResult
    power: PowerReport
    rtl: RtlFeatures


def compute_static_profile(
    program: ast.Program,
    params: HardwareParams,
    digest: Optional[str] = None,
) -> StaticProfile:
    """Run the static pipeline once (no caching)."""
    allocation = allocate_program(program)
    synthesis = synthesize(program, params, allocation=allocation)
    power = estimate_power(program, params, allocation=allocation, synthesis=synthesis)
    rtl = extract_rtl_features(program, params, allocation=allocation)
    return StaticProfile(
        digest=digest or program_digest(program),
        params=params,
        allocation=allocation,
        synthesis=synthesis,
        power=power,
        rtl=rtl,
    )


class StaticProfileCache:
    """Bounded LRU of :class:`StaticProfile` keyed by (digest, params).

    Static results are deterministic functions of the key, so sharing a
    cache across profilers (or the process-wide default) never changes
    any label — it only skips recomputation.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        self._maxsize = maxsize
        self._entries: "OrderedDict[tuple[str, HardwareParams], StaticProfile]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(
        self,
        program: ast.Program,
        params: HardwareParams,
        digest: Optional[str] = None,
    ) -> StaticProfile:
        digest = digest or program_digest(program)
        key = (digest, params)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
        static = compute_static_profile(program, params, digest=digest)
        with self._lock:
            self._entries[key] = static
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
        return static

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


# Process-wide default cache.  Deterministic contents; bounded size.
GLOBAL_STATIC_CACHE = StaticProfileCache()


class Profiler:
    """Profiles dataflow programs end to end.

    Static metrics (power, area, FF) come from the HLS allocation and
    the ASIC flow, memoized per ``(program digest, params)``; the
    dynamic metric (cycles) comes from simulating the top function on
    concrete inputs with the selected backend.
    """

    def __init__(
        self,
        params: Optional[HardwareParams] = None,
        max_steps: int = 5_000_000,
        backend: str = "compiled",
        static_cache: Optional[StaticProfileCache] = None,
        memoize: bool = True,
    ) -> None:
        self.params = params or HardwareParams()
        self._max_steps = max_steps
        self._backend = backend
        self._static_cache = (
            static_cache if static_cache is not None else GLOBAL_STATIC_CACHE
        )
        self._memoize = memoize

    def static_profile(
        self, program: ast.Program | str, digest: Optional[str] = None
    ) -> StaticProfile:
        """The memoized static half of :meth:`profile`."""
        if isinstance(program, str):
            program = parse(program)
        if self._memoize:
            return self._static_cache.get(program, self.params, digest=digest)
        return compute_static_profile(program, self.params, digest=digest)

    def profile(
        self,
        program: ast.Program | str,
        data: Optional[dict[str, Any]] = None,
        top: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> ProfileReport:
        """Profile *program* (AST or source text).

        ``data`` provides runtime inputs for the top function; anything
        missing is synthesized deterministically.  ``top`` defaults to
        the conventional graph function.
        """
        if isinstance(program, str):
            program = parse(program)
        # One serialization+hash per call, shared by the static cache
        # and the compile cache.
        digest = program_digest(program)
        static = self.static_profile(program, digest=digest)
        top = top or _default_top(program)
        inputs = default_inputs(program, top, rng=rng, overrides=data)
        simulator = make_simulator(
            program,
            self.params,
            max_steps=self._max_steps,
            backend=self._backend,
            digest=digest,
        )
        simulation = simulator.run(top, inputs)
        costs = CostVector(
            power_uw=static.power.total_uw,
            area_um2=static.synthesis.area_um2,
            flip_flops=static.synthesis.flip_flops,
            cycles=simulation.cycles,
        )
        return ProfileReport(
            costs=costs,
            rtl=static.rtl,
            longest_path_ns=static.synthesis.longest_path_ns,
            ops_executed=simulation.ops_executed,
        )


def _default_top(program: ast.Program) -> str:
    for candidate in ("dataflow", "graph", "main", "top"):
        if candidate in program.function_names:
            return candidate
    return program.function_names[-1]


def profile(
    program: ast.Program | str,
    params: Optional[HardwareParams] = None,
    data: Optional[dict[str, Any]] = None,
    top: Optional[str] = None,
) -> CostVector:
    """Convenience one-shot profiling returning just the cost vector."""
    return Profiler(params).profile(program, data=data, top=top).costs


# -- batched profiling --------------------------------------------------


@dataclass(frozen=True)
class ProfileJob:
    """One profiling request for :class:`BatchProfiler`.

    ``seed`` feeds the deterministic runtime-input generator (matching
    ``Profiler.profile(rng=np.random.default_rng(seed))``); ``params``
    falls back to the batch profiler's default.
    """

    program: Any  # ast.Program | str
    data: Optional[dict[str, Any]] = None
    params: Optional[HardwareParams] = None
    top: Optional[str] = None
    seed: int = 0


def _profile_one(
    job: ProfileJob,
    default_params: HardwareParams,
    max_steps: int,
    backend: str,
    static_cache: Optional[StaticProfileCache],
) -> Optional[ProfileReport]:
    profiler = Profiler(
        job.params or default_params,
        max_steps=max_steps,
        backend=backend,
        static_cache=static_cache,
    )
    try:
        return profiler.profile(
            job.program,
            data=job.data,
            top=job.top,
            rng=np.random.default_rng(job.seed),
        )
    except SimulationError:
        return None


def _run_chunk(
    payload: tuple[list[ProfileJob], HardwareParams, int, str]
) -> list[Optional[ProfileReport]]:
    """Worker entry point: profile one digest-chunk of jobs.

    Runs in a pool process; the process-local GLOBAL_STATIC_CACHE and
    compile cache serve every job of the chunk after the first.
    """
    jobs, default_params, max_steps, backend = payload
    return [
        _profile_one(job, default_params, max_steps, backend, None) for job in jobs
    ]


class BatchProfiler:
    """Profiles many jobs with shared caches and optional fan-out.

    Jobs are grouped by program digest; each group is dispatched as one
    unit so a worker computes the group's static profiles and compiled
    lowering once.  ``max_workers<=1`` (or a pool failure) degrades to
    the serial path, which still shares this profiler's static cache.
    Failed simulations yield ``None`` in the result list, mirroring how
    the corpus builders skip :class:`SimulationError` programs.
    """

    def __init__(
        self,
        params: Optional[HardwareParams] = None,
        max_steps: int = 5_000_000,
        backend: str = "compiled",
        max_workers: Optional[int] = None,
        static_cache: Optional[StaticProfileCache] = None,
    ) -> None:
        self.params = params or HardwareParams()
        self._max_steps = max_steps
        self._backend = backend
        if max_workers is None:
            max_workers = min(8, os.cpu_count() or 1)
        self._max_workers = max(1, max_workers)
        self._static_cache = (
            static_cache if static_cache is not None else GLOBAL_STATIC_CACHE
        )

    def profile_many(
        self, jobs: Sequence[ProfileJob]
    ) -> list[Optional[ProfileReport]]:
        """Profile every job, preserving order; ``None`` marks failures."""
        jobs = [self._parsed(job) for job in jobs]
        if self._max_workers <= 1 or len(jobs) <= 2:
            return [self._serial_one(job) for job in jobs]
        chunks = self._chunk_by_digest(jobs)
        if len(chunks) == 1:
            # One program: the pool would recompute the shared static
            # profile in every worker; serial with a warm cache wins.
            return [self._serial_one(job) for job in jobs]
        try:
            return self._run_parallel(jobs, chunks)
        except Exception as exc:
            # Pool creation, pickling or mid-run worker failures degrade
            # to serial — never to a different answer — but loudly: a
            # systematic pool problem would otherwise masquerade as a
            # silent performance cliff.
            warnings.warn(
                f"BatchProfiler pool failed ({type(exc).__name__}: {exc}); "
                f"re-profiling {len(jobs)} jobs serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return [self._serial_one(job) for job in jobs]

    def profile_programs(
        self,
        programs: Iterable[Any],
        data: Optional[dict[str, Any]] = None,
        seed: int = 0,
    ) -> list[Optional[ProfileReport]]:
        """Convenience wrapper: one job per program, shared data/seed."""
        return self.profile_many(
            [ProfileJob(program=p, data=data, seed=seed) for p in programs]
        )

    # -- internals -----------------------------------------------------

    @staticmethod
    def _parsed(job: ProfileJob) -> ProfileJob:
        if isinstance(job.program, str):
            return ProfileJob(
                program=parse(job.program),
                data=job.data,
                params=job.params,
                top=job.top,
                seed=job.seed,
            )
        return job

    def _serial_one(self, job: ProfileJob) -> Optional[ProfileReport]:
        return _profile_one(
            job, self.params, self._max_steps, self._backend, self._static_cache
        )

    @staticmethod
    def _chunk_by_digest(jobs: list[ProfileJob]) -> list[list[int]]:
        groups: "OrderedDict[str, list[int]]" = OrderedDict()
        for index, job in enumerate(jobs):
            groups.setdefault(program_digest(job.program), []).append(index)
        return list(groups.values())

    def _run_parallel(
        self, jobs: list[ProfileJob], chunks: list[list[int]]
    ) -> list[Optional[ProfileReport]]:
        from concurrent.futures import ProcessPoolExecutor

        results: list[Optional[ProfileReport]] = [None] * len(jobs)
        workers = min(self._max_workers, len(chunks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            payloads = [
                ([jobs[i] for i in indices], self.params, self._max_steps, self._backend)
                for indices in chunks
            ]
            for indices, chunk_results in zip(chunks, pool.map(_run_chunk, payloads)):
                for index, report in zip(indices, chunk_results):
                    results[index] = report
        return results
