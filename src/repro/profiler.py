"""Ground-truth profiling oracle.

One façade over the whole EDA substrate: given ``{G+Op program, Params,
data}`` it returns the paper's label vector ``<Power, Area, Flip-Flops,
Cycles>`` plus the RTL reasoning features.  This plays the role of
SiliconCompiler + Bambu + OpenROAD + Verilator in the paper's pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from .asicflow import estimate_power, synthesize
from .hls import HardwareParams, RtlFeatures, allocate_program, extract_rtl_features
from .lang import ast, parse
from .sim import Interpreter, default_inputs

METRICS = ("power", "area", "ff", "cycles")
STATIC_METRICS = ("power", "area", "ff")
DYNAMIC_METRICS = ("cycles",)


@dataclass(frozen=True)
class CostVector:
    """The paper's multidimensional performance metric vector."""

    power_uw: int
    area_um2: int
    flip_flops: int
    cycles: int

    def __getitem__(self, metric: str) -> int:
        if metric == "power":
            return self.power_uw
        if metric == "area":
            return self.area_um2
        if metric == "ff":
            return self.flip_flops
        if metric == "cycles":
            return self.cycles
        raise KeyError(metric)

    def as_dict(self) -> dict[str, int]:
        return {metric: self[metric] for metric in METRICS}


@dataclass
class ProfileReport:
    """Full profiling output: labels plus reasoning features."""

    costs: CostVector
    rtl: RtlFeatures
    longest_path_ns: float
    ops_executed: int


class Profiler:
    """Profiles dataflow programs end to end.

    Static metrics (power, area, FF) come from the HLS allocation and
    the ASIC flow; the dynamic metric (cycles) comes from simulating the
    top function on concrete inputs.
    """

    def __init__(
        self,
        params: Optional[HardwareParams] = None,
        max_steps: int = 5_000_000,
    ) -> None:
        self.params = params or HardwareParams()
        self._max_steps = max_steps

    def profile(
        self,
        program: ast.Program | str,
        data: Optional[dict[str, Any]] = None,
        top: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> ProfileReport:
        """Profile *program* (AST or source text).

        ``data`` provides runtime inputs for the top function; anything
        missing is synthesized deterministically.  ``top`` defaults to
        the conventional graph function.
        """
        if isinstance(program, str):
            program = parse(program)
        allocation = allocate_program(program)
        synthesis = synthesize(program, self.params, allocation=allocation)
        power = estimate_power(
            program, self.params, allocation=allocation, synthesis=synthesis
        )
        rtl = extract_rtl_features(program, self.params, allocation=allocation)
        top = top or _default_top(program)
        inputs = default_inputs(program, top, rng=rng, overrides=data)
        interpreter = Interpreter(program, self.params, max_steps=self._max_steps)
        simulation = interpreter.run(top, inputs)
        costs = CostVector(
            power_uw=power.total_uw,
            area_um2=synthesis.area_um2,
            flip_flops=synthesis.flip_flops,
            cycles=simulation.cycles,
        )
        return ProfileReport(
            costs=costs,
            rtl=rtl,
            longest_path_ns=synthesis.longest_path_ns,
            ops_executed=simulation.ops_executed,
        )


def _default_top(program: ast.Program) -> str:
    for candidate in ("dataflow", "graph", "main", "top"):
        if candidate in program.function_names:
            return candidate
    return program.function_names[-1]


def profile(
    program: ast.Program | str,
    params: Optional[HardwareParams] = None,
    data: Optional[dict[str, Any]] = None,
    top: Optional[str] = None,
) -> CostVector:
    """Convenience one-shot profiling returning just the cost vector."""
    return Profiler(params).profile(program, data=data, top=top).costs
