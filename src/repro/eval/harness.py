"""Train/evaluate harness shared by the benchmark suite.

Reproduces the paper's experimental protocol:

1. Build a training corpus: progressive synthesized data (§6) plus
   profiled *neighbor variants* of each benchmark workload (LLM-style
   mutations, hardware-parameter sweeps and runtime-input sweeps) — the
   evaluation point itself (exact program + params + data) is held out.
2. Train LLMulator, its NoEnc ablation, and the TLP / GNNHLS /
   Tenset-MLP baselines on the same corpus.
3. Profile ground truth for each workload and score per-metric APE.
4. Optionally run the DPO dynamic calibration loop for cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

import numpy as np

from ..baselines import (
    GNNHLSConfig,
    GNNHLSModel,
    TensetConfig,
    TensetMLPModel,
    TLPConfig,
    TLPModel,
    graph_tensors,
    tenset_features,
)
from ..core import (
    CalibrationConfig,
    CalibrationHistory,
    CostModel,
    DynamicCalibrator,
    LLMulatorConfig,
    TrainingConfig,
    train_cost_model,
)
from ..datagen import (
    DatasetRecord,
    DatasetSynthesizer,
    LLMStyleMutator,
    SynthesizerConfig,
    direct_format,
)
from ..errors import SimulationError
from ..hls import HardwareParams
from ..profiler import (
    METRICS,
    BatchProfiler,
    ProfileJob,
    Profiler,
    StaticProfileCache,
)
from ..telemetry import clock
from ..workloads import Workload
from .metrics import ape


@dataclass
class HarnessConfig:
    """Budget and composition knobs for one experiment run."""

    synth: SynthesizerConfig = field(default_factory=SynthesizerConfig)
    tier: str = "1B"
    max_seq_len: int = 320
    train_epochs: int = 8
    train_lr: float = 2e-3
    neighbors_per_workload: int = 3
    data_variants_per_workload: int = 2
    eval_params: HardwareParams = field(default_factory=HardwareParams)
    neighbor_delays: tuple[int, ...] = (5, 2)
    # Fraction of training examples rendered in the reasoning format
    # (<think> RTL features).  Mixing ~25% reasoning examples measurably
    # improves static-metric accuracy even though evaluation bundles
    # carry no think segment — the RTL features (module/mux counts)
    # teach the encoder a representation aligned with the labels,
    # reproducing the paper's reasoning-data benefit (§6.2).  With
    # use_reasoning_at_eval, prediction also attaches RTL features
    # extracted by the HLS frontend — a compile-time pass, not the ASIC
    # flow / simulator that produces the labels.
    reasoning_fraction: float = 0.25
    use_reasoning_at_eval: bool = False
    seed: int = 0
    max_steps: int = 1_500_000
    # Simulation backend for all ground-truth profiling: "compiled"
    # (closure-lowered, default) or "interp" — identical labels either
    # way (see tests/test_sim_compiler.py).
    sim_backend: str = "compiled"
    # Process-pool width for corpus building; 0/1 profiles serially
    # (still memoized).  The static-profile cache is shared per worker
    # because jobs are chunked by program digest.
    profile_workers: int = 0


@dataclass
class WorkloadResult:
    """Per-workload prediction outcomes for one model."""

    predictions: dict[str, int] = field(default_factory=dict)
    actuals: dict[str, int] = field(default_factory=dict)
    latency_s: float = 0.0
    confidences: dict[str, float] = field(default_factory=dict)
    # Beam candidates for sampling-based models (ours/noenc); used by
    # the paper's pass@5 protocol.  Deterministic regressors have none.
    beam_values: dict[str, list[int]] = field(default_factory=dict)

    def ape_of(self, metric: str, pass_at: int = 1) -> float:
        """APE of the prediction; with ``pass_at`` > 1, the best of the
        top-k beam candidates (the paper's pass@5 sampling)."""
        best = ape(self.predictions[metric], self.actuals[metric])
        if pass_at > 1 and metric in self.beam_values:
            for candidate in self.beam_values[metric][:pass_at]:
                best = min(best, ape(candidate, self.actuals[metric]))
        return best


@dataclass
class EvalResult:
    """model name → workload name → WorkloadResult."""

    results: dict[str, dict[str, WorkloadResult]] = field(default_factory=dict)

    def mape_of(self, model: str, metric: str, pass_at: int = 1) -> float:
        rows = self.results[model]
        return float(np.mean([r.ape_of(metric, pass_at) for r in rows.values()]))

    def workload_ape(
        self, model: str, workload: str, metric: str, pass_at: int = 1
    ) -> float:
        return self.results[model][workload].ape_of(metric, pass_at)

    def mean_latency(self, model: str) -> float:
        rows = self.results[model]
        return float(np.mean([r.latency_s for r in rows.values()]))

    def ranking_of(self, model: str, metric: str) -> float:
        """Spearman correlation of predictions vs actuals across
        workloads — the model's fidelity in its DSE ranking role."""
        from .ranking import spearman

        rows = self.results[model]
        predicted = [float(r.predictions[metric]) for r in rows.values()]
        actual = [float(r.actuals[metric]) for r in rows.values()]
        return spearman(predicted, actual)


@dataclass
class ModelZoo:
    """The trained models of one harness run."""

    ours: Optional[CostModel] = None
    noenc: Optional[CostModel] = None
    tlp: Optional[TLPModel] = None
    gnnhls: Optional[GNNHLSModel] = None
    tenset: Optional[TensetMLPModel] = None

    def available(self) -> dict[str, Any]:
        return {
            name: model
            for name, model in (
                ("ours", self.ours),
                ("noenc", self.noenc),
                ("tlp", self.tlp),
                ("gnnhls", self.gnnhls),
                ("tenset", self.tenset),
            )
            if model is not None
        }


class EvaluationHarness:
    """End-to-end experiment driver."""

    def __init__(self, config: Optional[HarnessConfig] = None) -> None:
        self.config = config or HarnessConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._mutator = LLMStyleMutator(seed=self.config.seed + 17)
        # Shared across every ground-truth call this harness makes, so
        # input sweeps and repeated evaluations of one workload pay the
        # static EDA cost (allocation/synthesis/power/RTL) only once.
        self._static_cache = StaticProfileCache()

    # -- ground truth ------------------------------------------------------

    def _profiler(self, params: Optional[HardwareParams] = None) -> Profiler:
        return Profiler(
            params or self.config.eval_params,
            max_steps=self.config.max_steps,
            backend=self.config.sim_backend,
            static_cache=self._static_cache,
        )

    def profile_workload(
        self,
        workload: Workload,
        params: Optional[HardwareParams] = None,
        data: Optional[dict[str, Any]] = None,
    ):
        return self._profiler(params).profile(
            workload.program,
            data=workload.merged_data(data) or None,
            rng=np.random.default_rng(self.config.seed),
        )

    # -- training corpus -------------------------------------------------------

    def _neighbor_plan(
        self, workload: Workload, eval_params: Optional[HardwareParams] = None
    ) -> list[tuple[str, HardwareParams, Optional[dict[str, Any]]]]:
        """Candidate neighbor-profiling jobs for one workload.

        Neighbors vary the hardware parameters and the runtime inputs of
        the *original* program; program mutations are left to the
        synthesizer stage.  (Mutated variants of long workloads are
        indistinguishable from the original under sequence truncation
        yet carry different static labels — pure label noise.)

        Each entry is ``(kind, params, data)`` with kind ``"hw"``
        (hardware-parameter variant: keep every success), ``"sweep"``
        (runtime-input variant: keep the first
        ``data_variants_per_workload`` successes, in order) or
        ``"fallback"`` (no dynamic scalars: one extra hardware variant).
        """
        eval_params = eval_params or self.config.eval_params
        plan: list[tuple[str, HardwareParams, Optional[dict[str, Any]]]] = []
        # Hardware-parameter variants under default runtime data.
        delays = list(
            dict.fromkeys(self.config.neighbor_delays)
        )[: self.config.neighbors_per_workload]
        for delay in delays:
            params = HardwareParams(
                mem_read_delay=int(delay),
                mem_write_delay=int(delay),
                pe_count=eval_params.pe_count,
                memory_ports=eval_params.memory_ports,
            )
            if params == eval_params:
                continue
            plan.append(("hw", params, workload.merged_data() or None))
        # Original program under *different* runtime data, eval params.
        sweeps = workload.dynamic_sweeps
        for name, values in sweeps.items():
            for value in values:
                data = workload.merged_data({name: int(value)})
                if data == workload.merged_data():
                    continue  # never include the exact eval point
                plan.append(("sweep", eval_params, data))
        if not sweeps:
            # No dynamic scalars: vary hardware params instead.
            delay = int(self.config.neighbor_delays[0])
            params = HardwareParams(mem_read_delay=delay, mem_write_delay=delay)
            plan.append(("fallback", params, workload.merged_data() or None))
        return plan

    def _assemble_neighbors(
        self,
        workload: Workload,
        plan: list[tuple[str, HardwareParams, Optional[dict[str, Any]]]],
        reports: list[Optional[Any]],
    ) -> list[DatasetRecord]:
        """Select corpus records from profiled neighbor candidates,
        mirroring the serial path: every successful hw/fallback variant,
        plus the first ``data_variants_per_workload`` sweep successes."""
        records: list[DatasetRecord] = []
        variants_added = 0
        for (kind, params, data), report in zip(plan, reports):
            if report is None:
                continue
            if kind == "sweep":
                if variants_added >= self.config.data_variants_per_workload:
                    continue
                variants_added += 1
            records.append(
                DatasetRecord(
                    program=workload.program,
                    params=params,
                    data=data,
                    report=report,
                    source_kind="external",
                )
            )
        return records

    def _neighbor_records(
        self, workload: Workload, eval_params: Optional[HardwareParams] = None
    ) -> list[DatasetRecord]:
        """Profiled near-distribution variants of one workload."""
        plan = self._neighbor_plan(workload, eval_params)
        reports = []
        quota = self.config.data_variants_per_workload
        sweeps_done = 0
        for kind, params, data in plan:
            if kind == "sweep" and sweeps_done >= quota:
                # Over-quota candidates are never profiled serially.
                reports.append(None)
                continue
            report = self._try_profile(workload.program, params, data)
            if kind == "sweep" and report is not None:
                sweeps_done += 1
            reports.append(report)
        return self._assemble_neighbors(workload, plan, reports)

    def _try_profile(
        self,
        program,
        params: HardwareParams,
        data: Optional[dict[str, Any]],
    ):
        profiler = Profiler(
            params,
            max_steps=self.config.max_steps,
            backend=self.config.sim_backend,
            static_cache=self._static_cache,
        )
        try:
            return profiler.profile(
                program, data=data, rng=np.random.default_rng(self.config.seed)
            )
        except SimulationError:
            return None

    def build_corpus(
        self,
        workloads: Iterable[Workload],
        include_synth: bool = True,
        params_for: Optional[dict[str, HardwareParams]] = None,
        workers: Optional[int] = None,
    ) -> list[DatasetRecord]:
        """Training records: synthesized data + workload neighbors.

        With ``workers`` > 1 (or ``config.profile_workers``), neighbor
        profiling fans out over a :class:`BatchProfiler` process pool.
        The *records* selected are identical to the serial path's; the
        batch path may profile sweep candidates beyond the per-workload
        quota (the pool has no cross-job early exit), which the
        assembly step then discards.  Suite sweeps are a handful of
        values per workload, so the slack is small.
        """
        records: list[DatasetRecord] = []
        if include_synth:
            synthesizer = DatasetSynthesizer(self.config.synth)
            records.extend(synthesizer.generate().records)
        workloads = list(workloads)
        workers = self.config.profile_workers if workers is None else workers
        if workers and workers > 1:
            records.extend(self._batched_neighbors(workloads, params_for, workers))
        else:
            for workload in workloads:
                eval_params = (params_for or {}).get(workload.name)
                records.extend(self._neighbor_records(workload, eval_params))
        return records

    def _batched_neighbors(
        self,
        workloads: list[Workload],
        params_for: Optional[dict[str, HardwareParams]],
        workers: int,
    ) -> list[DatasetRecord]:
        plans = [
            self._neighbor_plan(w, (params_for or {}).get(w.name)) for w in workloads
        ]
        jobs: list[ProfileJob] = []
        spans: list[tuple[int, int]] = []
        for workload, plan in zip(workloads, plans):
            start = len(jobs)
            jobs.extend(
                ProfileJob(
                    program=workload.program,
                    data=data,
                    params=params,
                    seed=self.config.seed,
                )
                for _, params, data in plan
            )
            spans.append((start, len(jobs)))
        batch = BatchProfiler(
            max_steps=self.config.max_steps,
            backend=self.config.sim_backend,
            max_workers=workers,
            static_cache=self._static_cache,
        )
        reports = batch.profile_many(jobs)
        records: list[DatasetRecord] = []
        for workload, plan, (start, stop) in zip(workloads, plans, spans):
            records.extend(
                self._assemble_neighbors(workload, plan, reports[start:stop])
            )
        return records

    # -- training -------------------------------------------------------------------

    def train_models(
        self,
        records: list[DatasetRecord],
        which: tuple[str, ...] = ("ours", "noenc", "tlp", "gnnhls", "tenset"),
        reasoning: bool = True,
    ) -> ModelZoo:
        """Train the requested models on the same record corpus."""
        zoo = ModelZoo()
        rng = np.random.default_rng(self.config.seed + 3)
        examples = []
        for record in records:
            example = direct_format(record)
            if reasoning and rng.random() < self.config.reasoning_fraction:
                from ..datagen import reasoning_format

                example = reasoning_format(record)
            examples.append(example)
        train_config = TrainingConfig(
            epochs=self.config.train_epochs,
            lr=self.config.train_lr,
            seed=self.config.seed,
        )
        if "ours" in which:
            zoo.ours = CostModel(
                LLMulatorConfig(
                    numeric_mode="digit",
                    tier=self.config.tier,
                    max_seq_len=self.config.max_seq_len,
                    seed=self.config.seed,
                )
            )
            train_cost_model(zoo.ours, examples, train_config)
        if "noenc" in which:
            zoo.noenc = CostModel(
                LLMulatorConfig(
                    numeric_mode="whole",
                    tier=self.config.tier,
                    max_seq_len=self.config.max_seq_len,
                    seed=self.config.seed,
                )
            )
            train_cost_model(zoo.noenc, examples, train_config)
        pair_examples = [(e.bundle, e.targets) for e in examples]
        if "tlp" in which:
            zoo.tlp = TLPModel(
                TLPConfig(
                    tier=self.config.tier,
                    max_seq_len=self.config.max_seq_len,
                    epochs=self.config.train_epochs,
                    lr=self.config.train_lr,
                )
            )
            zoo.tlp.fit(pair_examples)
        if "gnnhls" in which:
            graph_examples = [
                (graph_tensors(record.program), record.report.costs.as_dict())
                for record in records
            ]
            zoo.gnnhls = GNNHLSModel(
                GNNHLSConfig(epochs=min(48, 6 * self.config.train_epochs))
            )
            zoo.gnnhls.fit(graph_examples)
        if "tenset" in which:
            feature_examples = [
                (
                    tenset_features(record.program, record.params, record.data),
                    record.report.costs.as_dict(),
                )
                for record in records
            ]
            zoo.tenset = TensetMLPModel(
                TensetConfig(epochs=min(150, 15 * self.config.train_epochs))
            )
            zoo.tenset.fit(feature_examples)
        return zoo

    # -- evaluation ----------------------------------------------------------------------

    def evaluate(
        self,
        zoo: ModelZoo,
        workloads: Iterable[Workload],
        metrics: tuple[str, ...] = tuple(METRICS),
        params_for: Optional[dict[str, HardwareParams]] = None,
        engine: Optional["Any"] = None,
        session: Optional["Any"] = None,
    ) -> EvalResult:
        """Score every available model on every workload.

        With ``session`` (a :class:`repro.api.Session`), the cost-model
        predictions route through the shared warm serving stack — zoo
        members are adopted into its registry and repeated evaluations
        hit its tiered caches instead of re-encoding.  ``engine`` (a
        :class:`repro.serve.PredictionEngine`) is the older spelling of
        the same routing and is wrapped in a session."""
        if session is None and engine is not None:
            from ..api.session import Session

            session = Session(engine=engine)
        result = EvalResult()
        workloads = list(workloads)
        truths = {}
        for workload in workloads:
            params = (params_for or {}).get(workload.name, self.config.eval_params)
            truths[workload.name] = self.profile_workload(workload, params=params).costs
        for model_name, model in zoo.available().items():
            rows: dict[str, WorkloadResult] = {}
            for workload in workloads:
                actual = truths[workload.name]
                rows[workload.name] = WorkloadResult(
                    actuals={m: actual[m] for m in metrics}
                )
            if model_name in ("ours", "noenc"):
                # Cost-model predictions run as one batched pass over
                # the whole corpus (paper §5.3's serving shape).
                self._predict_all_batched(
                    model_name, model, workloads, params_for, metrics, rows,
                    session=session,
                )
            else:
                for workload in workloads:
                    params = (params_for or {}).get(
                        workload.name, self.config.eval_params
                    )
                    row = rows[workload.name]
                    start = clock.now()
                    predictions = self._predict_all(
                        model_name, model, workload, params, metrics, row
                    )
                    row.latency_s = clock.now() - start
                    row.predictions = predictions
            result.results[model_name] = rows
        return result

    def _predict_all_batched(
        self,
        model_name: str,
        model: CostModel,
        workloads: list[Workload],
        params_for: Optional[dict[str, HardwareParams]],
        metrics: tuple[str, ...],
        rows: dict[str, WorkloadResult],
        session: Optional["Any"] = None,
    ) -> None:
        """Score every workload with one ``predict_costs_batch`` call
        (or through a shared :class:`repro.api.Session`)."""
        bundles = []
        segment_lists = []
        # Timer covers bundle construction too, so latency_s stays
        # comparable with the baselines' per-workload timed path.
        start = clock.now()
        for workload in workloads:
            params = (params_for or {}).get(workload.name, self.config.eval_params)
            think = ""
            if self.config.use_reasoning_at_eval:
                from ..hls import extract_rtl_features

                think = extract_rtl_features(workload.program, params).think_text()
            bundles.append(
                workload.bundle(
                    params=params, data=workload.merged_data(), think_text=think
                )
            )
            segment_lists.append(list(workload.class_i))
        if session is not None:
            # The typed-facade route: adopt the zoo member into the
            # session's warm registry and consume api Predictions.
            session.adopt(model_name, model)
            predictions = session.predict_bundles(
                bundles, segment_lists, model=model_name, beam_width=5
            )
            metric_rows = [prediction.metrics for prediction in predictions]
        else:
            costs_list = model.predict_costs_batch(
                bundles, class_i_segments=segment_lists, beam_width=5
            )
            metric_rows = [costs.per_metric for costs in costs_list]
        per_workload_s = (clock.now() - start) / max(1, len(workloads))
        for workload, per_metric in zip(workloads, metric_rows):
            row = rows[workload.name]
            for metric, pred in per_metric.items():
                row.confidences[metric] = pred.confidence
                row.beam_values[metric] = list(pred.beam_values)
            row.predictions = {m: per_metric[m].value for m in metrics}
            row.latency_s = per_workload_s

    def _predict_all(
        self,
        model_name: str,
        model,
        workload: Workload,
        params: HardwareParams,
        metrics: tuple[str, ...],
        row: WorkloadResult,
    ) -> dict[str, int]:
        think = ""
        if self.config.use_reasoning_at_eval and model_name in ("ours", "noenc"):
            from ..hls import extract_rtl_features

            think = extract_rtl_features(workload.program, params).think_text()
        bundle = workload.bundle(
            params=params, data=workload.merged_data(), think_text=think
        )
        if model_name in ("ours", "noenc"):
            costs = model.predict_costs(
                bundle, class_i_segments=list(workload.class_i), beam_width=5
            )
            for metric, pred in costs.per_metric.items():
                row.confidences[metric] = pred.confidence
                row.beam_values[metric] = list(pred.beam_values)
            return {m: costs.value(m) for m in metrics}
        if model_name == "tlp":
            return {m: model.predict(bundle, m) for m in metrics}
        if model_name == "gnnhls":
            graph = graph_tensors(workload.program)
            return {m: model.predict(graph, m) for m in metrics}
        if model_name == "tenset":
            features = tenset_features(
                workload.program, params, workload.merged_data() or None
            )
            return {m: model.predict(features, m) for m in metrics}
        raise ValueError(f"unknown model {model_name!r}")

    # -- dynamic calibration --------------------------------------------------------------

    def _workload_bundle(
        self,
        workload: Workload,
        params: HardwareParams,
        data: Optional[dict[str, Any]] = None,
    ):
        think = ""
        if self.config.use_reasoning_at_eval:
            from ..hls import extract_rtl_features

            think = extract_rtl_features(workload.program, params).think_text()
        return workload.bundle(
            params=params, data=workload.merged_data(data), think_text=think
        )

    def calibration_environment(
        self, workload: Workload, params: Optional[HardwareParams] = None
    ) -> list[tuple[Any, int, tuple[str, ...]]]:
        """DPO environment: the workload under swept runtime inputs,
        ground-truthed by the profiler (the paper's Figure 4 loop)."""
        params = params or self.config.eval_params
        environment = []
        sweeps = workload.dynamic_sweeps or {}
        combos: list[dict[str, int]] = [{}]
        for name, values in sweeps.items():
            combos = [dict(c, **{name: int(v)}) for c in combos for v in values[:2]]
        for combo in combos[:4]:
            report = self.profile_workload(workload, params=params, data=combo)
            bundle = self._workload_bundle(workload, params, combo)
            environment.append((bundle, report.costs.cycles, workload.class_i))
        return environment

    def calibrate(
        self,
        model: CostModel,
        workloads: Iterable[Workload],
        iterations: int = 5,
        config: Optional[CalibrationConfig] = None,
        isolate: bool = True,
    ) -> dict[str, CalibrationHistory]:
        """Run per-workload DPO calibration; returns error histories.

        With ``isolate`` (default) each workload calibrates a deep copy
        of the static model, matching the paper's per-application
        deployment scenario; otherwise updates accumulate in place.
        """
        import copy

        histories: dict[str, CalibrationHistory] = {}
        for workload in workloads:
            target = copy.deepcopy(model) if isolate else model
            calibrator = DynamicCalibrator(target, config or CalibrationConfig())
            environment = self.calibration_environment(workload)
            histories[workload.name] = calibrator.run(environment, iterations=iterations)
        return histories

    def calibrated_eval(
        self,
        model: CostModel,
        workloads: Iterable[Workload],
        iterations: int = 5,
        config: Optional[CalibrationConfig] = None,
    ) -> dict[str, dict[str, float]]:
        """Per-workload cycles APE before and after DPO calibration.

        The calibration environment sweeps the dynamic runtime scalars
        over *non-default* values; the evaluation point (default data)
        stays held out, so the post-calibration APE measures
        generalization along the input axis — the paper's NoDPO vs Ours
        comparison for the Dynamic-Cycles columns.
        """
        import copy

        outcome: dict[str, dict[str, float]] = {}
        def best_ape(prediction, actual: int, pass_at: int = 5) -> float:
            candidates = [prediction.value, *prediction.beam_values[:pass_at]]
            return min(ape(c, actual) for c in candidates)

        for workload in workloads:
            actual = self.profile_workload(workload).costs.cycles
            bundle = self._workload_bundle(workload, self.config.eval_params)
            pre = model.predict(
                bundle, "cycles", class_i_segments=list(workload.class_i), beam_width=5
            )
            target = copy.deepcopy(model)
            calibrator = DynamicCalibrator(target, config or CalibrationConfig())
            environment = self.calibration_environment(workload)
            history = calibrator.run(environment, iterations=iterations)
            post = calibrator.predict(bundle, workload.class_i)
            outcome[workload.name] = {
                "pre_ape": best_ape(pre, actual),
                "post_ape": best_ape(post, actual),
                "env_initial_mape": history.initial_mape,
                "env_final_mape": history.final_mape,
            }
        return outcome
