"""Ranking-fidelity metrics for design space exploration.

The paper motivates cost models as the inner loop of DSE tools: what
matters there is not absolute error but whether the model *orders*
candidate designs correctly and whether picking its top choice loses
much against the true optimum.  This module provides the standard
rank-fidelity measures used to evaluate cost models in that role
(Spearman's rho, Kendall's tau, top-k recall and regret).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "rankdata",
    "spearman",
    "kendall_tau",
    "top_k_recall",
    "selection_regret",
]


def rankdata(values: Sequence[float]) -> np.ndarray:
    """Ranks (1-based), with ties sharing their average rank."""
    arr = np.asarray(values, dtype=np.float64)
    order = np.argsort(arr, kind="stable")
    ranks = np.empty(len(arr), dtype=np.float64)
    i = 0
    while i < len(arr):
        j = i
        while j + 1 < len(arr) and arr[order[j + 1]] == arr[order[i]]:
            j += 1
        # ranks i..j (0-based) tie: average of (i+1)..(j+1)
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


def spearman(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson of the ranks; 0 for flat input)."""
    if len(x) != len(y) or len(x) < 2:
        raise ValueError("spearman() needs two equal-length sequences (n >= 2)")
    rx = rankdata(x)
    ry = rankdata(y)
    if rx.std() == 0 or ry.std() == 0:
        return 0.0
    return float(np.corrcoef(rx, ry)[0, 1])


def kendall_tau(x: Sequence[float], y: Sequence[float]) -> float:
    """Kendall's tau-b rank correlation.

    Counts concordant vs. discordant pairs with the tie correction, so
    heavily tied predictions (a failure mode of saturated regression
    heads) are penalized rather than rewarded.
    """
    if len(x) != len(y) or len(x) < 2:
        raise ValueError("kendall_tau() needs two equal-length sequences (n >= 2)")
    x_arr = np.asarray(x, dtype=np.float64)
    y_arr = np.asarray(y, dtype=np.float64)
    concordant = 0
    discordant = 0
    ties_x = 0
    ties_y = 0
    n = len(x_arr)
    for i in range(n):
        dx = x_arr[i + 1 :] - x_arr[i]
        dy = y_arr[i + 1 :] - y_arr[i]
        product = dx * dy
        concordant += int(np.sum(product > 0))
        discordant += int(np.sum(product < 0))
        ties_x += int(np.sum((dx == 0) & (dy != 0)))
        ties_y += int(np.sum((dx != 0) & (dy == 0)))
    denom = np.sqrt(
        (concordant + discordant + ties_x) * (concordant + discordant + ties_y)
    )
    if denom == 0:
        return 0.0
    return float((concordant - discordant) / denom)


def top_k_recall(
    predicted: Sequence[float], actual: Sequence[float], k: int
) -> float:
    """Fraction of the truly-best k designs found in the predicted-best k.

    "Best" means *lowest* cost, matching the DSE convention where the
    model ranks candidate designs by predicted cycles/area/power.
    """
    if len(predicted) != len(actual):
        raise ValueError("length mismatch in top_k_recall()")
    if not 1 <= k <= len(actual):
        raise ValueError(f"k must be in [1, {len(actual)}], got {k}")
    predicted_arr = np.asarray(predicted, dtype=np.float64)
    actual_arr = np.asarray(actual, dtype=np.float64)
    predicted_top = set(np.argsort(predicted_arr, kind="stable")[:k].tolist())
    actual_top = set(np.argsort(actual_arr, kind="stable")[:k].tolist())
    return len(predicted_top & actual_top) / k


def selection_regret(
    predicted: Sequence[float], actual: Sequence[float]
) -> float:
    """Relative cost excess of the model's chosen design over the optimum.

    Picks the design the model predicts cheapest and compares its *true*
    cost against the true minimum: ``(actual[argmin(pred)] - min(actual))
    / min(actual)``.  Zero means the model's choice is optimal even if
    every absolute prediction is wrong — exactly the property DSE needs.
    """
    if len(predicted) != len(actual):
        raise ValueError("length mismatch in selection_regret()")
    if not predicted:
        raise ValueError("selection_regret() of empty sequences")
    predicted_arr = np.asarray(predicted, dtype=np.float64)
    actual_arr = np.asarray(actual, dtype=np.float64)
    chosen = actual_arr[int(np.argmin(predicted_arr))]
    best = float(actual_arr.min())
    if best == 0:
        return float(chosen != 0)
    return float((chosen - best) / abs(best))
