"""Confidence-quality metrics for the numeric classification head.

Section 4.2 of the paper argues that digit-wise classification makes the
cost model *interpretable*: each prediction carries a confidence (the
digit logits), and Table 6 shows that confidence anti-correlates with
squared error.  This module quantifies how useful those confidences are:

* :func:`reliability_bins` / :func:`expected_calibration_error` measure
  whether "80% confident" digits are right about 80% of the time;
* :func:`risk_coverage_curve` / :func:`aurc` measure the value of
  confidence for *selective prediction* — refusing the least-confident
  predictions should shed the largest errors first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "ReliabilityBin",
    "reliability_bins",
    "expected_calibration_error",
    "risk_coverage_curve",
    "aurc",
]


@dataclass(frozen=True)
class ReliabilityBin:
    """One confidence bin of a reliability diagram."""

    lower: float
    upper: float
    count: int
    mean_confidence: float
    accuracy: float

    @property
    def gap(self) -> float:
        """Calibration gap: confidence minus accuracy (positive = overconfident)."""
        return self.mean_confidence - self.accuracy


def _validate_pairs(
    confidences: Sequence[float], correct: Sequence[bool]
) -> tuple[np.ndarray, np.ndarray]:
    conf = np.asarray(confidences, dtype=np.float64)
    hits = np.asarray(correct, dtype=bool)
    if conf.shape != hits.shape or conf.ndim != 1:
        raise ValueError("confidences and correct must be equal-length 1-D sequences")
    if conf.size == 0:
        raise ValueError("no (confidence, correct) pairs supplied")
    if np.any((conf < 0) | (conf > 1)):
        raise ValueError("confidences must lie in [0, 1]")
    return conf, hits


def reliability_bins(
    confidences: Sequence[float],
    correct: Sequence[bool],
    n_bins: int = 10,
) -> list[ReliabilityBin]:
    """Equal-width reliability diagram over ``[0, 1]``.

    Empty bins are omitted, matching the usual presentation.  Each
    (confidence, correct) pair is one digit prediction — use the
    per-digit confidences from ``NumericPrediction`` rather than a
    single whole-number confidence to get enough samples.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    conf, hits = _validate_pairs(confidences, correct)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    # Right-closed last bin so confidence 1.0 lands in the top bin.
    indices = np.clip(np.digitize(conf, edges[1:-1], right=False), 0, n_bins - 1)
    bins = []
    for b in range(n_bins):
        mask = indices == b
        if not mask.any():
            continue
        bins.append(
            ReliabilityBin(
                lower=float(edges[b]),
                upper=float(edges[b + 1]),
                count=int(mask.sum()),
                mean_confidence=float(conf[mask].mean()),
                accuracy=float(hits[mask].mean()),
            )
        )
    return bins


def expected_calibration_error(
    confidences: Sequence[float],
    correct: Sequence[bool],
    n_bins: int = 10,
) -> float:
    """ECE: count-weighted mean |confidence - accuracy| over bins."""
    conf, _ = _validate_pairs(confidences, correct)
    bins = reliability_bins(confidences, correct, n_bins=n_bins)
    total = conf.size
    return float(sum(b.count / total * abs(b.gap) for b in bins))


def risk_coverage_curve(
    confidences: Sequence[float], errors: Sequence[float]
) -> list[tuple[float, float]]:
    """(coverage, mean error among covered) as confidence threshold falls.

    Predictions are admitted most-confident first.  A useful confidence
    signal yields a curve that starts low (the confident predictions are
    the accurate ones) and rises toward the unconditional mean error at
    coverage 1.0.
    """
    conf = np.asarray(confidences, dtype=np.float64)
    errs = np.asarray(errors, dtype=np.float64)
    if conf.shape != errs.shape or conf.ndim != 1 or conf.size == 0:
        raise ValueError("confidences and errors must be equal-length 1-D sequences")
    order = np.argsort(-conf, kind="stable")
    sorted_errors = errs[order]
    cumulative = np.cumsum(sorted_errors)
    n = conf.size
    return [
        (float((i + 1) / n), float(cumulative[i] / (i + 1)))
        for i in range(n)
    ]


def aurc(confidences: Sequence[float], errors: Sequence[float]) -> float:
    """Area under the risk-coverage curve (lower is better).

    Equals the unconditional mean error when confidence is uninformative
    (random ordering in expectation) and drops toward zero as confidence
    concentrates the error mass in the rejected tail.
    """
    curve = risk_coverage_curve(confidences, errors)
    return float(np.mean([risk for _, risk in curve]))
