"""Evaluation: metrics, harness, table rendering."""

from .harness import (
    EvalResult,
    EvaluationHarness,
    HarnessConfig,
    ModelZoo,
    WorkloadResult,
)
from .confidence import (
    ReliabilityBin,
    aurc,
    expected_calibration_error,
    reliability_bins,
    risk_coverage_curve,
)
from .metrics import ape, mape, mse, pearson
from .ranking import (
    kendall_tau,
    rankdata,
    selection_regret,
    spearman,
    top_k_recall,
)
from .report import build_report, collect_sections, write_report
from .tables import format_percent, format_table, mape_table

__all__ = [
    "ape",
    "mape",
    "mse",
    "pearson",
    "rankdata",
    "spearman",
    "kendall_tau",
    "top_k_recall",
    "selection_regret",
    "ReliabilityBin",
    "reliability_bins",
    "expected_calibration_error",
    "risk_coverage_curve",
    "aurc",
    "EvaluationHarness",
    "HarnessConfig",
    "ModelZoo",
    "EvalResult",
    "WorkloadResult",
    "format_table",
    "format_percent",
    "mape_table",
    "build_report",
    "collect_sections",
    "write_report",
]
