"""Experiment report assembly.

Collects the rendered tables the benchmarks write under ``results/``
into a single markdown report, with the paper-reference annotations
from the experiment index.  Used by ``python -m repro.eval.report``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

# Experiment index: result file -> (title, paper reference).
EXPERIMENT_INDEX = {
    "table2_benchmark_analysis.txt": ("Table 2", "Benchmark analysis"),
    "table3_static_mape.txt": ("Table 3 (static)", "MAPE comparison, power/area/FF"),
    "table3_dynamic_cycles.txt": ("Table 3 (cycles)", "NoDPO vs DPO-calibrated cycles"),
    "table3_overall_summary.txt": ("Table 3 (summary)", "Overall average MAPE"),
    "table4_runtime_latency.txt": ("Table 4", "Prediction latency on Polybench"),
    "table5_acceleration.txt": ("Table 5", "Dynamic prediction acceleration"),
    "table6_confidence.txt": ("Table 6", "Confidence vs squared error"),
    "table7_synthesizer_ablation.txt": ("Table 7", "Data synthesizer ablation"),
    "table8_baseline_synth.txt": ("Table 8", "Synthesizer applied to baselines"),
    "table9_dependency_length.txt": ("Table 9", "Latency vs data-dependency length"),
    "table10_model_scale.txt": ("Table 10", "Cycles MAPE by model scale"),
    "table11_dataflow_apps.txt": ("Table 11", "Input-adaptive Polybench MAPE"),
    "fig11_timeloop.txt": ("Figure 11", "LLMulator vs Timeloop"),
    "fig12_memory_latency.txt": ("Figure 12", "Memory-delay sweep"),
    "dpo_convergence.txt": ("§7.2", "DPO convergence curve"),
    "base_encoding_tradeoff.txt": ("§4.2", "Base-D encoding trade-off"),
    "range_extrapolation.txt": ("§2", "Edge-value extrapolation"),
    "ablation_beam_width.txt": ("extra", "Beam-width ablation"),
    "ablation_replay_buffer.txt": ("extra", "Replay-buffer ablation"),
    "confidence_quality.txt": ("extra", "Digit calibration (ECE) + risk-coverage"),
    "dse_ranking.txt": ("extra", "DSE ranking fidelity on the gemm mapping space"),
    "dse_search_efficiency.txt": ("extra", "Model-guided vs random DSE search"),
    "normalization_robustness.txt": (
        "§7.2", "Prediction drift under renaming, raw vs normalized encoding"
    ),
}


@dataclass
class ReportSection:
    """One experiment's rendered output."""

    filename: str
    paper_reference: str
    description: str
    body: str


def collect_sections(results_dir: str) -> list[ReportSection]:
    """Read every known result file present in *results_dir*."""
    sections = []
    for filename, (reference, description) in EXPERIMENT_INDEX.items():
        path = os.path.join(results_dir, filename)
        if not os.path.exists(path):
            continue
        with open(path) as handle:
            body = handle.read().strip()
        sections.append(
            ReportSection(
                filename=filename,
                paper_reference=reference,
                description=description,
                body=body,
            )
        )
    return sections


def missing_experiments(results_dir: str) -> list[str]:
    """Result files the benchmark suite has not produced yet."""
    return [
        filename
        for filename in EXPERIMENT_INDEX
        if not os.path.exists(os.path.join(results_dir, filename))
    ]


def build_report(results_dir: str, title: str = "LLMulator reproduction report") -> str:
    """Assemble a markdown report from the rendered result tables."""
    sections = collect_sections(results_dir)
    lines = [f"# {title}", ""]
    if not sections:
        lines.append(
            "_No results found — run `pytest benchmarks/ --benchmark-only` first._"
        )
        return "\n".join(lines)
    lines.append(f"{len(sections)} experiments rendered.\n")
    missing = missing_experiments(results_dir)
    if missing:
        lines.append(
            f"Missing ({len(missing)}): " + ", ".join(sorted(missing)) + "\n"
        )
    for section in sections:
        lines.append(f"## {section.paper_reference} — {section.description}")
        lines.append("")
        lines.append("```")
        lines.append(section.body)
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_report(
    results_dir: str, output_path: Optional[str] = None
) -> str:
    """Build and write the report; returns the output path."""
    output_path = output_path or os.path.join(results_dir, "REPORT.md")
    report = build_report(results_dir)
    with open(output_path, "w") as handle:
        handle.write(report + "\n")
    return output_path


def main() -> int:  # pragma: no cover - thin CLI wrapper
    import argparse

    parser = argparse.ArgumentParser(description="Assemble the experiment report")
    parser.add_argument("--results", default="results")
    parser.add_argument("--out", default=None)
    args = parser.parse_args()
    path = write_report(args.results, args.out)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
