"""Accuracy metrics: APE/MAPE, MSE, Pearson correlation."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def ape(predicted: float, actual: float) -> float:
    """Absolute percentage error of one prediction (fraction, not %)."""
    if actual == 0:
        return float(predicted != 0)
    return abs(predicted - actual) / abs(actual)


def mape(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """Mean absolute percentage error over paired sequences."""
    if len(predicted) != len(actual):
        raise ValueError("length mismatch in mape()")
    if not predicted:
        raise ValueError("mape() of empty sequences")
    return float(np.mean([ape(p, a) for p, a in zip(predicted, actual)]))


def mse(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """Mean squared error."""
    if len(predicted) != len(actual):
        raise ValueError("length mismatch in mse()")
    predicted_arr = np.asarray(predicted, dtype=np.float64)
    actual_arr = np.asarray(actual, dtype=np.float64)
    return float(np.mean((predicted_arr - actual_arr) ** 2))


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient (NaN-safe: 0 for flat inputs)."""
    x_arr = np.asarray(x, dtype=np.float64)
    y_arr = np.asarray(y, dtype=np.float64)
    if len(x_arr) != len(y_arr) or len(x_arr) < 2:
        raise ValueError("pearson() needs two equal-length sequences (n >= 2)")
    x_std = x_arr.std()
    y_std = y_arr.std()
    if x_std == 0 or y_std == 0:
        return 0.0
    return float(np.corrcoef(x_arr, y_arr)[0, 1])
