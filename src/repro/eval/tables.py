"""Plain-text table renderers for the benchmark reports."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_percent(value: float) -> str:
    """Render a fractional error as the paper's percentage style."""
    return f"{100.0 * value:.1f}%"


def mape_table(
    title: str,
    workload_names: Sequence[str],
    model_names: Sequence[str],
    ape_lookup,
) -> str:
    """Render a workload × model APE table with a mean row.

    ``ape_lookup(model, workload)`` returns the fractional APE.
    """
    headers = ["workload", *model_names]
    rows = []
    for workload in workload_names:
        rows.append(
            [workload, *[format_percent(ape_lookup(m, workload)) for m in model_names]]
        )
    means = []
    for model in model_names:
        values = [ape_lookup(model, w) for w in workload_names]
        means.append(format_percent(sum(values) / len(values)))
    rows.append(["average", *means])
    return format_table(headers, rows, title=title)
