"""Rule-based analytical cost model (Timeloop substitute).

Like Timeloop, this model only understands *regular, perfectly nested
tensor loops*: analytic trip counts × per-iteration datapath latency,
with spatial mapping (unroll / parallel) opening lanes bounded by the
memory ports.  Anything with data-dependent control flow, while loops
or imperfect nests is outside its domain and raises
:class:`UnsupportedWorkloadError` — callers must manually decompose
such workloads (``strict=False`` emulates that decomposition by
assuming every branch is taken, with the fidelity loss the paper
describes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import UnsupportedWorkloadError
from ..hls import HardwareParams
from ..ir import LoopNode, LoopTree, StatementLeaf, build_dataflow_graph, lower_function
from ..lang import ast, parse
from ..sim import cost as c


@dataclass
class OperatorEstimate:
    """Analytical estimate for one operator."""

    cycles: int
    energy_pj: float
    macs: int


@dataclass
class TimeloopEstimate:
    """Whole-program analytical estimate."""

    cycles: int
    power_uw: int
    per_operator: dict[str, OperatorEstimate]


class TimeloopModel:
    """Analytical evaluation of perfect tensor loop nests."""

    def __init__(
        self, params: Optional[HardwareParams] = None, strict: bool = True
    ) -> None:
        self.params = params or HardwareParams()
        self.strict = strict

    # -- operator level -----------------------------------------------------

    def evaluate_tree(
        self, tree: LoopTree, bindings: Optional[dict[str, int]] = None
    ) -> OperatorEstimate:
        """Analytical cycles/energy for one operator loop tree."""
        bindings = bindings or {}
        if self.strict and not tree.is_perfect_nest:
            raise UnsupportedWorkloadError(
                f"operator {tree.function!r} is not a perfect loop nest; "
                "Timeloop-style models cannot express it"
            )
        total_cycles = 0.0
        total_energy = 0.0
        total_macs = 0
        for root in tree.roots:
            if isinstance(root, LoopNode):
                cycles, energy, macs = self._loop_cost(root, bindings, lanes=1.0)
            else:
                cycles, energy, macs = self._leaf_cost(root, lanes=1.0)
            total_cycles += cycles
            total_energy += energy
            total_macs += macs
        return OperatorEstimate(
            cycles=max(1, int(round(total_cycles))),
            energy_pj=total_energy,
            macs=total_macs,
        )

    def _loop_cost(
        self, loop: LoopNode, bindings: dict[str, int], lanes: float
    ) -> tuple[float, float, int]:
        if not loop.bound.is_static and loop.bound.symbol not in bindings:
            if self.strict:
                raise UnsupportedWorkloadError(
                    f"loop bound {loop.bound.symbol!r} is not statically known"
                )
            bindings = dict(bindings)
            bindings[loop.bound.symbol or "<while>"] = 8  # decomposition guess
        trips = loop.trip_count(bindings)
        level_lanes = max(1, loop.unroll if loop.unroll else 64)
        if loop.parallel:
            level_lanes *= self.params.pe_count
        lanes = min(lanes * level_lanes, 4096.0)
        body_cycles = 0.0
        body_energy = 0.0
        body_macs = 0
        for child in loop.children:
            if isinstance(child, LoopNode):
                cycles, energy, macs = self._loop_cost(child, bindings, lanes)
            else:
                cycles, energy, macs = self._leaf_cost(child, lanes)
            body_cycles += cycles
            body_energy += energy
            body_macs += macs
        iteration_overhead = c.LOOP_OVERHEAD / lanes
        return (
            trips * (body_cycles + iteration_overhead),
            trips * body_energy,
            trips * body_macs,
        )

    def _leaf_cost(self, leaf: StatementLeaf, lanes: float) -> tuple[float, float, int]:
        if self.strict and leaf.has_branch:
            raise UnsupportedWorkloadError(
                "statement contains control flow; Timeloop-style models "
                "only evaluate straight-line tensor bodies"
            )
        memory_lanes = min(lanes, float(self.params.memory_ports))
        compute = (
            leaf.adds * c.FP_ADD + leaf.muls * c.FP_MUL + leaf.divs * c.FP_DIV
            + leaf.cmps * c.CMP
        ) / lanes
        memory = (
            leaf.loads * self.params.mem_read_delay
            + leaf.stores * self.params.mem_write_delay
        ) / memory_lanes
        branch = (c.BRANCH_COST / lanes) if leaf.has_branch else 0.0
        # Energy: rough per-op constants (pJ) with fixed utilization.
        energy = (
            leaf.adds * 0.9 + leaf.muls * 3.1 + leaf.divs * 12.0
            + (leaf.loads + leaf.stores) * 6.4
        )
        macs = min(leaf.adds, leaf.muls)
        return compute + memory + branch, energy, macs

    # -- program level ---------------------------------------------------------

    def evaluate_program(
        self,
        program: ast.Program | str,
        bindings: Optional[dict[str, int]] = None,
    ) -> TimeloopEstimate:
        """Sum analytical operator estimates over the dataflow graph."""
        if isinstance(program, str):
            program = parse(program)
        graph = build_dataflow_graph(program)
        functions = {func.name: func for func in program.functions}
        per_operator: dict[str, OperatorEstimate] = {}
        total_cycles = 0
        total_energy = 0.0
        for call in graph.calls:
            func = functions.get(call.name)
            if func is None:
                raise UnsupportedWorkloadError(f"unknown operator {call.name!r}")
            if call.name not in per_operator:
                per_operator[call.name] = self.evaluate_tree(
                    lower_function(func), bindings
                )
            estimate = per_operator[call.name]
            total_cycles += estimate.cycles
            total_energy += estimate.energy_pj
        if not graph.calls:
            # Single-kernel program: evaluate the top function directly.
            top = functions[graph.graph_function]
            estimate = self.evaluate_tree(lower_function(top), bindings)
            per_operator[graph.graph_function] = estimate
            total_cycles = estimate.cycles
            total_energy = estimate.energy_pj
        # Power: energy over runtime at the configured clock, plus a
        # fixed rule-based leakage floor.
        runtime_ns = max(1.0, total_cycles * self.params.clock_period_ns)
        power_uw = int(round(total_energy * 1000.0 / runtime_ns)) + 18
        return TimeloopEstimate(
            cycles=max(1, total_cycles),
            power_uw=power_uw,
            per_operator=per_operator,
        )
