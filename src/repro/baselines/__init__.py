"""Baseline cost models: TLP, GNNHLS, Tenset-MLP and Timeloop."""

from .common import RangeNormalizer
from .gnnhls import GNNHLSConfig, GNNHLSModel, graph_tensors
from .tenset_mlp import FEATURE_DIM, TensetConfig, TensetMLPModel, tenset_features
from .timeloop import OperatorEstimate, TimeloopEstimate, TimeloopModel
from .tlp import TLPConfig, TLPModel

__all__ = [
    "TLPModel",
    "TLPConfig",
    "GNNHLSModel",
    "GNNHLSConfig",
    "graph_tensors",
    "TensetMLPModel",
    "TensetConfig",
    "tenset_features",
    "FEATURE_DIM",
    "TimeloopModel",
    "TimeloopEstimate",
    "OperatorEstimate",
    "RangeNormalizer",
]
