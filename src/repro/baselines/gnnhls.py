"""GNNHLS baseline (Wu et al., DAC 2022 / ProGraML representation).

Programs are compiled into typed statement/expression graphs and a
message-passing GNN regresses sigmoid-normalized metrics.  The graph is
*static*: runtime data never enters the representation, so dynamic
control flow is invisible — the paper's core criticism of GNN cost
models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import networkx as nx
import numpy as np

from ..errors import ModelConfigError
from ..ir import NODE_TYPE_INDEX, build_program_graph
from ..lang import ast, parse
from ..nn import AdamW, Linear, Module, ReLU, Sequential, Tensor
from ..profiler import METRICS
from .common import RangeNormalizer, TimedPredictMixin

NODE_FEATURE_DIM = len(NODE_TYPE_INDEX) + 1  # one-hot type + literal value


@dataclass(frozen=True)
class GNNHLSConfig:
    """Hyper-parameters for the GNNHLS baseline."""

    hidden: int = 48
    rounds: int = 3
    epochs: int = 20
    lr: float = 2e-3
    seed: int = 13
    metrics: tuple[str, ...] = tuple(METRICS)


def graph_tensors(program: ast.Program | str) -> tuple[np.ndarray, np.ndarray]:
    """Node features and row-normalized (symmetrized) adjacency."""
    if isinstance(program, str):
        program = parse(program)
    graph = build_program_graph(program)
    n = graph.number_of_nodes()
    if n == 0:
        raise ModelConfigError("program graph is empty")
    features = np.zeros((n, NODE_FEATURE_DIM))
    for node, attrs in graph.nodes(data=True):
        features[node, NODE_TYPE_INDEX[attrs["type"]]] = 1.0
        features[node, -1] = attrs.get("value", 0.0)
    undirected = nx.Graph(graph)
    adjacency = nx.to_numpy_array(undirected, nodelist=sorted(graph.nodes))
    adjacency += np.eye(n)  # self loops
    degree = adjacency.sum(axis=1, keepdims=True)
    return features, adjacency / degree


class GNNHLSModel(TimedPredictMixin, Module):
    """Mean-aggregation message passing + sigmoid regression readout."""

    def __init__(self, config: Optional[GNNHLSConfig] = None) -> None:
        self.config = config or GNNHLSConfig()
        rng = np.random.default_rng(self.config.seed)
        hidden = self.config.hidden
        self.input_proj = Linear(NODE_FEATURE_DIM, hidden, rng=rng)
        self.message_layers = [
            Linear(hidden, hidden, rng=rng) for _ in range(self.config.rounds)
        ]
        self.update_layers = [
            Linear(2 * hidden, hidden, rng=rng) for _ in range(self.config.rounds)
        ]
        self.readout = Sequential(
            Linear(hidden, hidden, rng=rng), ReLU(), Linear(hidden, hidden, rng=rng)
        )
        self.heads = {
            metric: Linear(hidden, 1, rng=rng) for metric in self.config.metrics
        }
        self.normalizers = {metric: RangeNormalizer() for metric in self.config.metrics}

    def _embed(self, features: np.ndarray, adjacency: np.ndarray) -> Tensor:
        h = self.input_proj(Tensor(features)).relu()
        adj = Tensor(adjacency)
        for message, update in zip(self.message_layers, self.update_layers):
            aggregated = adj @ message(h)
            from ..nn import concat

            h = update(concat([h, aggregated], axis=1)).relu()
        pooled = h.mean(axis=0)
        return self.readout(pooled)

    def fit(
        self,
        examples: Sequence[tuple[tuple[np.ndarray, np.ndarray], dict[str, int]]],
        epochs: Optional[int] = None,
    ) -> list[float]:
        """Train on ((features, adjacency), targets) pairs."""
        if not examples:
            raise ModelConfigError("GNNHLS fit() needs at least one example")
        for metric in self.config.metrics:
            values = [t[metric] for _, t in examples if metric in t]
            if values:
                self.normalizers[metric].fit(values)
        optimizer = AdamW(self.parameters(), lr=self.config.lr)
        rng = np.random.default_rng(self.config.seed)
        order = np.arange(len(examples))
        losses = []
        for _ in range(epochs if epochs is not None else self.config.epochs):
            rng.shuffle(order)
            epoch_loss = 0.0
            for index in order:
                (features, adjacency), targets = examples[index]
                optimizer.zero_grad()
                embedding = self._embed(features, adjacency)
                loss: Optional[Tensor] = None
                for metric, target in targets.items():
                    if metric not in self.heads:
                        continue
                    normalized = self.normalizers[metric].normalize(target)
                    output = self.heads[metric](embedding).sigmoid()
                    term = ((output - normalized) ** 2).sum()
                    loss = term if loss is None else loss + term
                if loss is None:
                    continue
                loss.backward()
                optimizer.clip_grad_norm(1.0)
                optimizer.step()
                epoch_loss += float(loss.data)
            losses.append(epoch_loss / len(examples))
        return losses

    def predict(
        self, graph: tuple[np.ndarray, np.ndarray], metric: str
    ) -> int:
        if metric not in self.heads:
            raise ModelConfigError(f"unknown metric {metric!r}")
        embedding = self._embed(*graph)
        normalized = float(self.heads[metric](embedding).sigmoid().data.reshape(-1)[0])
        return int(round(self.normalizers[metric].denormalize(normalized)))
