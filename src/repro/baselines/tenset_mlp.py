"""Tenset-MLP baseline (Zheng et al., NeurIPS 2021 dataset + MLP).

An MLP over handcrafted program features.  Input adaptivity is
*coarse*: scalar runtime parameters (loop ranges, tensor dims) enter
the feature vector, but array contents do not — so two inputs with the
same shape but different values are indistinguishable, exactly the
limitation the paper calls out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from ..errors import ModelConfigError
from ..hls import HardwareParams
from ..lang import ast, extract_features, parse
from ..nn import AdamW, Module, Sequential, Tensor, mlp
from ..profiler import METRICS
from .common import TimedPredictMixin

_MAX_SCALAR_FEATURES = 4


@dataclass(frozen=True)
class TensetConfig:
    """Hyper-parameters for the Tenset-MLP baseline."""

    hidden: tuple[int, ...] = (64, 64)
    epochs: int = 30
    lr: float = 2e-3
    seed: int = 11
    metrics: tuple[str, ...] = tuple(METRICS)


def tenset_features(
    program: ast.Program | str,
    params: Optional[HardwareParams] = None,
    data: Optional[dict[str, Any]] = None,
) -> np.ndarray:
    """Handcrafted feature vector: program structure + hardware config +
    coarse input indicators (scalar values only, log-scaled)."""
    if isinstance(program, str):
        program = parse(program)
    params = params or HardwareParams()
    base = np.asarray(extract_features(program).as_vector())
    base = np.log1p(np.abs(base)) * np.sign(base)
    hw = np.asarray(
        [
            params.mem_read_delay,
            params.mem_write_delay,
            params.pe_count,
            params.memory_ports,
        ],
        dtype=np.float64,
    )
    scalars = []
    if data:
        for name in sorted(data):
            value = data[name]
            if isinstance(value, (int, float)):
                scalars.append(np.log1p(abs(float(value))))
            if len(scalars) >= _MAX_SCALAR_FEATURES:
                break
    while len(scalars) < _MAX_SCALAR_FEATURES:
        scalars.append(0.0)
    return np.concatenate([base, np.log1p(hw), np.asarray(scalars)])


FEATURE_DIM = 13 + 4 + _MAX_SCALAR_FEATURES


class TensetMLPModel(TimedPredictMixin, Module):
    """Per-metric MLP regression in log-target space."""

    def __init__(self, config: Optional[TensetConfig] = None) -> None:
        self.config = config or TensetConfig()
        rng = np.random.default_rng(self.config.seed)
        sizes = [FEATURE_DIM, *self.config.hidden, 1]
        self.nets: dict[str, Sequential] = {
            metric: mlp(sizes, rng=rng) for metric in self.config.metrics
        }

    def fit(
        self,
        examples: Sequence[tuple[np.ndarray, dict[str, int]]],
        epochs: Optional[int] = None,
    ) -> list[float]:
        """Train on (feature vector, targets) pairs with MSE in log space."""
        if not examples:
            raise ModelConfigError("Tenset-MLP fit() needs at least one example")
        optimizer = AdamW(self.parameters(), lr=self.config.lr)
        rng = np.random.default_rng(self.config.seed)
        order = np.arange(len(examples))
        losses = []
        for _ in range(epochs if epochs is not None else self.config.epochs):
            rng.shuffle(order)
            epoch_loss = 0.0
            for index in order:
                features, targets = examples[index]
                optimizer.zero_grad()
                x = Tensor(features)
                loss: Optional[Tensor] = None
                for metric, target in targets.items():
                    if metric not in self.nets:
                        continue
                    output = self.nets[metric](x)
                    term = ((output - float(np.log1p(target))) ** 2).sum()
                    loss = term if loss is None else loss + term
                if loss is None:
                    continue
                loss.backward()
                optimizer.clip_grad_norm(5.0)
                optimizer.step()
                epoch_loss += float(loss.data)
            losses.append(epoch_loss / len(examples))
        return losses

    def predict(self, features: np.ndarray, metric: str) -> int:
        if metric not in self.nets:
            raise ModelConfigError(f"unknown metric {metric!r}")
        output = float(self.nets[metric](Tensor(features)).data.reshape(-1)[0])
        output = min(output, 40.0)  # guard expm1 overflow
        return max(0, int(round(np.expm1(output))))

