"""Shared plumbing for the learned baselines.

All baselines are *regression* models: they normalize targets into a
bounded range and squash predictions with a sigmoid.  This is exactly
the mechanism the paper blames for edge-value failure — a sigmoid head
cannot express values beyond the training-set maximum — so it is kept
faithful here rather than improved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ModelConfigError
from ..telemetry import timed_call


class TimedPredictMixin:
    """Shared ``timed_predict``: one :func:`repro.telemetry.timed_call`
    around ``self.predict`` instead of a per-baseline copy of the
    ``perf_counter`` sandwich.  Returns ``(prediction, seconds)``."""

    def timed_predict(self, *args, **kwargs):
        return timed_call(self.predict, *args, **kwargs)


@dataclass
class RangeNormalizer:
    """Maps targets into [0, 1] by the training-set maximum."""

    y_max: float = 1.0
    fitted: bool = False

    def fit(self, values: Sequence[float]) -> "RangeNormalizer":
        values = [float(v) for v in values]
        if not values:
            raise ModelConfigError("cannot fit normalizer on empty targets")
        self.y_max = max(max(values), 1.0)
        self.fitted = True
        return self

    def normalize(self, value: float) -> float:
        if not self.fitted:
            raise ModelConfigError("normalizer used before fit()")
        return min(float(value) / self.y_max, 1.0)

    def denormalize(self, value: float) -> float:
        if not self.fitted:
            raise ModelConfigError("normalizer used before fit()")
        return float(value) * self.y_max


def inverse_sigmoid_target(y01: float, eps: float = 1e-4) -> float:
    """Logit of a [0,1] target, clamped away from saturation."""
    y01 = min(max(y01, eps), 1.0 - eps)
    return float(np.log(y01 / (1.0 - y01)))
