"""TLP baseline (Zhai et al., ASPLOS 2023).

A language-model regression cost model: program text is tokenized with
*conventional* whole-number tokens (no progressive numeric encoding),
encoded by a non-pretrained transformer, and regressed to a sigmoid-
normalized scalar per metric with MSE loss — the exact recipe whose
range-compression and numeric-distortion failure modes the paper
analyzes in Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ModelConfigError
from ..nn import AdamW, Linear, Module, Tensor, TransformerConfig, TransformerEncoder
from ..profiler import METRICS
from ..tokenizer import ModelInput, ProgressiveTokenizer, VOCAB
from .common import RangeNormalizer, TimedPredictMixin


@dataclass(frozen=True)
class TLPConfig:
    """Hyper-parameters of the TLP baseline."""

    tier: str = "1B"
    max_seq_len: int = 320
    epochs: int = 3
    lr: float = 2e-3
    seed: int = 7
    metrics: tuple[str, ...] = tuple(METRICS)


class TLPModel(TimedPredictMixin, Module):
    """Transformer + per-metric sigmoid regression heads."""

    def __init__(self, config: Optional[TLPConfig] = None) -> None:
        self.config = config or TLPConfig()
        # Conventional tokenizer: whole numbers as single bucket tokens.
        self.tokenizer = ProgressiveTokenizer(
            numeric_mode="whole", max_length=self.config.max_seq_len
        )
        encoder_config = TransformerConfig.tier(
            self.config.tier, vocab_size=len(VOCAB), max_seq_len=self.config.max_seq_len
        )
        self.encoder = TransformerEncoder(encoder_config, seed=self.config.seed)
        rng = np.random.default_rng(self.config.seed + 1)
        self.heads = {
            metric: Linear(encoder_config.dim, 1, rng=rng)
            for metric in self.config.metrics
        }
        self.normalizers = {metric: RangeNormalizer() for metric in self.config.metrics}

    # -- encoding -----------------------------------------------------------

    def _pooled(self, bundle: ModelInput) -> Tensor:
        tokenized = self.tokenizer.encode_bundle(bundle)
        hidden = self.encoder.encode(tokenized.ids)
        return self.encoder.pool(hidden)

    # -- training --------------------------------------------------------------

    def fit(
        self,
        examples: Sequence[tuple[ModelInput, dict[str, int]]],
        epochs: Optional[int] = None,
    ) -> list[float]:
        """Fit normalizers and train with MSE on normalized targets."""
        if not examples:
            raise ModelConfigError("TLP fit() needs at least one example")
        for metric in self.config.metrics:
            values = [targets[metric] for _, targets in examples if metric in targets]
            if values:
                self.normalizers[metric].fit(values)
        optimizer = AdamW(self.parameters(), lr=self.config.lr)
        rng = np.random.default_rng(self.config.seed)
        order = np.arange(len(examples))
        losses = []
        for _ in range(epochs if epochs is not None else self.config.epochs):
            rng.shuffle(order)
            epoch_loss = 0.0
            for index in order:
                bundle, targets = examples[index]
                optimizer.zero_grad()
                pooled = self._pooled(bundle)
                loss: Optional[Tensor] = None
                for metric, target in targets.items():
                    if metric not in self.heads:
                        continue
                    normalized = self.normalizers[metric].normalize(target)
                    output = self.heads[metric](pooled).sigmoid()
                    term = (output - normalized) ** 2
                    term = term.sum()
                    loss = term if loss is None else loss + term
                if loss is None:
                    continue
                loss.backward()
                optimizer.clip_grad_norm(1.0)
                optimizer.step()
                epoch_loss += float(loss.data)
            losses.append(epoch_loss / len(examples))
        return losses

    # -- inference ------------------------------------------------------------------

    def predict(self, bundle: ModelInput, metric: str) -> int:
        if metric not in self.heads:
            raise ModelConfigError(f"unknown metric {metric!r}")
        pooled = self._pooled(bundle)
        normalized = float(self.heads[metric](pooled).sigmoid().data.reshape(-1)[0])
        return int(round(self.normalizers[metric].denormalize(normalized)))

    def predict_costs(self, bundle: ModelInput) -> dict[str, int]:
        pooled = self._pooled(bundle)
        result = {}
        for metric, head in self.heads.items():
            normalized = float(head(pooled).sigmoid().data.reshape(-1)[0])
            result[metric] = int(round(self.normalizers[metric].denormalize(normalized)))
        return result

